//! Large-swing MDAC settling in the transient engine: a switched-capacitor
//! ×4 amplifier (3-bit MDAC core) driven by a two-phase clock, settling a
//! full-scale step — the "simulation-based evaluation produces trustworthy
//! results when circuits experience large dynamic swing" leg of §3.
//!
//! Run with `cargo run --release --example mdac_settling`.

use pipelined_adc::spice::netlist::{Circuit, ClockPhase};
use pipelined_adc::spice::tran::{transient, Clock, TranOptions};

fn main() {
    // Flip-around-style SC amplifier with an ideal-ish opamp macromodel
    // (VCCS gm = 5 mS into the summing node → gain −gm·... closed loop set
    // by Cs/Cf = 3 → gain 4 with the flip-around connection).
    let mut c = Circuit::new();
    let vin = c.node("vin");
    let top = c.node("cs_top");
    let sum = c.node("sum");
    let out = c.node("out");

    c.add_vsource("VIN", vin, Circuit::GROUND, 0.25);

    // Sampling caps: Cs = 3C samples vin on φ1; Cf = C in feedback on φ2.
    let cu = 0.5e-12;
    c.add_switch("S1", vin, top, 200.0, 1e12, ClockPhase::Phi1, false);
    c.add_switch(
        "S2",
        sum,
        Circuit::GROUND,
        200.0,
        1e12,
        ClockPhase::Phi1,
        false,
    );
    c.add_capacitor("CS", top, sum, 3.0 * cu);
    // φ2: bottom plate to ground (charge transfer), feedback closes.
    c.add_switch(
        "S3",
        top,
        Circuit::GROUND,
        200.0,
        1e12,
        ClockPhase::Phi2,
        false,
    );
    c.add_capacitor("CF", sum, out, cu);
    // Reset switch across CF: during φ1 the amp sits in unity feedback and
    // the feedback cap is discharged (standard SC-amplifier reset).
    c.add_switch("S4", sum, out, 200.0, 1e12, ClockPhase::Phi1, false);

    // Opamp macromodel: out = −A·v(sum), single pole via gm/C.
    c.add_vccs("GM", Circuit::GROUND, out, sum, Circuit::GROUND, -5e-3);
    c.add_resistor("RO", out, Circuit::GROUND, 200e3);
    c.add_capacitor("CL", out, Circuit::GROUND, 1e-12);

    let clock = Clock {
        freq: 40e6,
        nonoverlap: 1e-9,
    };
    let opts = TranOptions {
        tstop: 50e-9, // two clock periods
        dt: 25e-12,
        clock: Some(clock),
        ..Default::default()
    };
    let result = transient(&c, &opts).expect("transient converges");

    println!("t[ns]    v(out)[V]   (φ1: 0–11.5 ns, φ2: 12.5–24 ns)");
    for k in (0..result.len()).step_by(40) {
        println!(
            "{:6.2}   {:+.5}",
            result.times()[k] * 1e9,
            result.voltage_at(out, k)
        );
    }
    // At the end of φ2 the output should be Cs/Cf·vin, reduced by the
    // finite-loop-gain static error.
    let settled = result.voltage_at(out, (24.0e-9 / 25e-12) as usize);
    println!("\nsettled output at end of φ2: {settled:+.5} V (input 0.25 V, Cs/Cf = 3)");
    // Finite loop gain A·β leaves a static error: v = 3·vin/(1 + 1/(A·β)).
    let a0 = 5e-3 * 200e3;
    let beta = 1.0 / 4.0;
    let expected = 0.25 * 3.0 / (1.0 + 1.0 / (a0 * beta));
    println!("expected (incl. finite-gain error): {:+.5} V", expected);
    let err = ((settled - expected) / expected).abs();
    println!("relative settling error: {err:.3e}");
    assert!(err < 1e-2, "MDAC failed to settle");
}
