//! Quickstart: enumerate the 13-bit candidates, rank them by power, and
//! print the paper's headline result (4-3-2 wins).
//!
//! Run with `cargo run --example quickstart`.

use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::topopt::enumerate::enumerate_candidates;
use pipelined_adc::topopt::optimize::optimize_topology;
use pipelined_adc::topopt::report::fig1_table;

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();

    println!("== Candidate enumeration (13-bit, 40 MSPS, 0.25 µm 3.3 V) ==");
    let cands = enumerate_candidates(spec.resolution, 7);
    println!("{} candidates: ", cands.len());
    for c in &cands {
        println!(
            "  {:<14} stages = {}, front-end comparators = {}",
            c.to_string(),
            c.stage_count(),
            c.comparator_count()
        );
    }

    println!("\n== Topology optimization ==");
    let report = optimize_topology(&spec, &params);
    print!("{}", fig1_table(&report));

    let best = report.best();
    println!(
        "\nMinimum-power configuration: {}  ({:.2} mW front-end)",
        best.candidate,
        best.total_power * 1e3
    );
    println!(
        "First stage: C_samp = {:.2} pF, gm = {:.2} mS, topology = {}",
        best.stages[0].caps.c_samp * 1e12,
        best.stages[0].gm * 1e3,
        best.stages[0].topology
    );
}
