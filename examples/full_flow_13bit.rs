//! The complete designer-driven flow for the paper's 13-bit case:
//! enumeration → analytic ranking → circuit-grounded synthesis of the
//! distinct MDAC opamps of the two leading candidates (cached
//! dependency-driven executor with reuse / retargeting) → chain-level
//! verification of the winner → rule derivation.
//!
//! Run with `cargo run --release --example full_flow_13bit` (takes a
//! minute or two: every block synthesis runs DC Newton + transfer-function
//! extraction per candidate sizing).

use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::cache::{BlockCache, CachePolicy};
use pipelined_adc::topopt::enumerate::Candidate;
use pipelined_adc::topopt::flow::{distinct_mdac_specs, run_flow, FlowRequest};
use pipelined_adc::topopt::optimize::optimize_topology;
use pipelined_adc::topopt::report::{fig1_table, fig3_table, verify_table};
use pipelined_adc::topopt::rules::derive_rules;
use pipelined_adc::topopt::verify::{verify_candidate, VerifyOptions};

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();

    println!("== Step 1: enumeration + analytic ranking (Fig. 1 data) ==");
    let report = optimize_topology(&spec, &params);
    print!("{}", fig1_table(&report));

    println!("\n== Step 2: distinct MDACs across all seven candidates ==");
    let cands: Vec<Candidate> = report.rows.iter().map(|r| r.candidate.clone()).collect();
    let keys = distinct_mdac_specs(&spec, &cands);
    println!("{} distinct (m, accuracy) blocks: {:?}", keys.len(), keys);

    println!("\n== Step 3: circuit-grounded synthesis of the leading candidates' blocks ==");
    let leading: Vec<Candidate> = report
        .rows
        .iter()
        .take(2)
        .map(|r| r.candidate.clone())
        .collect();
    println!(
        "synthesizing blocks of {} and {} on the cached dependency-driven executor…",
        leading[0], leading[1]
    );
    let cfg = SynthConfig {
        iterations: 500,
        nm_iterations: 80,
        seed: 3,
        ..Default::default()
    };
    let mut cache = BlockCache::new(CachePolicy::Aggressive);
    let run = run_flow(
        &FlowRequest::new(&spec, &leading, &params, &cfg),
        Some(&mut cache),
    );
    println!(
        "scheduled {} blocks: {} cold, {} retargeted, {} cache-seeded, {} cache hits ({} evaluations)",
        run.stats.blocks,
        run.stats.cold,
        run.stats.retargeted,
        run.stats.cache_seeded,
        run.stats.cache_hits,
        run.stats.evaluations_spent,
    );
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>12}{:>8}",
        "block", "feasible", "power[mW]", "a0", "fu[MHz]", "warm"
    );
    for b in &run.blocks {
        println!(
            "({}, {:>2})   {:>10}{:>12.3}{:>12.1}{:>12.1}{:>8}",
            b.key.0,
            b.key.1,
            b.result.feasible,
            b.result.best_perf.get("power").unwrap_or(f64::NAN) * 1e3,
            b.result.best_perf.get("a0").unwrap_or(f64::NAN),
            b.result.best_perf.get("unity_freq").unwrap_or(f64::NAN) / 1e6,
            b.retargeted,
        );
    }

    println!("\n== Step 4: chain-level verification of the winner ==\n");
    let winner = report.best().candidate.clone();
    match verify_candidate(
        &spec,
        &winner,
        &run.blocks,
        &params,
        &VerifyOptions::default(),
    ) {
        Ok(v) => print!("{}", verify_table(std::slice::from_ref(&v))),
        Err(e) => println!("chain verification failed: {e}"),
    }

    println!("\n== Step 5: derived optimum rules (Fig. 3) ==");
    let rules = derive_rules(8..=13, &params);
    print!("{}", fig3_table(&rules));
}
