//! Behavioural sign-off of the optimized topology: simulate the 13-bit
//! 4-3-2 (+ 1.5-bit backend) pipeline with the nonidealities implied by the
//! synthesized blocks, and measure SNDR/ENOB/SFDR and INL/DNL.
//!
//! Run with `cargo run --release --example behavioral_verification`.

use pipelined_adc::behav::metrics::{ramp_linearity, sine_test};
use pipelined_adc::behav::pipeline::{FlashBackend, PipelineAdc};
use pipelined_adc::behav::stage::{StageModel, StageNonideality};
use pipelined_adc::mdac::power::{design_chain, PowerModelParams};
use pipelined_adc::mdac::specs::AdcSpec;

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);

    // Map the analytic stage designs onto behavioural nonidealities:
    // finite-gain error 1/(A0·β) plus the designed settling error.
    let stages: Vec<StageModel> = chain
        .iter()
        .map(|d| {
            let a0_achieved = d.a0_required * 1.2; // synthesis overshoots a little
            let gain_error = 1.0 / (a0_achieved * d.caps.beta)
                + 2.0_f64.powi(-(d.spec.output_accuracy as i32 + 1));
            let noise = (adc_numerics::constants::KT_NOMINAL / d.caps.c_samp).sqrt()
                / (spec.full_scale / 2.0);
            StageModel::with_nonideality(
                d.spec.bits,
                StageNonideality {
                    gain_error,
                    noise_rms: noise,
                    ..Default::default()
                },
            )
        })
        .collect();
    let adc = PipelineAdc::new(None, stages, FlashBackend::ideal(7));
    println!(
        "13-bit 4-3-2 pipeline: {} effective bits, {} comparators total",
        adc.resolution_bits(),
        adc.comparator_count()
    );

    println!("\n== Coherent sine test (16384 points, −0.45 dBFS) ==");
    let m = sine_test(&adc, 16384, 0.95, 42);
    println!("SNDR = {:.2} dB", m.sndr_db);
    println!("SFDR = {:.2} dB", m.sfdr_db);
    println!("THD  = {:.2} dB", m.thd_db);
    println!("ENOB = {:.2} bits", m.enob);

    println!("\n== Ramp linearity (INL/DNL) ==");
    let lin = ramp_linearity(&adc, 8, 7);
    println!("DNL max = {:.3} LSB", lin.dnl_max);
    println!("INL max = {:.3} LSB", lin.inl_max);
    println!("missing codes = {}", lin.missing_codes);

    println!("\n== Ideal reference (same topology, no nonidealities) ==");
    let ideal = PipelineAdc::ideal(&[4, 3, 2], 7);
    let mi = sine_test(&ideal, 16384, 0.95, 42);
    println!(
        "ideal ENOB = {:.2} bits (loss {:.2} bits)",
        mi.enob,
        mi.enob - m.enob
    );
}
