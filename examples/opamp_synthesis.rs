//! Block-level synthesis of a single MDAC opamp with the hybrid
//! equation+simulation evaluator — the inner loop of the paper's flow —
//! followed by a warm-started retargeting run to a neighbouring spec.
//!
//! Run with `cargo run --release --example opamp_synthesis`.

use pipelined_adc::mdac::power::{design_chain, PowerModelParams};
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::flow::{ota_requirements, synthesize_ota};

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();
    let chain = design_chain(&spec, &[4, 3, 2], &params);

    // Synthesize the last-stage MDAC opamp (the cheapest block).
    let req = ota_requirements(&chain[2], &spec);
    println!(
        "Block spec (2-bit stage, 8-bit input accuracy): A0 ≥ {:.0}, fu ≥ {:.1} MHz, PM ≥ {:.0}°, CL = {:.0} fF, template = {:?}",
        req.a0_min,
        req.unity_min / 1e6,
        req.pm_min,
        req.c_load * 1e15,
        req.template
    );

    let cfg = SynthConfig {
        iterations: 1200,
        nm_iterations: 120,
        seed: 7,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let cold = synthesize_ota(&spec.process, &req, &cfg, None);
    let t_cold = t0.elapsed();
    println!("\n== Cold synthesis ==");
    println!(
        "feasible = {}, evaluations = {}, wall = {:.2?}",
        cold.feasible, cold.evaluations, t_cold
    );
    for (name, value) in cold.best_perf.iter() {
        println!("  {name:<12} = {value:.4e}");
    }

    // Retarget the same template to the (3, 10) middle-stage spec.
    let req2 = ota_requirements(&chain[1], &spec);
    println!(
        "\nRetarget spec (3-bit stage, 10-bit input accuracy): A0 ≥ {:.0}, fu ≥ {:.1} MHz (template {:?})",
        req2.a0_min,
        req2.unity_min / 1e6,
        req2.template,
    );
    let t1 = std::time::Instant::now();
    let warm = synthesize_ota(&spec.process, &req2, &cfg, Some(&cold));
    let t_warm = t1.elapsed();
    println!("== Warm retargeting ==");
    println!(
        "feasible = {}, evaluations = {}, wall = {:.2?}",
        warm.feasible, warm.evaluations, t_warm
    );
    for (name, value) in warm.best_perf.iter() {
        println!("  {name:<12} = {value:.4e}");
    }
    println!(
        "\nEffort ratio (cold/warm evaluations): {:.1}×  — the paper's \"2–3 weeks → 1 day\" reuse",
        cold.evaluations as f64 / warm.evaluations.max(1) as f64
    );
}
