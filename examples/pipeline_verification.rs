//! Circuit-level verification of a ranked topology: build the 13-bit
//! winner's full-pipeline chain testbench (hierarchical MDAC stage
//! subcircuits with real inter-stage loading) from freshly synthesized
//! blocks, solve it through the reusable DC/TF workspaces, and report the
//! chain-level numbers next to the summed-stage estimates.
//!
//! Run with `cargo run --release --example pipeline_verification`.

use pipelined_adc::mdac::power::PowerModelParams;
use pipelined_adc::mdac::specs::AdcSpec;
use pipelined_adc::synth::SynthConfig;
use pipelined_adc::topopt::cache::{BlockCache, CachePolicy};
use pipelined_adc::topopt::flow::{run_flow, FlowRequest};
use pipelined_adc::topopt::optimize::optimize_topology;
use pipelined_adc::topopt::report::verify_table;
use pipelined_adc::topopt::verify::{build_candidate_testbench, verify_candidate, VerifyOptions};

fn main() {
    let spec = AdcSpec::date05(13);
    let params = PowerModelParams::calibrated();

    println!("== Step 1: analytic ranking picks the winner ==");
    let report = optimize_topology(&spec, &params);
    let winner = report.best().candidate.clone();
    println!(
        "winner: {winner} at {:.2} mW summed",
        report.best().total_power * 1e3
    );

    println!("\n== Step 2: synthesize the winner's MDAC blocks (cached executor) ==");
    let cfg = SynthConfig {
        iterations: 300,
        nm_iterations: 40,
        seed: 11,
        ..Default::default()
    };
    let mut cache = BlockCache::new(CachePolicy::Aggressive);
    let winner_set = std::slice::from_ref(&winner);
    let run = run_flow(
        &FlowRequest::new(&spec, winner_set, &params, &cfg),
        Some(&mut cache),
    );
    for b in &run.blocks {
        println!(
            "  block ({}, {:>2}): feasible {}, power {:.3} mW, a0 {:.0}",
            b.key.0,
            b.key.1,
            b.result.feasible,
            b.result.best_perf.get("power").unwrap_or(f64::NAN) * 1e3,
            b.result.best_perf.get("a0").unwrap_or(f64::NAN),
        );
    }

    println!("\n== Step 3: assemble the hierarchical chain testbench ==");
    let opts = VerifyOptions::default();
    let tb = build_candidate_testbench(&spec, &winner, &run.blocks, &params, &opts)
        .expect("chain testbench");
    println!(
        "  {} stages, {} elements, {} MNA unknowns, expected gain {}",
        tb.stages.len(),
        tb.circuit.elements().len(),
        tb.mna_dim(),
        tb.expected_gain
    );

    println!("\n== Step 4: chain-level verification ==\n");
    match verify_candidate(&spec, &winner, &run.blocks, &params, &opts) {
        Ok(v) => print!("{}", verify_table(std::slice::from_ref(&v))),
        Err(e) => println!("verification failed: {e}"),
    }
}
