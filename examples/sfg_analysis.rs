//! DPI/SFG walkthrough (§3 of the paper): build a transistor amplifier,
//! solve its DC operating point, derive the **symbolic** transfer function
//! via the driving-point-impedance signal-flow graph and Mason's rule, then
//! bind the extracted small-signal values and report poles/zeros, gain and
//! phase margin.
//!
//! Run with `cargo run --example sfg_analysis`.

use pipelined_adc::sfg::dpi::DpiSfg;
use pipelined_adc::spice::dc::{dc_operating_point, DcOptions};
use pipelined_adc::spice::netlist::Circuit;
use pipelined_adc::spice::process::Process;

fn main() {
    // Common-source amplifier with cascode load would do; use a two-stage
    // macromodel so the SFG has a feedback loop for Mason to chew on.
    let proc = Process::c025();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vin = ckt.node("in");
    let d1 = ckt.node("d1");
    ckt.add_vsource("VDD", vdd, Circuit::GROUND, proc.vdd);
    ckt.add_vsource_wave("VIN", vin, Circuit::GROUND, 0.8.into(), 1.0);
    ckt.add_resistor("RD", vdd, d1, 10e3);
    ckt.add_capacitor("CL", d1, Circuit::GROUND, 1e-12);
    ckt.add_mosfet(
        "M1",
        d1,
        vin,
        Circuit::GROUND,
        Circuit::GROUND,
        proc.nmos,
        5e-6,
        0.5e-6,
    );

    println!("== DC operating point (Newton, g_min/source stepping) ==");
    let op = dc_operating_point(&ckt, &DcOptions::default()).expect("DC converges");
    let ev = op.mos_eval("M1").expect("device evaluated");
    println!(
        "V(d1) = {:.3} V, region = {}, gm = {:.3} mS, gds = {:.1} µS",
        op.voltage(d1),
        ev.region,
        ev.gm * 1e3,
        ev.gds * 1e6
    );

    println!("\n== DPI/SFG construction ==");
    let dpi = DpiSfg::build(&ckt, &op, vin).expect("DPI graph");
    println!("{}", dpi.sfg());

    println!("== Symbolic transfer function (Mason's rule) ==");
    let h = dpi.transfer(d1).expect("transfer function");
    println!("H(s) = {h}");
    println!("symbols: {:?}", h.symbols());

    println!("\n== Numeric characteristics (bound to the operating point) ==");
    let tf = dpi.tf(d1).expect("numeric TF");
    let ch = tf.characteristics(1e3, 100e9);
    println!("A0        = {:.2} ({:.1} dB)", ch.dc_gain, ch.dc_gain_db);
    if let Some(f3) = ch.f3db {
        println!("f_-3dB    = {:.3} MHz", f3 / 1e6);
    }
    if let Some(fu) = ch.unity_freq {
        println!("f_unity   = {:.3} MHz", fu / 1e6);
    }
    if let Some(pm) = ch.phase_margin_deg {
        println!("PM        = {:.1}°", pm);
    }
    println!("poles     = {:?}", ch.poles);
    println!("zeros     = {:?}", ch.zeros);
}
