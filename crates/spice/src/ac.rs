//! Small-signal AC analysis: complex MNA around a solved operating point.
//!
//! MOSFETs are replaced by their linearized companions (gm, gds, gmb plus
//! Meyer capacitances); independent sources contribute their `ac_mag` as the
//! stimulus. The sweep returns full node-voltage phasors per frequency.

use crate::linearize::{ComplexMnaWorkspace, SmallSignal, SolverChoice};
use crate::netlist::{Circuit, NodeId};
use crate::op::OperatingPoint;
use crate::{SpiceError, SpiceResult};
use adc_numerics::complex::Complex;

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `solutions[k][node.index()]` = phasor of that node at `freqs[k]`.
    solutions: Vec<Vec<Complex>>,
}

impl AcSweep {
    /// The analysis frequencies, Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Node-voltage phasor at sweep point `k`.
    pub fn voltage(&self, node: NodeId, k: usize) -> Complex {
        self.solutions[k][node.index()]
    }

    /// The full phasor trace of one node across the sweep.
    pub fn trace(&self, node: NodeId) -> Vec<Complex> {
        self.solutions.iter().map(|s| s[node.index()]).collect()
    }

    /// Magnitude (dB) trace of one node.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.trace(node)
            .into_iter()
            .map(|z| 20.0 * z.norm().max(1e-300).log10())
            .collect()
    }

    /// Unwrapped phase (degrees) trace of one node.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        let raw: Vec<f64> = self
            .trace(node)
            .into_iter()
            .map(|z| z.arg().to_degrees())
            .collect();
        unwrap_phase_deg(&raw)
    }
}

/// Unwraps a phase sequence (degrees) so successive samples never jump by
/// more than 180°.
pub fn unwrap_phase_deg(raw: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(raw.len());
    let mut offset = 0.0;
    for (i, &p) in raw.iter().enumerate() {
        if i > 0 {
            let prev = out[i - 1] - offset * 0.0; // previous unwrapped
            let mut cand = p + offset;
            while cand - prev > 180.0 {
                offset -= 360.0;
                cand = p + offset;
            }
            while cand - prev < -180.0 {
                offset += 360.0;
                cand = p + offset;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Floating-node conductance to ground added to the AC system so
/// otherwise-floating nodes stay solvable.
const AC_GMIN: f64 = 1e-12;

/// Reusable AC-analysis workspace: the circuit is **linearized once per
/// operating point** through the shared [`SmallSignal`] linearizer, and
/// each sweep point only replays the jω-dependent entries into the
/// [`ComplexMnaWorkspace`] engine (dense or CSR-sparse with a reusable
/// symbolic factorization, selected by structural fill ratio) before an
/// in-place factor + solve.
///
/// Like `NetTfWorkspace` in adc-sfg, the workspace **rebinds in place**:
/// [`AcWorkspace::rebind`] restamps a retuned circuit at a new operating
/// point into the existing buffers — the index map, CSR pattern and
/// symbolic factorization are rebuilt only when the circuit *topology*
/// changed, so repeated AC sweeps across operating points are
/// allocation-free.
#[derive(Debug)]
pub struct AcWorkspace {
    ss: SmallSignal,
    engine: ComplexMnaWorkspace,
    /// Complex frequencies `jω` of the current sweep.
    s_list: Vec<Complex>,
    /// Lane-major solutions of the batched solves (`freqs · dim`).
    xs: Vec<Complex>,
    /// Determinant scratch for the batched engine (unused by AC).
    dets: Vec<Complex>,
    node_count: usize,
}

impl AcWorkspace {
    /// Linearizes `circuit` at `op` and preallocates all solve buffers.
    ///
    /// # Errors
    /// [`SpiceError::NotFound`] if a MOSFET has no operating-point entry.
    pub fn new(circuit: &Circuit, op: &OperatingPoint) -> SpiceResult<Self> {
        AcWorkspace::with_solver(circuit, op, SolverChoice::Auto)
    }

    /// [`AcWorkspace::new`] with an explicit solver-engine choice
    /// (tests/diagnostics; production uses [`SolverChoice::Auto`]).
    ///
    /// # Errors
    /// [`SpiceError::NotFound`] if a MOSFET has no operating-point entry.
    pub fn with_solver(
        circuit: &Circuit,
        op: &OperatingPoint,
        choice: SolverChoice,
    ) -> SpiceResult<Self> {
        let mut engine = ComplexMnaWorkspace::new();
        engine.set_solver(choice);
        let mut ws = AcWorkspace {
            ss: SmallSignal::new(),
            engine,
            s_list: Vec::new(),
            xs: Vec::new(),
            dets: Vec::new(),
            node_count: 0,
        };
        ws.rebind(circuit, op)?;
        Ok(ws)
    }

    /// (Re)binds the workspace to `circuit` linearized at `op`: the
    /// s-independent base and the capacitive entry lists are restamped in
    /// place, and the engine's pattern, symbolic factorization and factor
    /// buffers are reused whenever the topology is unchanged — only a
    /// rewired circuit rebuilds them. Repeated sweeps across operating
    /// points of one testbench therefore allocate nothing.
    ///
    /// # Errors
    /// [`SpiceError::NotFound`] if a MOSFET has no operating-point entry.
    pub fn rebind(&mut self, circuit: &Circuit, op: &OperatingPoint) -> SpiceResult<()> {
        let topo = self.ss.bind(circuit, op, AC_GMIN)?;
        self.engine.bind(&self.ss, topo);
        self.node_count = circuit.node_count();
        Ok(())
    }

    /// Whether the complex MNA engine currently factors sparse.
    pub fn is_sparse(&self) -> bool {
        self.engine.is_sparse()
    }

    /// Number of symbolic analyses performed so far (stays constant across
    /// rebinds of one topology — the reuse contract repeated sweeps rely
    /// on).
    pub fn symbolic_analyses(&self) -> usize {
        self.engine.symbolic_analyses()
    }
}

/// Runs an AC sweep at the given frequencies (Hz).
///
/// # Errors
/// [`SpiceError::Singular`] if the complex MNA system cannot be solved at
/// some frequency.
pub fn ac_sweep(circuit: &Circuit, op: &OperatingPoint, freqs: &[f64]) -> SpiceResult<AcSweep> {
    let mut ws = AcWorkspace::new(circuit, op)?;
    ac_sweep_with(&mut ws, freqs)
}

/// [`ac_sweep`] with a caller-owned [`AcWorkspace`]: the circuit was
/// linearized once when the workspace was built, and each frequency point
/// only rewrites the jω-dependent matrix entries before an in-place solve —
/// no per-point matrix allocation or re-stamping.
///
/// # Errors
/// [`SpiceError::Singular`] if the complex MNA system cannot be solved at
/// some frequency.
pub fn ac_sweep_with(ws: &mut AcWorkspace, freqs: &[f64]) -> SpiceResult<AcSweep> {
    let nodes = ws.node_count;
    let dim = ws.ss.dim();
    // All sweep points go through the batched engine: chunks of up to
    // MAX_LANES frequencies share one symbolic traversal and SoA factor
    // workspace, with per-point results (and the demote-to-dense recovery
    // ladder) bit-identical to the serial factor/solve loop.
    ws.s_list.clear();
    ws.s_list.extend(
        freqs
            .iter()
            .map(|&f| Complex::new(0.0, 2.0 * std::f64::consts::PI * f)),
    );
    ws.xs.clear();
    ws.xs.resize(freqs.len() * dim, Complex::ZERO);
    ws.dets.clear();
    ws.dets.resize(freqs.len(), Complex::ZERO);
    ws.engine
        .solve_det_batch(&ws.s_list, &ws.ss, &ws.ss.b, &mut ws.xs, &mut ws.dets)
        .map_err(|(k, e)| SpiceError::Singular(format!("AC @ {} Hz: {e}", freqs[k])))?;
    let mut solutions = Vec::with_capacity(freqs.len());
    for k in 0..freqs.len() {
        let x = &ws.xs[k * dim..(k + 1) * dim];
        let mut volts = vec![Complex::ZERO; nodes];
        volts[1..].copy_from_slice(&x[..nodes - 1]);
        solutions.push(volts);
    }
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        solutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use adc_numerics::interp::logspace;

    #[test]
    fn rc_lowpass_pole() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-9); // pole at 1/(2πRC) ≈ 159 kHz
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, r);
        c.add_capacitor("C1", out, Circuit::GROUND, cap);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let fpole = 1.0 / (2.0 * std::f64::consts::PI * r * cap);
        let sweep = ac_sweep(&c, &op, &[fpole / 100.0, fpole, fpole * 100.0]).unwrap();
        let mags = sweep.magnitude_db(out);
        assert!(
            mags[0].abs() < 0.01,
            "passband should be 0 dB, got {}",
            mags[0]
        );
        assert!(
            (mags[1] + 3.0103).abs() < 0.05,
            "-3 dB at pole, got {}",
            mags[1]
        );
        assert!(
            (mags[2] + 40.0).abs() < 0.5,
            "-40 dB two decades up, got {}",
            mags[2]
        );
        // Phase: −45° at the pole.
        let ph = sweep.phase_deg(out);
        assert!((ph[1] + 45.0).abs() < 1.0, "phase {}", ph[1]);
    }

    #[test]
    fn common_source_gain_and_rolloff() {
        let p = crate::process::Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
        c.add_resistor("RD", vdd, d, 10e3);
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            5e-6,
            0.5e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let ev = *op.mos_eval("M1").unwrap();
        let freqs = logspace(1e3, 10e9, 61);
        let sweep = ac_sweep(&c, &op, &freqs).unwrap();
        let mags = sweep.magnitude_db(d);
        // Low-frequency gain ≈ gm·(RD ∥ ro).
        let ro = 1.0 / ev.gds;
        let a0 = ev.gm * (10e3 * ro) / (10e3 + ro);
        assert!(
            (mags[0] - 20.0 * a0.log10()).abs() < 0.3,
            "A0: got {} dB want {} dB",
            mags[0],
            20.0 * a0.log10()
        );
        // Gain must roll off at high frequency.
        assert!(mags[mags.len() - 1] < mags[0] - 20.0);
    }

    #[test]
    fn phase_unwrap_no_jumps() {
        let raw = vec![170.0, -175.0, -160.0, 179.0, 160.0];
        let un = unwrap_phase_deg(&raw);
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= 180.0, "{un:?}");
        }
    }

    /// RC ladder big enough (MNA dim ≥ 9, sparse fill) to exercise the CSR
    /// engine under rebinding.
    fn rc_ladder(n: usize, r: f64) -> Circuit {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        let mut prev = vin;
        for i in 0..n {
            let node = c.node(&format!("n{i}"));
            c.add_resistor(&format!("R{i}"), prev, node, r);
            c.add_capacitor(&format!("C{i}"), node, Circuit::GROUND, 1e-9);
            prev = node;
        }
        c
    }

    /// Rebinding the workspace to a retuned circuit at a new operating
    /// point must match a freshly built workspace bit for bit, without a
    /// second symbolic analysis (the `NetTfWorkspace` reuse contract,
    /// ROADMAP "AcWorkspace rebind").
    #[test]
    fn rebind_matches_fresh_workspace_and_reuses_symbolic() {
        let mut c = rc_ladder(10, 1e3);
        let out = c.node("n9");
        let freqs = logspace(1e3, 1e7, 13);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let mut ws = AcWorkspace::new(&c, &op).unwrap();
        assert!(ws.is_sparse(), "ladder should take the CSR path");
        let first = ac_sweep_with(&mut ws, &freqs).unwrap();
        let fresh = ac_sweep(&c, &op, &freqs).unwrap();
        assert_eq!(first.trace(out), fresh.trace(out));
        let analyses = ws.symbolic_analyses();

        // Retune values (same topology), new OP, rebind in place.
        for i in 0..10 {
            let (rid, _) = c.find_element(&format!("R{i}")).unwrap();
            c.set_value(rid, 2.2e3);
        }
        let op2 = dc_operating_point(&c, &DcOptions::default()).unwrap();
        ws.rebind(&c, &op2).unwrap();
        assert_eq!(
            ws.symbolic_analyses(),
            analyses,
            "value retune must not re-analyze"
        );
        let rebound = ac_sweep_with(&mut ws, &freqs).unwrap();
        let fresh2 = ac_sweep(&c, &op2, &freqs).unwrap();
        assert_eq!(rebound.trace(out), fresh2.trace(out));
    }

    /// A genuinely rewired circuit must rebuild the engine on rebind, not
    /// replay stale slot maps.
    #[test]
    fn rebind_detects_topology_change() {
        let mut c = rc_ladder(10, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let mut ws = AcWorkspace::new(&c, &op).unwrap();
        let analyses = ws.symbolic_analyses();
        // Add an element: the topology fingerprint changes.
        let tap = c.node("n4");
        c.add_capacitor("CX", tap, Circuit::GROUND, 2e-9);
        let op2 = dc_operating_point(&c, &DcOptions::default()).unwrap();
        ws.rebind(&c, &op2).unwrap();
        assert!(ws.symbolic_analyses() > analyses || !ws.is_sparse());
        let freqs = [1e4, 1e6];
        let rebound = ac_sweep_with(&mut ws, &freqs).unwrap();
        let fresh = ac_sweep(&c, &op2, &freqs).unwrap();
        assert_eq!(rebound.trace(tap), fresh.trace(tap));
    }

    #[test]
    fn dc_sources_are_ac_ground() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("VB", a, Circuit::GROUND, 2.0); // ac_mag = 0
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let sweep = ac_sweep(&c, &op, &[1e6]).unwrap();
        assert!(sweep.voltage(b, 0).norm() < 1e-12);
    }
}
