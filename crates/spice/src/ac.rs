//! Small-signal AC analysis: complex MNA around a solved operating point.
//!
//! MOSFETs are replaced by their linearized companions (gm, gds, gmb plus
//! Meyer capacitances); independent sources contribute their `ac_mag` as the
//! stimulus. The sweep returns full node-voltage phasors per frequency.

use crate::mna::MnaMap;
use crate::netlist::{Circuit, Element, NodeId};
use crate::op::OperatingPoint;
use crate::{SpiceError, SpiceResult};
use adc_numerics::complex::Complex;
use adc_numerics::linalg::{CLu, CMatrix};

/// Result of an AC sweep.
#[derive(Debug, Clone)]
pub struct AcSweep {
    freqs: Vec<f64>,
    /// `solutions[k][node.index()]` = phasor of that node at `freqs[k]`.
    solutions: Vec<Vec<Complex>>,
}

impl AcSweep {
    /// The analysis frequencies, Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Node-voltage phasor at sweep point `k`.
    pub fn voltage(&self, node: NodeId, k: usize) -> Complex {
        self.solutions[k][node.index()]
    }

    /// The full phasor trace of one node across the sweep.
    pub fn trace(&self, node: NodeId) -> Vec<Complex> {
        self.solutions.iter().map(|s| s[node.index()]).collect()
    }

    /// Magnitude (dB) trace of one node.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.trace(node)
            .into_iter()
            .map(|z| 20.0 * z.norm().max(1e-300).log10())
            .collect()
    }

    /// Unwrapped phase (degrees) trace of one node.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        let raw: Vec<f64> = self
            .trace(node)
            .into_iter()
            .map(|z| z.arg().to_degrees())
            .collect();
        unwrap_phase_deg(&raw)
    }
}

/// Unwraps a phase sequence (degrees) so successive samples never jump by
/// more than 180°.
pub fn unwrap_phase_deg(raw: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(raw.len());
    let mut offset = 0.0;
    for (i, &p) in raw.iter().enumerate() {
        if i > 0 {
            let prev = out[i - 1] - offset * 0.0; // previous unwrapped
            let mut cand = p + offset;
            while cand - prev > 180.0 {
                offset -= 360.0;
                cand = p + offset;
            }
            while cand - prev < -180.0 {
                offset += 360.0;
                cand = p + offset;
            }
        }
        out.push(p + offset);
    }
    out
}

/// Reusable AC-analysis workspace: the circuit is **linearized once** at
/// the operating point into a frequency-independent base matrix plus a flat
/// list of capacitive entries; each sweep point memcpy's the base back and
/// only rewrites the jω-dependent entries before an in-place LU solve.
#[derive(Debug, Clone)]
pub struct AcWorkspace {
    /// Frequency-independent stamps (conductances, gm's, source patterns,
    /// the floating-node g_min) at the linearization point.
    base: CMatrix,
    /// jω-dependent entries: `(row, col, ±C)` triples accumulated per
    /// sweep point as `jω·C`.
    cap_entries: Vec<(usize, usize, f64)>,
    /// Stimulus vector (frequency-independent).
    b: Vec<Complex>,
    y: CMatrix,
    lu: CLu,
    x: Vec<Complex>,
    node_count: usize,
}

impl AcWorkspace {
    /// Linearizes `circuit` at `op` and preallocates all solve buffers.
    ///
    /// # Errors
    /// [`SpiceError::NotFound`] if a MOSFET has no operating-point entry.
    pub fn new(circuit: &Circuit, op: &OperatingPoint) -> SpiceResult<Self> {
        let map = MnaMap::new(circuit);
        let dim = map.dim();
        let mut base = CMatrix::zeros(dim, dim);
        let mut cap_entries = Vec::new();
        let mut b = vec![Complex::ZERO; dim];

        let real_adm = |y: &mut CMatrix, a: NodeId, bnode: NodeId, g: f64| {
            let (ra, rb) = (map.node_row(a), map.node_row(bnode));
            if let Some(i) = ra {
                y.add_at(i, i, Complex::from_real(g));
            }
            if let Some(j) = rb {
                y.add_at(j, j, Complex::from_real(g));
            }
            if let (Some(i), Some(j)) = (ra, rb) {
                y.add_at(i, j, Complex::from_real(-g));
                y.add_at(j, i, Complex::from_real(-g));
            }
        };
        let cap_adm = |list: &mut Vec<(usize, usize, f64)>, a: NodeId, bnode: NodeId, c: f64| {
            let (ra, rb) = (map.node_row(a), map.node_row(bnode));
            if let Some(i) = ra {
                list.push((i, i, c));
            }
            if let Some(j) = rb {
                list.push((j, j, c));
            }
            if let (Some(i), Some(j)) = (ra, rb) {
                list.push((i, j, -c));
                list.push((j, i, -c));
            }
        };
        let vccs = |y: &mut CMatrix, p: NodeId, n: NodeId, cp: NodeId, cn: NodeId, gm: f64| {
            for (out, so) in [(map.node_row(p), 1.0), (map.node_row(n), -1.0)] {
                let Some(row) = out else { continue };
                for (ctrl, sc) in [(map.node_row(cp), 1.0), (map.node_row(cn), -1.0)] {
                    if let Some(col) = ctrl {
                        y.add_at(row, col, Complex::from_real(so * sc * gm));
                    }
                }
            }
        };

        for (idx, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b: bn, ohms, .. } => {
                    real_adm(&mut base, *a, *bn, 1.0 / ohms);
                }
                Element::Capacitor {
                    a, b: bn, farads, ..
                } => {
                    cap_adm(&mut cap_entries, *a, *bn, *farads);
                }
                Element::Switch {
                    a,
                    b: bn,
                    ron,
                    roff,
                    dc_closed,
                    ..
                } => {
                    let g = 1.0 / if *dc_closed { *ron } else { *roff };
                    real_adm(&mut base, *a, *bn, g);
                }
                Element::ISource { p, n, ac_mag, .. } => {
                    // Stimulus: current p→n through the source.
                    if let Some(r) = map.node_row(*p) {
                        b[r] -= Complex::from_real(*ac_mag);
                    }
                    if let Some(r) = map.node_row(*n) {
                        b[r] += Complex::from_real(*ac_mag);
                    }
                }
                Element::VSource { p, n, ac_mag, .. } => {
                    let br = map.branch_row(idx);
                    if let Some(r) = map.node_row(*p) {
                        base.add_at(r, br, Complex::ONE);
                        base.add_at(br, r, Complex::ONE);
                    }
                    if let Some(r) = map.node_row(*n) {
                        base.add_at(r, br, -Complex::ONE);
                        base.add_at(br, r, -Complex::ONE);
                    }
                    b[br] = Complex::from_real(*ac_mag);
                }
                Element::Vcvs {
                    p, n, cp, cn, gain, ..
                } => {
                    let br = map.branch_row(idx);
                    if let Some(r) = map.node_row(*p) {
                        base.add_at(r, br, Complex::ONE);
                        base.add_at(br, r, Complex::ONE);
                    }
                    if let Some(r) = map.node_row(*n) {
                        base.add_at(r, br, -Complex::ONE);
                        base.add_at(br, r, -Complex::ONE);
                    }
                    if let Some(r) = map.node_row(*cp) {
                        base.add_at(br, r, Complex::from_real(-gain));
                    }
                    if let Some(r) = map.node_row(*cn) {
                        base.add_at(br, r, Complex::from_real(*gain));
                    }
                }
                Element::Vccs {
                    p, n, cp, cn, gm, ..
                } => {
                    vccs(&mut base, *p, *n, *cp, *cn, *gm);
                }
                Element::Mosfet {
                    name,
                    d,
                    g,
                    s,
                    b: bn,
                    ..
                } => {
                    let ev = op.mos_eval(name).ok_or_else(|| {
                        SpiceError::NotFound(format!("operating point for {name}"))
                    })?;
                    // id = gm·vgs + gds·vds + gmb·vbs, current d→s.
                    vccs(&mut base, *d, *s, *g, *s, ev.gm);
                    vccs(&mut base, *d, *s, *d, *s, ev.gds);
                    vccs(&mut base, *d, *s, *bn, *s, ev.gmb);
                    cap_adm(&mut cap_entries, *g, *s, ev.cgs);
                    cap_adm(&mut cap_entries, *g, *d, ev.cgd);
                    cap_adm(&mut cap_entries, *g, *bn, ev.cgb);
                    cap_adm(&mut cap_entries, *s, *bn, ev.csb);
                    cap_adm(&mut cap_entries, *d, *bn, ev.cdb);
                }
            }
        }

        // Tiny conductance to ground keeps otherwise-floating nodes solvable.
        for r in 0..(map.node_count() - 1) {
            base.add_at(r, r, Complex::from_real(1e-12));
        }

        Ok(AcWorkspace {
            base,
            cap_entries,
            b,
            y: CMatrix::zeros(dim, dim),
            lu: CLu::with_dim(dim),
            x: vec![Complex::ZERO; dim],
            node_count: circuit.node_count(),
        })
    }

    /// Solves the linearized system at one complex frequency `s = jω`
    /// into the workspace's solution buffer, and returns it.
    fn solve_at(&mut self, jw: Complex) -> Result<&[Complex], adc_numerics::NumericsError> {
        self.y.copy_from(&self.base);
        for &(i, j, c) in &self.cap_entries {
            self.y.add_at(i, j, jw * c);
        }
        self.lu.factor_into(&self.y)?;
        self.lu.solve_into(&self.b, &mut self.x);
        Ok(&self.x)
    }
}

/// Runs an AC sweep at the given frequencies (Hz).
///
/// # Errors
/// [`SpiceError::Singular`] if the complex MNA system cannot be solved at
/// some frequency.
pub fn ac_sweep(circuit: &Circuit, op: &OperatingPoint, freqs: &[f64]) -> SpiceResult<AcSweep> {
    let mut ws = AcWorkspace::new(circuit, op)?;
    ac_sweep_with(&mut ws, freqs)
}

/// [`ac_sweep`] with a caller-owned [`AcWorkspace`]: the circuit was
/// linearized once when the workspace was built, and each frequency point
/// only rewrites the jω-dependent matrix entries before an in-place solve —
/// no per-point matrix allocation or re-stamping.
///
/// # Errors
/// [`SpiceError::Singular`] if the complex MNA system cannot be solved at
/// some frequency.
pub fn ac_sweep_with(ws: &mut AcWorkspace, freqs: &[f64]) -> SpiceResult<AcSweep> {
    let mut solutions = Vec::with_capacity(freqs.len());
    let nodes = ws.node_count;
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let x = ws
            .solve_at(Complex::new(0.0, omega))
            .map_err(|e| SpiceError::Singular(format!("AC @ {f} Hz: {e}")))?;
        let mut volts = vec![Complex::ZERO; nodes];
        volts[1..].copy_from_slice(&x[..nodes - 1]);
        solutions.push(volts);
    }
    Ok(AcSweep {
        freqs: freqs.to_vec(),
        solutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use adc_numerics::interp::logspace;

    #[test]
    fn rc_lowpass_pole() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-9); // pole at 1/(2πRC) ≈ 159 kHz
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, r);
        c.add_capacitor("C1", out, Circuit::GROUND, cap);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let fpole = 1.0 / (2.0 * std::f64::consts::PI * r * cap);
        let sweep = ac_sweep(&c, &op, &[fpole / 100.0, fpole, fpole * 100.0]).unwrap();
        let mags = sweep.magnitude_db(out);
        assert!(
            mags[0].abs() < 0.01,
            "passband should be 0 dB, got {}",
            mags[0]
        );
        assert!(
            (mags[1] + 3.0103).abs() < 0.05,
            "-3 dB at pole, got {}",
            mags[1]
        );
        assert!(
            (mags[2] + 40.0).abs() < 0.5,
            "-40 dB two decades up, got {}",
            mags[2]
        );
        // Phase: −45° at the pole.
        let ph = sweep.phase_deg(out);
        assert!((ph[1] + 45.0).abs() < 1.0, "phase {}", ph[1]);
    }

    #[test]
    fn common_source_gain_and_rolloff() {
        let p = crate::process::Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
        c.add_resistor("RD", vdd, d, 10e3);
        c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            5e-6,
            0.5e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let ev = *op.mos_eval("M1").unwrap();
        let freqs = logspace(1e3, 10e9, 61);
        let sweep = ac_sweep(&c, &op, &freqs).unwrap();
        let mags = sweep.magnitude_db(d);
        // Low-frequency gain ≈ gm·(RD ∥ ro).
        let ro = 1.0 / ev.gds;
        let a0 = ev.gm * (10e3 * ro) / (10e3 + ro);
        assert!(
            (mags[0] - 20.0 * a0.log10()).abs() < 0.3,
            "A0: got {} dB want {} dB",
            mags[0],
            20.0 * a0.log10()
        );
        // Gain must roll off at high frequency.
        assert!(mags[mags.len() - 1] < mags[0] - 20.0);
    }

    #[test]
    fn phase_unwrap_no_jumps() {
        let raw = vec![170.0, -175.0, -160.0, 179.0, 160.0];
        let un = unwrap_phase_deg(&raw);
        for w in un.windows(2) {
            assert!((w[1] - w[0]).abs() <= 180.0, "{un:?}");
        }
    }

    #[test]
    fn dc_sources_are_ac_ground() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("VB", a, Circuit::GROUND, 2.0); // ac_mag = 0
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let sweep = ac_sweep(&c, &op, &[1e6]).unwrap();
        assert!(sweep.voltage(b, 0).norm() < 1e-12);
    }
}
