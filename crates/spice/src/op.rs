//! Operating-point results: node voltages, branch currents, per-device
//! small-signal parameters, and power bookkeeping.

use crate::mna::MnaMap;
use crate::mosfet::{eval_mosfet, MosEval};
use crate::netlist::{Circuit, Element, NodeId};
use std::collections::HashMap;

/// Solved DC operating point of a circuit.
///
/// Produced by [`crate::dc::dc_operating_point`]; consumed by the AC
/// analysis, the DPI/SFG linearization and the synthesis evaluator.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    branch_currents: HashMap<String, f64>,
    mos_evals: HashMap<String, MosEval>,
}

impl OperatingPoint {
    /// Builds the operating point from a converged MNA solution vector.
    pub(crate) fn from_solution(circuit: &Circuit, map: &MnaMap, x: &[f64]) -> Self {
        let mut voltages = vec![0.0; circuit.node_count()];
        voltages[1..].copy_from_slice(&x[..circuit.node_count() - 1]);
        let mut branch_currents = HashMap::new();
        let mut mos_evals = HashMap::new();
        for (i, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::VSource { name, .. } | Element::Vcvs { name, .. } => {
                    branch_currents.insert(name.clone(), x[map.branch_row(i)]);
                }
                Element::Mosfet {
                    name,
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                } => {
                    let vd = voltages[d.index()];
                    let vg = voltages[g.index()];
                    let vs = voltages[s.index()];
                    let vb = voltages[b.index()];
                    mos_evals.insert(
                        name.clone(),
                        eval_mosfet(model, *w, *l, vg - vs, vd - vs, vb - vs),
                    );
                }
                _ => {}
            }
        }
        OperatingPoint {
            voltages,
            branch_currents,
            mos_evals,
        }
    }

    /// Voltage of a node (ground is 0).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// All node voltages indexed by [`NodeId::index`].
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Branch current of a named voltage source / VCVS.
    ///
    /// Positive current flows from the positive terminal *through the
    /// source* to the negative terminal (SPICE convention), so a supply
    /// delivering power reports a negative branch current.
    pub fn branch_current(&self, name: &str) -> Option<f64> {
        self.branch_currents.get(name).copied()
    }

    /// Small-signal evaluation of a named MOSFET.
    pub fn mos_eval(&self, name: &str) -> Option<&MosEval> {
        self.mos_evals.get(name)
    }

    /// Iterator over all MOSFET evaluations.
    pub fn mos_evals(&self) -> impl Iterator<Item = (&str, &MosEval)> {
        self.mos_evals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Power delivered *by* a named voltage source (positive when the source
    /// feeds the circuit), W.
    pub fn source_power(&self, circuit: &Circuit, name: &str) -> Option<f64> {
        let (_, e) = circuit.find_element(name)?;
        match e {
            Element::VSource { p, n, wave, .. } => {
                let v = wave.dc_value();
                let i = self.branch_current(name)?;
                let _ = (p, n);
                Some(-v * i)
            }
            _ => None,
        }
    }

    /// Total power delivered by all independent voltage sources, W.
    ///
    /// For a single-supply circuit this is the number the paper's power
    /// optimization minimizes.
    pub fn total_source_power(&self, circuit: &Circuit) -> f64 {
        circuit
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { name, wave, .. } => {
                    let i = self.branch_current(name)?;
                    Some(-wave.dc_value() * i)
                }
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};

    #[test]
    fn source_power_of_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, 3.0);
        c.add_resistor("R1", a, Circuit::GROUND, 3e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        // 3 V, 1 mA → 3 mW delivered.
        assert!((op.source_power(&c, "V1").unwrap() - 3e-3).abs() < 1e-9);
        assert!((op.total_source_power(&c) - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn voltages_vector_includes_ground() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, 1.5);
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert_eq!(op.voltages().len(), 2);
        assert_eq!(op.voltages()[0], 0.0);
        assert!((op.voltage(a) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn missing_lookups_return_none() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!(op.branch_current("nope").is_none());
        assert!(op.mos_eval("nope").is_none());
        assert!(op.source_power(&c, "R1").is_none());
    }
}
