//! Hierarchical netlists: subcircuit templates with named ports,
//! instantiated into a parent [`Circuit`] by **deterministic flattening**.
//!
//! The flow's netlists stopped being "one amplifier" the moment chain
//! testbenches arrived: a pipeline stage is an OTA core plus a capacitor
//! array plus switches, and a full-pipeline testbench is N of those wired
//! output-to-input. [`Subckt`] captures a reusable template (a circuit plus
//! an ordered port list), and [`Circuit::instantiate`] flattens a template
//! into a parent netlist:
//!
//! * **ports** connect to caller-supplied parent nodes;
//! * **internal nodes** are interned as `{prefix}.{local}` (ground stays
//!   global);
//! * **elements** are copied in insertion order under `{prefix}.{local}`
//!   names — so two builds of the same hierarchy produce element-for-element
//!   identical flat netlists, the invariant every reusable workspace
//!   ([`crate::dc::DcWorkspace`], [`crate::linearize::SmallSignal`]) keys
//!   its slot maps on.
//!
//! The returned [`Instance`] is the **path-resolution handle**: it maps
//! local element/node names to the flattened [`ElementId`]s/[`NodeId`]s, so
//! in-place retuning ([`Circuit::set_value`],
//! [`Circuit::set_device_geometry`]) works through instance paths exactly
//! as it does on flat netlists — a retuned chain reuses its workspaces
//! unchanged.
//!
//! Hierarchy composes: a subcircuit's template may itself contain
//! instances (its element names already carry dots), and flattening simply
//! prepends another prefix, e.g. `s0.ota.M1`.

use crate::netlist::{Circuit, Element, ElementId, NodeId};
use crate::{SpiceError, SpiceResult};
use std::collections::HashMap;

/// Hierarchy separator in flattened node/element names.
pub const HIER_SEP: char = '.';

/// A reusable subcircuit template: a circuit plus an ordered list of named
/// ports (internal nodes exposed for connection).
#[derive(Debug, Clone)]
pub struct Subckt {
    name: String,
    circuit: Circuit,
    /// `(port name, internal node)` in declaration order.
    ports: Vec<(String, NodeId)>,
}

impl Subckt {
    /// Wraps `circuit` as a template named `name`, exposing the internal
    /// nodes named in `ports` as `(port name, internal node name)` pairs.
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if a port references a missing internal
    /// node, names ground (ground is global and needs no port), or a port
    /// name repeats.
    pub fn new(name: &str, circuit: Circuit, ports: &[(&str, &str)]) -> SpiceResult<Self> {
        let mut resolved: Vec<(String, NodeId)> = Vec::with_capacity(ports.len());
        for (port, node_name) in ports {
            let node = circuit.find_node(node_name).ok_or_else(|| {
                SpiceError::BadNetlist(format!(
                    "subckt {name}: port {port} has no node {node_name}"
                ))
            })?;
            if node.is_ground() {
                return Err(SpiceError::BadNetlist(format!(
                    "subckt {name}: port {port} is ground (ground is global)"
                )));
            }
            if resolved.iter().any(|(p, _)| p == port) {
                return Err(SpiceError::BadNetlist(format!(
                    "subckt {name}: duplicate port {port}"
                )));
            }
            resolved.push((port.to_string(), node));
        }
        Ok(Subckt {
            name: name.to_string(),
            circuit,
            ports: resolved,
        })
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The template's internal circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Declared ports in order.
    pub fn ports(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.ports.iter().map(|(p, n)| (p.as_str(), *n))
    }

    /// Internal node of a port.
    pub fn port(&self, name: &str) -> Option<NodeId> {
        self.ports.iter().find(|(p, _)| p == name).map(|(_, n)| *n)
    }
}

/// Path-resolution handle of one flattened [`Subckt`] instance: maps the
/// template's local node/element names to their ids in the parent circuit.
#[derive(Debug, Clone)]
pub struct Instance {
    prefix: String,
    /// Local element name → flattened element id (insertion order of the
    /// template preserved in the parent).
    elems: HashMap<String, ElementId>,
    /// Local node name → flattened node id (ports map to the connected
    /// parent nodes, internal nodes to their `{prefix}.{local}` intern).
    nodes: HashMap<String, NodeId>,
}

impl Instance {
    /// The instance prefix (its path from the parent).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Flattened element id of a local element path (e.g. `"M1"`, or
    /// `"ota.M1"` through a nested instance).
    pub fn element(&self, local: &str) -> Option<ElementId> {
        self.elems.get(local).copied()
    }

    /// Flattened node of a local node name (ports resolve to the parent
    /// nodes they were connected to).
    pub fn node(&self, local: &str) -> Option<NodeId> {
        self.nodes.get(local).copied()
    }

    /// Iterates `(local name, flattened id)` over this instance's elements
    /// in no particular order.
    pub fn elements(&self) -> impl Iterator<Item = (&str, ElementId)> {
        self.elems.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Retunes a local element's scalar value through the instance path —
    /// [`Circuit::set_value`] resolved hierarchically.
    ///
    /// # Panics
    /// Panics if the path does not resolve (mirrors the flat API's contract
    /// of panicking on misuse rather than failing silently).
    pub fn set_value(&self, ckt: &mut Circuit, local: &str, value: f64) {
        let id = self
            .elems
            .get(local)
            .unwrap_or_else(|| panic!("instance {}: no element {local}", self.prefix));
        ckt.set_value(*id, value);
    }

    /// Retunes a local MOSFET's geometry through the instance path —
    /// [`Circuit::set_device_geometry`] resolved hierarchically.
    ///
    /// # Panics
    /// Panics if the path does not resolve.
    pub fn set_device_geometry(&self, ckt: &mut Circuit, local: &str, w: f64, l: f64) {
        let id = self
            .elems
            .get(local)
            .unwrap_or_else(|| panic!("instance {}: no element {local}", self.prefix));
        ckt.set_device_geometry(*id, w, l);
    }
}

impl Circuit {
    /// Flattens an instance of `sub` into this circuit under `prefix`,
    /// connecting every port to the given parent node. Internal nodes
    /// intern as `{prefix}.{local}`, elements copy in insertion order as
    /// `{prefix}.{local}` — deterministic, so equal build sequences yield
    /// element-for-element equal netlists.
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if a connection names an unknown port,
    /// a port is left unconnected, or the prefix collides with existing
    /// element names.
    pub fn instantiate(
        &mut self,
        sub: &Subckt,
        prefix: &str,
        connections: &[(&str, NodeId)],
    ) -> SpiceResult<Instance> {
        for (port, _) in connections {
            if sub.port(port).is_none() {
                return Err(SpiceError::BadNetlist(format!(
                    "instantiate {prefix}: subckt {} has no port {port}",
                    sub.name
                )));
            }
        }
        // Port internal-node → parent-node map (every port must be wired:
        // a dangling subcircuit port is a floating net the flat netlist
        // could only "fix" through g_min).
        let mut port_map: HashMap<NodeId, NodeId> = HashMap::new();
        for (port, internal) in &sub.ports {
            let conn = connections
                .iter()
                .find(|(p, _)| p == port)
                .map(|(_, n)| *n)
                .ok_or_else(|| {
                    SpiceError::BadNetlist(format!(
                        "instantiate {prefix}: port {port} of subckt {} unconnected",
                        sub.name
                    ))
                })?;
            port_map.insert(*internal, conn);
        }
        let probe = format!("{prefix}{HIER_SEP}");
        if self.elements().iter().any(|e| e.name().starts_with(&probe)) {
            return Err(SpiceError::BadNetlist(format!(
                "instantiate {prefix}: prefix already in use"
            )));
        }
        // Node names too: a pre-existing parent node under the prefix
        // would silently short an instance-internal net to an unrelated
        // parent net when `self.node` re-interns it below.
        if (0..self.node_count()).any(|i| self.node_name(NodeId::from_index(i)).starts_with(&probe))
        {
            return Err(SpiceError::BadNetlist(format!(
                "instantiate {prefix}: a parent node already uses the prefix"
            )));
        }

        // Node map: ground → ground, ports → connections, internals →
        // prefixed interns (created on first reference, in node-id order
        // for determinism).
        let inner = &sub.circuit;
        let mut node_map: Vec<NodeId> = Vec::with_capacity(inner.node_count());
        let mut nodes: HashMap<String, NodeId> = HashMap::new();
        for idx in 0..inner.node_count() {
            let local = NodeId::from_index(idx);
            let mapped = if local.is_ground() {
                Circuit::GROUND
            } else if let Some(&parent) = port_map.get(&local) {
                parent
            } else {
                let name = format!("{prefix}{HIER_SEP}{}", inner.node_name(local));
                self.node(&name)
            };
            node_map.push(mapped);
            if !local.is_ground() {
                nodes.insert(inner.node_name(local).to_string(), mapped);
            }
        }

        let mut elems: HashMap<String, ElementId> = HashMap::with_capacity(inner.elements().len());
        let m = |n: &NodeId| node_map[n.index()];
        for e in inner.elements() {
            let name = format!("{prefix}{HIER_SEP}{}", e.name());
            let id = match e {
                Element::Resistor { a, b, ohms, .. } => self.add_resistor(&name, m(a), m(b), *ohms),
                Element::Capacitor { a, b, farads, .. } => {
                    self.add_capacitor(&name, m(a), m(b), *farads)
                }
                Element::VSource {
                    p, n, wave, ac_mag, ..
                } => self.add_vsource_wave(&name, m(p), m(n), wave.clone(), *ac_mag),
                Element::ISource {
                    p, n, wave, ac_mag, ..
                } => self.add_isource_wave(&name, m(p), m(n), wave.clone(), *ac_mag),
                Element::Vccs {
                    p, n, cp, cn, gm, ..
                } => self.add_vccs(&name, m(p), m(n), m(cp), m(cn), *gm),
                Element::Vcvs {
                    p, n, cp, cn, gain, ..
                } => self.add_vcvs(&name, m(p), m(n), m(cp), m(cn), *gain),
                Element::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    model,
                    w,
                    l,
                    ..
                } => self.add_mosfet(&name, m(d), m(g), m(s), m(b), *model, *w, *l),
                Element::Switch {
                    a,
                    b,
                    ron,
                    roff,
                    phase,
                    dc_closed,
                    ..
                } => self.add_switch(&name, m(a), m(b), *ron, *roff, *phase, *dc_closed),
            };
            elems.insert(e.name().to_string(), id);
        }
        Ok(Instance {
            prefix: prefix.to_string(),
            elems,
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};

    /// A resistive divider template: port `top` through R1/R2 to ground,
    /// with `mid` exposed.
    fn divider() -> Subckt {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.add_resistor("R1", top, mid, 1e3);
        c.add_resistor("R2", mid, Circuit::GROUND, 2e3);
        Subckt::new("div", c, &[("top", "top"), ("mid", "mid")]).unwrap()
    }

    #[test]
    fn ports_resolve_and_validate() {
        let d = divider();
        assert_eq!(d.name(), "div");
        assert!(d.port("top").is_some());
        assert!(d.port("nope").is_none());
        assert_eq!(d.ports().count(), 2);
        // Missing node, ground port and duplicate port are rejected.
        assert!(Subckt::new("x", Circuit::new(), &[("p", "ghost")]).is_err());
        let mut c = Circuit::new();
        c.node("a");
        assert!(Subckt::new("x", c.clone(), &[("p", "gnd")]).is_err());
        assert!(Subckt::new("x", c, &[("p", "a"), ("p", "a")]).is_err());
    }

    #[test]
    fn flattened_divider_solves() {
        let d = divider();
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        let tap = c.node("tap");
        let inst = c
            .instantiate(&d, "x1", &[("top", vin), ("mid", tap)])
            .unwrap();
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let mid = inst.node("mid").unwrap();
        assert!((op.voltage(mid) - 2.0).abs() < 1e-8);
        // The port node is the parent's node, not a prefixed copy.
        assert_eq!(inst.node("top"), Some(vin));
        assert_eq!(c.find_node("tap"), Some(mid));
        // Elements carry the instance path.
        assert!(c.find_element("x1.R1").is_some());
        assert_eq!(inst.element("R1"), c.find_element("x1.R1").map(|(i, _)| i));
    }

    #[test]
    fn instantiation_is_deterministic() {
        let d = divider();
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
            let tap = c.node("tap");
            c.instantiate(&d, "a", &[("top", vin), ("mid", tap)])
                .unwrap();
            let t2 = c.node("t2");
            c.instantiate(&d, "b", &[("top", tap), ("mid", t2)])
                .unwrap();
            c
        };
        let c1 = build();
        let c2 = build();
        assert_eq!(c1.elements(), c2.elements());
        assert_eq!(c1.node_count(), c2.node_count());
        assert_eq!(c1.topology_fingerprint(), c2.topology_fingerprint());
    }

    #[test]
    fn nested_instances_compose_paths() {
        // A template that itself contains an instance.
        let d = divider();
        let mut stage = Circuit::new();
        let i = stage.node("i");
        let o = stage.node("o");
        stage
            .instantiate(&d, "div", &[("top", i), ("mid", o)])
            .unwrap();
        stage.add_capacitor("CL", o, Circuit::GROUND, 1e-12);
        let stage = Subckt::new("stage", stage, &[("i", "i"), ("o", "o")]).unwrap();

        let mut top = Circuit::new();
        let vin = top.node("in");
        top.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        let out = top.node("out");
        let inst = top
            .instantiate(&stage, "s0", &[("i", vin), ("o", out)])
            .unwrap();
        assert!(top.find_element("s0.div.R1").is_some());
        assert_eq!(
            inst.element("div.R1"),
            top.find_element("s0.div.R1").map(|(i, _)| i)
        );
        let op = dc_operating_point(&top, &DcOptions::default()).unwrap();
        assert!((op.voltage(inst.node("o").unwrap()) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn retune_through_instance_path() {
        let d = divider();
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        let tap = c.node("tap");
        let inst = c
            .instantiate(&d, "x", &[("top", vin), ("mid", tap)])
            .unwrap();
        inst.set_value(&mut c, "R2", 1e3); // divider becomes 1k/1k
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(inst.node("mid").unwrap()) - 1.5).abs() < 1e-8);
    }

    #[test]
    fn bad_instantiations_are_rejected() {
        let d = divider();
        let mut c = Circuit::new();
        let vin = c.node("in");
        let tap = c.node("tap");
        // Unknown port.
        assert!(c.instantiate(&d, "x", &[("ghost", vin)]).is_err());
        // Unconnected port.
        assert!(c.instantiate(&d, "x", &[("top", vin)]).is_err());
        // Prefix collision.
        c.instantiate(&d, "x", &[("top", vin), ("mid", tap)])
            .unwrap();
        assert!(c
            .instantiate(&d, "x", &[("top", vin), ("mid", tap)])
            .is_err());
        // A pre-existing parent *node* under the prefix is a collision
        // too: re-interning would short an internal net to it.
        let mut c2 = Circuit::new();
        let vin2 = c2.node("in");
        c2.add_vsource("V1", vin2, Circuit::GROUND, 1.0);
        c2.node("y.mid"); // unrelated probe net squatting on the prefix
        let tap2 = c2.node("tap");
        assert!(c2
            .instantiate(&d, "y", &[("top", vin2), ("mid", tap2)])
            .is_err());
    }

    #[test]
    fn mosfets_and_switches_flatten() {
        use crate::netlist::ClockPhase;
        use crate::process::Process;
        let p = Process::c025();
        let mut amp = Circuit::new();
        let g = amp.node("g");
        let dnode = amp.node("d");
        amp.add_mosfet(
            "M1",
            dnode,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            5e-6,
            0.5e-6,
        );
        amp.add_switch("S1", g, dnode, 100.0, 1e12, ClockPhase::Phi2, true);
        let sub = Subckt::new("cs", amp, &[("g", "g"), ("d", "d")]).unwrap();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        let dn = c.node("dn");
        c.add_resistor("RD", vdd, dn, 10e3);
        let inst = c.instantiate(&sub, "a0", &[("g", dn), ("d", dn)]).unwrap();
        assert_eq!(c.mosfets().count(), 1);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!(op.mos_eval("a0.M1").is_some());
        // Geometry retune resolves through the path.
        inst.set_device_geometry(&mut c, "M1", 10e-6, 0.5e-6);
        let (_, e) = c.find_element("a0.M1").unwrap();
        match e {
            Element::Mosfet { w, .. } => assert_eq!(*w, 10e-6),
            _ => unreachable!(),
        }
    }
}
