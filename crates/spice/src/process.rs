//! Process technology description: a 0.25 µm 3.3 V CMOS node with
//! level-1-style MOS parameters plus passive-component data.
//!
//! The paper targets "a 0.25 µm 3.3 V CMOS process". The authors used a
//! proprietary foundry deck; we substitute published-typical values (see
//! DESIGN.md). Absolute currents differ from the authors' silicon, but every
//! *trend* the topology optimization exploits — gm/I vs overdrive, intrinsic
//! gain vs channel length, capacitance per width — is preserved.

use adc_numerics::quant::Fingerprint;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Nmos => write!(f, "nmos"),
            Polarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Level-1-style MOS model card (all SI units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosModel {
    /// Device polarity.
    pub polarity: Polarity,
    /// Zero-bias threshold voltage, V (positive magnitude for both types).
    pub vto: f64,
    /// Transconductance parameter `µ·Cox`, A/V².
    pub kp: f64,
    /// Body-effect coefficient, √V.
    pub gamma: f64,
    /// Surface potential `2φF`, V.
    pub phi: f64,
    /// Channel-length-modulation coefficient normalized to 1 µm: the
    /// effective λ of a device is `lambda_l / (L in µm)`, 1/V.
    pub lambda_l: f64,
    /// Lateral diffusion per side, m (`Leff = L − 2·LD`).
    pub ld: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Gate–source overlap capacitance per width, F/m.
    pub cgso: f64,
    /// Gate–drain overlap capacitance per width, F/m.
    pub cgdo: f64,
    /// Junction capacitance per area (zero bias), F/m².
    pub cj: f64,
    /// Junction sidewall capacitance per length (zero bias), F/m.
    pub cjsw: f64,
    /// Source/drain diffusion length, m (sets junction area `W·LDIFF`).
    pub ldiff: f64,
}

impl MosModel {
    /// Folds every model parameter into a fingerprint (exact bits — model
    /// cards are constants, not derived quantities).
    fn fingerprint_into(&self, fp: Fingerprint) -> Fingerprint {
        fp.add_u64(match self.polarity {
            Polarity::Nmos => 0,
            Polarity::Pmos => 1,
        })
        .add_f64_exact(self.vto)
        .add_f64_exact(self.kp)
        .add_f64_exact(self.gamma)
        .add_f64_exact(self.phi)
        .add_f64_exact(self.lambda_l)
        .add_f64_exact(self.ld)
        .add_f64_exact(self.cox)
        .add_f64_exact(self.cgso)
        .add_f64_exact(self.cgdo)
        .add_f64_exact(self.cj)
        .add_f64_exact(self.cjsw)
        .add_f64_exact(self.ldiff)
    }

    /// Effective channel length for a drawn length `l`.
    pub fn leff(&self, l: f64) -> f64 {
        (l - 2.0 * self.ld).max(1e-9)
    }

    /// Channel-length modulation λ for drawn length `l` (1/V).
    pub fn lambda(&self, l: f64) -> f64 {
        self.lambda_l / (self.leff(l) * 1e6)
    }
}

/// Full process description shared by device models and design layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Human-readable node name, e.g. `"c025"`.
    pub name: String,
    /// Nominal supply voltage, V.
    pub vdd: f64,
    /// Minimum drawn channel length, m.
    pub lmin: f64,
    /// Minimum drawn width, m.
    pub wmin: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Capacitor density for precision (MiM/poly-poly) caps, F/m².
    pub cap_density: f64,
    /// Relative 1-σ mismatch of a unit capacitor of area `cap_unit_area`.
    pub cap_sigma_unit: f64,
    /// Area of the reference unit capacitor used for `cap_sigma_unit`, m².
    pub cap_unit_area: f64,
}

impl Process {
    /// The 0.25 µm, 3.3 V CMOS process used throughout the paper's
    /// evaluation, with published-typical level-1 parameters.
    pub fn c025() -> Self {
        Process {
            name: "c025".to_string(),
            vdd: 3.3,
            lmin: 0.25e-6,
            wmin: 0.5e-6,
            nmos: MosModel {
                polarity: Polarity::Nmos,
                vto: 0.50,
                kp: 115e-6 * 2.0, // µn·Cox ≈ 230 µA/V² at tox ≈ 5.7 nm
                gamma: 0.45,
                phi: 0.80,
                lambda_l: 0.06,
                ld: 0.02e-6,
                cox: 6.0e-3,
                cgso: 3.0e-10,
                cgdo: 3.0e-10,
                cj: 1.0e-3,
                cjsw: 2.5e-10,
                ldiff: 0.6e-6,
            },
            pmos: MosModel {
                polarity: Polarity::Pmos,
                vto: 0.55,
                kp: 30e-6 * 2.0, // µp·Cox ≈ 60 µA/V²
                gamma: 0.40,
                phi: 0.80,
                lambda_l: 0.08,
                ld: 0.02e-6,
                cox: 6.0e-3,
                cgso: 3.0e-10,
                cgdo: 3.0e-10,
                cj: 1.2e-3,
                cjsw: 3.0e-10,
                ldiff: 0.6e-6,
            },
            cap_density: 1.0e-3,    // 1 fF/µm²
            cap_sigma_unit: 1.5e-3, // 0.15 % 1-σ for the 25 fF unit
            cap_unit_area: 25e-12,  // 25 µm² → 25 fF unit cap
        }
    }

    /// Model card for the requested polarity.
    pub fn model(&self, polarity: Polarity) -> &MosModel {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// Deterministic fingerprint of the complete process description (name,
    /// supply, geometry limits, both model cards, capacitor data). Two
    /// processes with equal fingerprints produce identical simulation
    /// results for the same netlist — the process component of any
    /// cross-run synthesis cache key.
    pub fn fingerprint(&self) -> u64 {
        let fp = Fingerprint::new()
            .add_str(&self.name)
            .add_f64_exact(self.vdd)
            .add_f64_exact(self.lmin)
            .add_f64_exact(self.wmin);
        let fp = self.nmos.fingerprint_into(fp);
        let fp = self.pmos.fingerprint_into(fp);
        fp.add_f64_exact(self.cap_density)
            .add_f64_exact(self.cap_sigma_unit)
            .add_f64_exact(self.cap_unit_area)
            .finish()
    }

    /// 1-σ relative mismatch of a capacitor of value `c` (farads), from the
    /// usual `σ ∝ 1/√area` law.
    pub fn cap_mismatch_sigma(&self, c: f64) -> f64 {
        let area = c / self.cap_density;
        self.cap_sigma_unit * (self.cap_unit_area / area.max(1e-18)).sqrt()
    }
}

impl Default for Process {
    /// The default process is the paper's 0.25 µm node.
    fn default() -> Self {
        Process::c025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c025_sanity() {
        let p = Process::c025();
        assert_eq!(p.vdd, 3.3);
        assert!(p.nmos.kp > p.pmos.kp, "NMOS must be stronger than PMOS");
        assert!(p.nmos.vto > 0.3 && p.nmos.vto < 0.7);
        assert!(p.lmin == 0.25e-6);
    }

    #[test]
    fn leff_subtracts_lateral_diffusion() {
        let p = Process::c025();
        let l = 0.25e-6;
        assert!((p.nmos.leff(l) - 0.21e-6).abs() < 1e-12);
    }

    #[test]
    fn lambda_decreases_with_length() {
        let p = Process::c025();
        let l_short = p.nmos.lambda(0.25e-6);
        let l_long = p.nmos.lambda(1.0e-6);
        assert!(
            l_short > 2.0 * l_long,
            "λ should drop with L: {l_short} vs {l_long}"
        );
    }

    #[test]
    fn cap_mismatch_scales_with_area() {
        let p = Process::c025();
        let s_small = p.cap_mismatch_sigma(25e-15);
        let s_big = p.cap_mismatch_sigma(100e-15);
        assert!((s_small - p.cap_sigma_unit).abs() < 1e-9);
        assert!((s_big - p.cap_sigma_unit / 2.0).abs() < 1e-6);
    }

    #[test]
    fn default_is_c025() {
        assert_eq!(Process::default(), Process::c025());
    }

    #[test]
    fn fingerprint_distinguishes_processes() {
        let a = Process::c025();
        assert_eq!(a.fingerprint(), Process::c025().fingerprint());
        let mut b = Process::c025();
        b.vdd = 2.5;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = Process::c025();
        c.nmos.kp *= 1.01;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
