//! DC operating-point analysis: damped Newton–Raphson on the MNA residual,
//! with g_min stepping and source stepping as homotopy fallbacks.
//!
//! This is the "DC simulation to extract small signal values" leg of the
//! paper's hybrid evaluation loop (§3): every synthesis iteration solves the
//! candidate OTA's bias point here, then hands the extracted gm/gds/C to the
//! equation-based transfer-function analysis.

use crate::linearize::SolverChoice;
use crate::mna::{add_opt, MnaMap};
use crate::mosfet::eval_mosfet;
use crate::netlist::{Circuit, Element};
use crate::op::OperatingPoint;
use crate::{SpiceError, SpiceResult};
use adc_numerics::linalg::Lu;
use adc_numerics::sparse::{prefer_sparse, CsrMatrix, CsrPattern, SparseLu, Symbolic};
use adc_numerics::{Deadline, Matrix};
use std::collections::HashMap;

/// Newton step-limiting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DcDamping {
    /// Scale the whole update vector so the largest node-voltage change
    /// equals `max_step` — the conservative classic that preserves the
    /// Newton direction. The historical default; every flat OTA testbench
    /// solves under it unchanged.
    #[default]
    Global,
    /// Clamp each node-voltage update independently at ±`max_step` (SPICE
    /// per-node voltage limiting). On hierarchical chain testbenches a
    /// wound-up servo output can request hundreds of volts while the
    /// supply is still ramping; global scaling then starves every other
    /// unknown's progress, while per-node limiting lets the independent
    /// parts of a large system converge at their own pace.
    PerNode,
}

/// Options controlling the DC solve.
#[derive(Debug, Clone)]
pub struct DcOptions {
    /// Maximum Newton iterations per homotopy stage.
    pub max_iter: usize,
    /// Voltage-update convergence tolerance, V.
    pub vtol: f64,
    /// KCL residual tolerance, A.
    pub itol: f64,
    /// Largest allowed node-voltage change per damped Newton step, V.
    pub max_step: f64,
    /// Baseline diagonal g_min, S.
    pub gmin: f64,
    /// Initial node-voltage guesses by node name (SPICE `.nodeset`).
    pub nodeset: HashMap<String, f64>,
    /// Step-limiting strategy.
    pub damping: DcDamping,
    /// Cooperative wall-clock budget, checked per Newton iteration. An
    /// expired deadline turns the solve into [`SpiceError::Timeout`]
    /// instead of a hang; the default is unlimited and costs nothing.
    pub deadline: Deadline,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iter: 150,
            vtol: 1e-9,
            itol: 1e-9,
            max_step: 0.4,
            gmin: 1e-12,
            nodeset: HashMap::new(),
            damping: DcDamping::Global,
            deadline: Deadline::none(),
        }
    }
}

/// Walks the constant linear stamps (everything except MOSFETs and g_min):
/// Jacobian entries go through `add(row, col, value)`, independent-source
/// contributions accumulate into `rhs`. Both the dense and the sparse
/// engine assemble through this single traversal — and the sparse slot
/// maps are recorded from it too, so the two can never disagree on stamp
/// order.
fn stamp_linear(
    circuit: &Circuit,
    map: &MnaMap,
    rhs: &mut [f64],
    add: &mut impl FnMut(usize, usize, f64),
) {
    let cond =
        |a: Option<usize>, b: Option<usize>, g: f64, add: &mut dyn FnMut(usize, usize, f64)| {
            if let Some(i) = a {
                add(i, i, g);
            }
            if let Some(j) = b {
                add(j, j, g);
            }
            if let (Some(i), Some(j)) = (a, b) {
                add(i, j, -g);
                add(j, i, -g);
            }
        };
    for (idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                cond(map.node_row(*a), map.node_row(*b), 1.0 / ohms, add);
            }
            Element::Capacitor { .. } | Element::Mosfet { .. } => {
                // Caps are open in DC; MOSFETs restamp per iteration.
            }
            Element::Switch {
                a,
                b,
                ron,
                roff,
                dc_closed,
                ..
            } => {
                let g = 1.0 / if *dc_closed { *ron } else { *roff };
                cond(map.node_row(*a), map.node_row(*b), g, add);
            }
            Element::ISource { p, n, wave, .. } => {
                // Linear residual is `jac·x − scale·rhs`, so a current `i`
                // leaving `p` lands in the rhs with sign −i.
                let i = wave.dc_value();
                add_opt(rhs, map.node_row(*p), -i);
                add_opt(rhs, map.node_row(*n), i);
            }
            Element::VSource { p, n, wave, .. } => {
                let br = map.branch_row(idx);
                for (r, sgn) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    if let Some(r) = r {
                        add(r, br, sgn);
                        add(br, r, sgn);
                    }
                }
                rhs[br] += wave.dc_value();
            }
            Element::Vcvs {
                p, n, cp, cn, gain, ..
            } => {
                let br = map.branch_row(idx);
                for (r, sgn) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    if let Some(r) = r {
                        add(r, br, sgn);
                        add(br, r, sgn);
                    }
                }
                if let Some(r) = map.node_row(*cp) {
                    add(br, r, -gain);
                }
                if let Some(r) = map.node_row(*cn) {
                    add(br, r, *gain);
                }
            }
            Element::Vccs {
                p, n, cp, cn, gm, ..
            } => {
                for (out, so) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    let Some(row) = out else { continue };
                    for (ctrl, sc) in [(map.node_row(*cp), 1.0), (map.node_row(*cn), -1.0)] {
                        if let Some(col) = ctrl {
                            add(row, col, so * sc * gm);
                        }
                    }
                }
            }
        }
    }
}

/// Walks the MOSFET companion stamps at operating point `x`: drain/source
/// currents accumulate into `res`, Jacobian entries go through `add`. The
/// sequence of `add` calls depends only on the topology (ground-ness of
/// terminals), never on values — the invariant the sparse slot replay
/// relies on.
pub(crate) fn stamp_mosfets(
    circuit: &Circuit,
    map: &MnaMap,
    x: &[f64],
    res: &mut [f64],
    add: &mut impl FnMut(usize, usize, f64),
) {
    for e in circuit.elements() {
        let Element::Mosfet {
            d,
            g,
            s,
            b,
            model,
            w,
            l,
            ..
        } = e
        else {
            continue;
        };
        let vd = map.voltage(x, *d);
        let vg = map.voltage(x, *g);
        let vs = map.voltage(x, *s);
        let vb = map.voltage(x, *b);
        let ev = eval_mosfet(model, *w, *l, vg - vs, vd - vs, vb - vs);
        let (rd, rg, rs, rb) = (
            map.node_row(*d),
            map.node_row(*g),
            map.node_row(*s),
            map.node_row(*b),
        );
        // Current leaves the drain (+id) and enters the source (−id).
        add_opt(res, rd, ev.id);
        add_opt(res, rs, -ev.id);
        // ∂id/∂(vg, vd, vb, vs): gm, gds, gmb, −(gm+gds+gmb).
        let gs_total = ev.gm + ev.gds + ev.gmb;
        for (row, sign) in [(rd, 1.0), (rs, -1.0)] {
            let Some(r) = row else { continue };
            if let Some(cg) = rg {
                add(r, cg, sign * ev.gm);
            }
            if let Some(cd) = rd {
                add(r, cd, sign * ev.gds);
            }
            if let Some(cb) = rb {
                add(r, cb, sign * ev.gmb);
            }
            if let Some(cs) = rs {
                add(r, cs, -sign * gs_total);
            }
        }
    }
}

/// Builds the dense engine storage for a circuit, recording the MOSFET
/// companion stamp pattern as flat slots so the per-iteration restamp
/// replays through the chunked [`Matrix::scatter_add`] kernel — the dense
/// twin of the CSR slot replay.
fn dense_engine(circuit: &Circuit, map: &MnaMap) -> DcEngine {
    let dim = map.dim();
    let zeros = vec![0.0; dim];
    let mut scratch = vec![0.0; dim];
    let mut mos_slots: Vec<usize> = Vec::new();
    stamp_mosfets(circuit, map, &zeros, &mut scratch, &mut |r, c, _| {
        mos_slots.push(r * dim + c);
    });
    let mos_len = mos_slots.len();
    DcEngine::Dense {
        base_jac: Matrix::zeros(dim, dim),
        jac: Matrix::zeros(dim, dim),
        lu: Lu::with_dim(dim),
        mos_slots,
        mos_vals: Vec::with_capacity(mos_len),
    }
}

/// The linear-solver engine inside a [`DcWorkspace`]: dense partial-pivot
/// LU (the oracle), or CSR with a symbolic factorization frozen once per
/// topology and MOSFET restamps writing through precomputed slot indices.
#[derive(Debug)]
enum DcEngine {
    Dense {
        /// Constant linear-stamp Jacobian (g_min excluded; it varies per
        /// homotopy stage and is added per iteration).
        base_jac: Matrix,
        jac: Matrix,
        lu: Lu,
        /// Flat (row-major) MOSFET companion stamp slots in traversal
        /// order, mirroring the sparse engine's slot map.
        mos_slots: Vec<usize>,
        /// Scratch for the buffered companion values, replayed through the
        /// chunked [`Matrix::scatter_add`] kernel each iteration.
        mos_vals: Vec<f64>,
    },
    Sparse {
        /// Linear base values aligned with the pattern's nonzeros.
        base_vals: Vec<f64>,
        jac: CsrMatrix,
        lu: SparseLu,
        /// Stamp slots in traversal order: linear stamps, then the g_min
        /// node diagonals, then the MOSFET companion entries.
        slots: Vec<usize>,
        linear_len: usize,
        gmin_len: usize,
        /// Scratch for MOSFET companion values, buffered per assembly so
        /// the restamp replays through the chunked
        /// [`CsrMatrix::scatter_add`] kernel instead of per-entry adds.
        mos_vals: Vec<f64>,
    },
}

/// Reusable DC-solve workspace: the [`MnaMap`] is built once per circuit
/// topology, the **constant linear stamps** (resistors, switches, source
/// patterns, controlled sources) are assembled once per solve, and every
/// Newton iteration only memcpy's the linear base back and restamps the
/// MOSFET companions — the iteration loop performs **zero heap
/// allocation**. On OTA-sized testbenches (≥ ~90 % structural zeros) the
/// Jacobian lives in CSR form and each iteration refactors against a
/// symbolic factorization computed once per topology; tiny or dense
/// systems keep the dense partial-pivoting path, which also remains the
/// fallback oracle if a static sparse pivot ever underflows.
///
/// Retuned element *values* are picked up automatically (the base is
/// restamped at the start of each [`dc_operating_point_with`] call); a
/// changed *topology* (node or element count) rebuilds the workspace.
#[derive(Debug)]
pub struct DcWorkspace {
    map: MnaMap,
    elem_count: usize,
    /// Wiring fingerprint ([`Circuit::topology_fingerprint`]) the stamp
    /// slot maps were recorded for — rewired circuits with coincidentally
    /// equal node/element counts must rebuild, not reuse.
    fingerprint: u64,
    /// Engine selection this workspace was created with; topology-change
    /// rebuilds preserve it (a dense-forced oracle workspace must not
    /// silently go back to automatic selection).
    choice: SolverChoice,
    /// Constant source vector: linear residual = `base_jac·x − scale·base_rhs`.
    base_rhs: Vec<f64>,
    res: Vec<f64>,
    dx: Vec<f64>,
    x: Vec<f64>,
    x0: Vec<f64>,
    /// `x` holds a converged solution from a previous solve (used by
    /// [`dc_operating_point_warm`] to skip the homotopy ladder).
    warm_valid: bool,
    engine: DcEngine,
    /// Set when the sparse engine hit a numerically unlucky static pivot;
    /// the solve entry points demote to dense and retry.
    sparse_failed: bool,
}

impl DcWorkspace {
    /// Builds the workspace (index map + preallocated buffers) for a
    /// circuit topology, selecting the solver engine by structural fill
    /// ratio.
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if the circuit has no unknowns.
    pub fn new(circuit: &Circuit) -> SpiceResult<Self> {
        DcWorkspace::with_solver(circuit, SolverChoice::Auto)
    }

    /// [`DcWorkspace::new`] with an explicit solver-engine choice
    /// (tests/diagnostics; production uses [`SolverChoice::Auto`]).
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if the circuit has no unknowns.
    pub fn with_solver(circuit: &Circuit, choice: SolverChoice) -> SpiceResult<Self> {
        let map = MnaMap::new(circuit);
        let dim = map.dim();
        if dim == 0 {
            return Err(SpiceError::BadNetlist("circuit has no unknowns".into()));
        }
        let engine = DcWorkspace::build_engine(circuit, &map, choice);
        Ok(DcWorkspace {
            map,
            elem_count: circuit.elements().len(),
            fingerprint: circuit.topology_fingerprint(),
            choice,
            base_rhs: vec![0.0; dim],
            res: vec![0.0; dim],
            dx: vec![0.0; dim],
            x: vec![0.0; dim],
            x0: vec![0.0; dim],
            warm_valid: false,
            engine,
            sparse_failed: false,
        })
    }

    /// Records the full stamp pattern (linear + g_min diagonals + MOSFET
    /// companions) and chooses the engine.
    fn build_engine(circuit: &Circuit, map: &MnaMap, choice: SolverChoice) -> DcEngine {
        let dim = map.dim();
        if choice == SolverChoice::Dense {
            return dense_engine(circuit, map);
        }
        // Record every stamp position in traversal order.
        let mut entries: Vec<(usize, usize)> = Vec::new();
        let mut scratch_rhs = vec![0.0; dim];
        stamp_linear(circuit, map, &mut scratch_rhs, &mut |r, c, _| {
            entries.push((r, c));
        });
        let linear_len = entries.len();
        for row in 0..(map.node_count() - 1) {
            entries.push((row, row));
        }
        let gmin_len = entries.len() - linear_len;
        let zeros = vec![0.0; dim];
        let mut scratch_res = vec![0.0; dim];
        stamp_mosfets(circuit, map, &zeros, &mut scratch_res, &mut |r, c, _| {
            entries.push((r, c));
        });
        let (pattern, slots) = CsrPattern::from_entries(dim, &entries);
        let go_sparse = match choice {
            SolverChoice::Auto => prefer_sparse(dim, pattern.nnz()),
            SolverChoice::Sparse => true,
            SolverChoice::Dense => unreachable!("handled above"),
        };
        if !go_sparse {
            return dense_engine(circuit, map);
        }
        match Symbolic::analyze(&pattern) {
            Ok(sym) => {
                let mos_len = slots.len() - linear_len - gmin_len;
                DcEngine::Sparse {
                    base_vals: vec![0.0; pattern.nnz()],
                    jac: CsrMatrix::zeros(pattern),
                    lu: SparseLu::new(sym),
                    slots,
                    linear_len,
                    gmin_len,
                    mos_vals: Vec::with_capacity(mos_len),
                }
            }
            // Structurally singular patterns get the dense oracle's
            // per-iteration singularity reporting instead.
            Err(_) => dense_engine(circuit, map),
        }
    }

    /// Whether this workspace was built for `circuit`'s topology (same
    /// node count, branch-unknown pattern and element wiring — value
    /// retuning keeps it valid, while a reordered, rewired or
    /// kind-swapped element list rebuilds).
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.elem_count == circuit.elements().len()
            && self.map.matches(circuit)
            && self.fingerprint == circuit.topology_fingerprint()
    }

    /// The MNA index map.
    pub fn map(&self) -> &MnaMap {
        &self.map
    }

    /// Whether the Newton Jacobian currently factors sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.engine, DcEngine::Sparse { .. })
    }

    /// Replaces the engine with the dense oracle (sparse static pivot
    /// underflowed).
    fn demote_to_dense(&mut self, circuit: &Circuit) {
        self.engine = dense_engine(circuit, &self.map);
        self.sparse_failed = false;
    }

    /// Stamps the constant linear part (everything except MOSFETs and
    /// g_min) into the engine's base storage. Called once per solve so
    /// value retuning is picked up.
    fn stamp_linear_base(&mut self, circuit: &Circuit) {
        let map = &self.map;
        let rhs = &mut self.base_rhs;
        rhs.fill(0.0);
        match &mut self.engine {
            DcEngine::Dense { base_jac, .. } => {
                base_jac.clear();
                stamp_linear(circuit, map, rhs, &mut |r, c, v| base_jac.add_at(r, c, v));
            }
            DcEngine::Sparse {
                base_vals,
                slots,
                linear_len,
                ..
            } => {
                base_vals.fill(0.0);
                let mut k = 0usize;
                stamp_linear(circuit, map, rhs, &mut |_, _, v| {
                    base_vals[slots[k]] += v;
                    k += 1;
                });
                debug_assert_eq!(k, *linear_len, "stamp traversal drifted from slot map");
            }
        }
    }

    /// Assembles the Jacobian and residual at the current `x` without
    /// allocating: memcpy the linear base back, evaluate the linear
    /// residual as a mat-vec, then restamp only the MOSFET companions —
    /// through precomputed slot indices on the sparse engine.
    ///
    /// `source_scale` multiplies all independent sources (for source
    /// stepping); `gmin` is added from every node to ground.
    fn assemble(&mut self, circuit: &Circuit, gmin: f64, source_scale: f64) {
        let map = &self.map;
        let x = &self.x;
        let res = &mut self.res;
        match &mut self.engine {
            DcEngine::Dense {
                base_jac,
                jac,
                mos_slots,
                mos_vals,
                ..
            } => {
                jac.copy_from(base_jac);
                jac.mul_vec_into(x, res);
                for (r, b) in res.iter_mut().zip(self.base_rhs.iter()) {
                    *r -= source_scale * b;
                }
                // g_min from every non-ground node to ground.
                for row in 0..(map.node_count() - 1) {
                    jac.add_at(row, row, gmin);
                    res[row] += gmin * x[row];
                }
                // MOSFET companions: buffer the traversal's values, then
                // scatter through the chunked kernel — same accumulation
                // order as direct stamping, so results are bit-identical.
                mos_vals.clear();
                stamp_mosfets(circuit, map, x, res, &mut |_, _, v| {
                    mos_vals.push(v);
                });
                debug_assert_eq!(
                    mos_vals.len(),
                    mos_slots.len(),
                    "stamp traversal drifted from slot map"
                );
                jac.scatter_add(mos_slots, mos_vals);
            }
            DcEngine::Sparse {
                base_vals,
                jac,
                slots,
                linear_len,
                gmin_len,
                mos_vals,
                ..
            } => {
                jac.values_mut().copy_from_slice(base_vals);
                jac.mul_vec_into(x, res);
                for (r, b) in res.iter_mut().zip(self.base_rhs.iter()) {
                    *r -= source_scale * b;
                }
                // g_min node diagonals: the residual update is a contiguous
                // axpy over the node rows, the matrix update a chunked
                // uniform slot replay.
                let gmin_slots = &slots[*linear_len..*linear_len + *gmin_len];
                for (r, &xi) in res[..*gmin_len].iter_mut().zip(x[..*gmin_len].iter()) {
                    *r += gmin * xi;
                }
                jac.scatter_add_uniform(gmin_slots, gmin);
                // MOSFET companions: buffer the traversal's values, then
                // scatter through the chunked kernel in the same order.
                mos_vals.clear();
                stamp_mosfets(circuit, map, x, res, &mut |_, _, v| {
                    mos_vals.push(v);
                });
                let mos_slots = &slots[*linear_len + *gmin_len..];
                debug_assert_eq!(
                    mos_vals.len(),
                    mos_slots.len(),
                    "stamp traversal drifted from slot map"
                );
                jac.scatter_add(mos_slots, mos_vals);
            }
        }
    }

    /// Factors the assembled Jacobian and solves `J·dx = res` into `dx`.
    /// Returns `false` on a singular factorization (sparse failures also
    /// raise `sparse_failed` so the entry points can demote to dense).
    fn factor_and_solve(&mut self) -> bool {
        match &mut self.engine {
            DcEngine::Dense { jac, lu, .. } => {
                if lu.factor_into(jac).is_err() {
                    return false;
                }
                lu.solve_into(&self.res, &mut self.dx);
                true
            }
            DcEngine::Sparse { jac, lu, .. } => {
                if lu.factor_into(jac).is_err() {
                    self.sparse_failed = true;
                    return false;
                }
                lu.solve_into(&self.res, &mut self.dx);
                true
            }
        }
    }
}

/// Result of one Newton stage.
struct NewtonOutcome {
    converged: bool,
    iterations: usize,
    residual: f64,
    /// The stage stopped because [`DcOptions::deadline`] expired, not
    /// because the iteration diverged.
    timed_out: bool,
}

/// Damped Newton on the workspace's `x`. The loop is allocation-free: the
/// Jacobian is memcpy'd from the linear base, the LU refactors into the
/// workspace's [`Lu`], and the update solves into the preallocated `dx`.
fn newton(
    ws: &mut DcWorkspace,
    circuit: &Circuit,
    opts: &DcOptions,
    gmin: f64,
    source_scale: f64,
    max_iter: usize,
) -> NewtonOutcome {
    let mut last_res = f64::INFINITY;
    for it in 0..max_iter {
        // Deadline check at iteration granularity: an unlimited deadline
        // short-circuits to one branch, so the zero-budget path is free.
        if opts.deadline.expired() {
            return NewtonOutcome {
                converged: false,
                iterations: it,
                residual: last_res,
                timed_out: true,
            };
        }
        ws.assemble(circuit, gmin, source_scale);
        let rnorm = ws.res.iter().fold(0.0_f64, |m, &r| m.max(r.abs()));
        last_res = rnorm;
        // Newton step: J·dx = −res, reusing res as the negated rhs.
        ws.res.iter_mut().for_each(|r| *r = -*r);
        if !ws.factor_and_solve() {
            return NewtonOutcome {
                converged: false,
                iterations: it,
                residual: rnorm,
                timed_out: false,
            };
        }
        // Damping: cap node-voltage updates (the *requested* max update
        // drives the convergence check in both strategies, so a clipped
        // creep can never false-converge).
        let nv = ws.map.node_count() - 1;
        let max_dv = ws.dx[..nv].iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
        let applied_dv = match opts.damping {
            DcDamping::Global => {
                let alpha = if max_dv > opts.max_step {
                    opts.max_step / max_dv
                } else {
                    1.0
                };
                for (xi, di) in ws.x.iter_mut().zip(ws.dx.iter()) {
                    *xi += alpha * di;
                }
                max_dv * alpha
            }
            DcDamping::PerNode => {
                for (i, (xi, di)) in ws.x.iter_mut().zip(ws.dx.iter()).enumerate() {
                    if i < nv {
                        *xi += di.clamp(-opts.max_step, opts.max_step);
                    } else {
                        // Branch currents are linear unknowns; they follow
                        // the (re-solved) node voltages unclipped.
                        *xi += di;
                    }
                }
                max_dv
            }
        };
        if !ws.x.iter().all(|v| v.is_finite()) {
            return NewtonOutcome {
                converged: false,
                iterations: it,
                residual: f64::INFINITY,
                timed_out: false,
            };
        }
        if applied_dv < opts.vtol && rnorm < opts.itol {
            return NewtonOutcome {
                converged: true,
                iterations: it + 1,
                residual: rnorm,
                timed_out: false,
            };
        }
    }
    NewtonOutcome {
        converged: false,
        iterations: max_iter,
        residual: last_res,
        timed_out: false,
    }
}

/// Computes the DC operating point of a circuit.
///
/// Strategy: plain damped Newton from the node-set/zero initial guess; if
/// that fails, g_min stepping (decade by decade); if that fails, source
/// stepping. This mirrors production SPICE behaviour.
///
/// # Errors
/// [`SpiceError::DcConvergence`] if all homotopy stages fail;
/// [`SpiceError::Singular`] if the system stays singular (e.g. a floating
/// subcircuit with g_min disabled).
pub fn dc_operating_point(circuit: &Circuit, opts: &DcOptions) -> SpiceResult<OperatingPoint> {
    let mut ws = DcWorkspace::new(circuit)?;
    dc_operating_point_with(&mut ws, circuit, opts)
}

/// [`dc_operating_point`] with a caller-owned reusable [`DcWorkspace`]:
/// across repeated solves of the same topology (a synthesis loop retuning
/// one testbench) the MNA map, Jacobian, LU and solution buffers are all
/// reused and the steady-state Newton iterations never allocate.
///
/// The constant linear stamps are refreshed from the circuit's current
/// element values on every call, so in-place retuning
/// ([`Circuit::set_value`], [`Circuit::set_device_geometry`]) is picked up.
/// A workspace built for a *different topology* is rebuilt transparently.
///
/// # Errors
/// Same contract as [`dc_operating_point`].
pub fn dc_operating_point_with(
    ws: &mut DcWorkspace,
    circuit: &Circuit,
    opts: &DcOptions,
) -> SpiceResult<OperatingPoint> {
    #[cfg(feature = "faults")]
    if let Some(e) = injected_dc_fault() {
        return Err(e);
    }
    if !ws.matches(circuit) {
        *ws = DcWorkspace::with_solver(circuit, ws.choice)?;
    }
    // Scope the demotion decision to *this* solve: a transient pivot
    // failure in an earlier, ultimately successful solve must not demote
    // a later unrelated convergence failure.
    ws.sparse_failed = false;
    ws.stamp_linear_base(circuit);
    let out = solve_cold(ws, circuit, opts);
    if retry_dense(&out) && ws.sparse_failed {
        // A static sparse pivot underflowed somewhere in the ladder; the
        // dense oracle's partial pivoting may still converge.
        ws.demote_to_dense(circuit);
        ws.stamp_linear_base(circuit);
        return solve_cold(ws, circuit, opts);
    }
    out
}

/// Whether a failed cold solve is worth retrying on the dense engine: an
/// expired deadline is not — the budget is gone, and a dense re-solve
/// would only blow further past it.
fn retry_dense(out: &SpiceResult<OperatingPoint>) -> bool {
    matches!(out, Err(e) if !matches!(e, SpiceError::Timeout { .. }))
}

/// Maps an armed `dc_solve` fault-injection rule to the failure the rest
/// of the stack must absorb. `Corrupt` has no datum to corrupt at this
/// layer, so it degrades to a convergence failure.
#[cfg(feature = "faults")]
fn injected_dc_fault() -> Option<SpiceError> {
    use adc_numerics::faults::{self, FaultAction};
    match faults::check(faults::SITE_DC_SOLVE)? {
        FaultAction::FailConvergence | FaultAction::Corrupt => Some(SpiceError::DcConvergence {
            residual: f64::INFINITY,
            iterations: 0,
        }),
        FaultAction::Panic => panic!("injected fault: dc_solve panic"),
        FaultAction::Timeout => Some(SpiceError::Timeout {
            analysis: "dc",
            iterations: 0,
        }),
    }
}

/// Iteration cap for the warm-start Newton attempt: a good initial guess
/// converges in a handful of iterations; anything slower falls back to the
/// full homotopy ladder rather than wandering.
const WARM_MAX_ITER: usize = 40;

/// [`dc_operating_point_with`] that additionally **warm-starts** from the
/// workspace's previous converged solution: in a synthesis loop retuning
/// one testbench, successive candidates sit close in design space, so a
/// plain Newton from the last operating point usually converges in a few
/// iterations and the whole homotopy ladder is skipped. Falls back to the
/// cold-start ladder when the warm attempt fails.
///
/// The converged point can differ from the cold-start one within the
/// solver tolerances (`vtol`/`itol`); use [`dc_operating_point_with`] when
/// bit-reproducibility against a fresh solve matters.
///
/// # Errors
/// Same contract as [`dc_operating_point`].
pub fn dc_operating_point_warm(
    ws: &mut DcWorkspace,
    circuit: &Circuit,
    opts: &DcOptions,
) -> SpiceResult<OperatingPoint> {
    #[cfg(feature = "faults")]
    if let Some(e) = injected_dc_fault() {
        return Err(e);
    }
    if !ws.matches(circuit) {
        *ws = DcWorkspace::with_solver(circuit, ws.choice)?;
    }
    ws.sparse_failed = false;
    ws.stamp_linear_base(circuit);
    if ws.warm_valid {
        // Converge the warm attempt well past the cold tolerances: a good
        // initial guess makes the extra quadratic-convergence iterations
        // nearly free, and the tighter landing keeps warm-path metrics
        // numerically indistinguishable from a cold solve — so optimizer
        // trajectories don't fork on solver noise.
        let tight = DcOptions {
            max_iter: opts.max_iter,
            vtol: opts.vtol.min(1e-12),
            itol: opts.itol.min(1e-12),
            max_step: opts.max_step,
            gmin: opts.gmin,
            nodeset: HashMap::new(),
            damping: opts.damping,
            deadline: opts.deadline,
        };
        let out = newton(ws, circuit, &tight, tight.gmin, 1.0, WARM_MAX_ITER);
        if out.converged {
            return Ok(OperatingPoint::from_solution(circuit, &ws.map, &ws.x));
        }
        if out.timed_out {
            return Err(SpiceError::Timeout {
                analysis: "dc",
                iterations: out.iterations,
            });
        }
        ws.warm_valid = false;
    }
    let out = solve_cold(ws, circuit, opts);
    if retry_dense(&out) && ws.sparse_failed {
        ws.demote_to_dense(circuit);
        ws.stamp_linear_base(circuit);
        return solve_cold(ws, circuit, opts);
    }
    out
}

/// The cold-start homotopy ladder (plain Newton, then g_min stepping, then
/// source stepping) on a freshly prepared workspace.
fn solve_cold(
    ws: &mut DcWorkspace,
    circuit: &Circuit,
    opts: &DcOptions,
) -> SpiceResult<OperatingPoint> {
    ws.warm_valid = false;
    ws.x.fill(0.0);
    for (name, v) in &opts.nodeset {
        if let Some(node) = circuit.find_node(name) {
            if let Some(r) = ws.map.node_row(node) {
                ws.x[r] = *v;
            }
        }
    }
    ws.x0.copy_from_slice(&ws.x);

    let mut total_iters = 0;
    let timeout = |iters: usize| SpiceError::Timeout {
        analysis: "dc",
        iterations: iters,
    };

    // Stage 1: plain Newton.
    let out = newton(ws, circuit, opts, opts.gmin, 1.0, opts.max_iter);
    total_iters += out.iterations;
    if out.converged {
        ws.warm_valid = true;
        return Ok(OperatingPoint::from_solution(circuit, &ws.map, &ws.x));
    }
    if out.timed_out {
        return Err(timeout(total_iters));
    }

    // Stage 2: g_min stepping.
    ws.x.copy_from_slice(&ws.x0);
    let mut ok = true;
    let mut g = 1e-2;
    while g >= opts.gmin * 0.99 {
        let out = newton(ws, circuit, opts, g, 1.0, opts.max_iter);
        total_iters += out.iterations;
        if !out.converged {
            if out.timed_out {
                return Err(timeout(total_iters));
            }
            ok = false;
            break;
        }
        g /= 10.0;
    }
    if ok {
        let out = newton(ws, circuit, opts, opts.gmin, 1.0, opts.max_iter);
        total_iters += out.iterations;
        if out.converged {
            ws.warm_valid = true;
            return Ok(OperatingPoint::from_solution(circuit, &ws.map, &ws.x));
        }
        if out.timed_out {
            return Err(timeout(total_iters));
        }
    }

    // Stage 3: source stepping (with a mild g_min floor for stability).
    ws.x.copy_from_slice(&ws.x0);
    let mut ok = true;
    let mut last_residual = f64::INFINITY;
    for k in 1..=20 {
        let scale = k as f64 / 20.0;
        let out = newton(ws, circuit, opts, opts.gmin.max(1e-9), scale, opts.max_iter);
        total_iters += out.iterations;
        last_residual = out.residual;
        if !out.converged {
            if out.timed_out {
                return Err(timeout(total_iters));
            }
            ok = false;
            break;
        }
    }
    if ok {
        let out = newton(ws, circuit, opts, opts.gmin, 1.0, opts.max_iter);
        total_iters += out.iterations;
        if out.converged {
            ws.warm_valid = true;
            return Ok(OperatingPoint::from_solution(circuit, &ws.map, &ws.x));
        }
        if out.timed_out {
            return Err(timeout(total_iters));
        }
        last_residual = out.residual;
    }

    Err(SpiceError::DcConvergence {
        residual: last_residual,
        iterations: total_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::ClockPhase;
    use crate::process::Process;

    #[test]
    fn divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_resistor("R2", out, Circuit::GROUND, 2e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-8);
        assert!((op.voltage(vin) - 3.0).abs() < 1e-12);
        // Source branch current: 3V across 3k → 1 mA flowing n→p inside.
        assert!((op.branch_current("V1").unwrap() + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_resistor("R2", out, Circuit::GROUND, 2e3);
        let opts = DcOptions {
            deadline: adc_numerics::Deadline::within(std::time::Duration::from_secs(0)),
            ..DcOptions::default()
        };
        match dc_operating_point(&c, &opts) {
            Err(SpiceError::Timeout { analysis: "dc", .. }) => {}
            other => panic!("expected dc timeout, got {other:?}"),
        }
        // An unlimited deadline solves identically to the default options.
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn warm_solve_respects_deadline() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        c.add_isource("I1", Circuit::GROUND, n1, 1e-3);
        c.add_resistor("R1", n1, Circuit::GROUND, 2e3);
        let mut ws = DcWorkspace::new(&c).unwrap();
        // Prime the warm state, then expire the budget.
        dc_operating_point_with(&mut ws, &c, &DcOptions::default()).unwrap();
        let opts = DcOptions {
            deadline: adc_numerics::Deadline::within(std::time::Duration::from_secs(0)),
            ..DcOptions::default()
        };
        match dc_operating_point_warm(&mut ws, &c, &opts) {
            Err(SpiceError::Timeout { analysis: "dc", .. }) => {}
            other => panic!("expected warm dc timeout, got {other:?}"),
        }
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        // SPICE convention: current flows p→n through the source, so to push
        // 1 mA into n1 we connect p=gnd, n=n1.
        c.add_isource("I1", Circuit::GROUND, n1, 1e-3);
        c.add_resistor("R1", n1, Circuit::GROUND, 2e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(n1) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, 0.5);
        c.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, -4.0);
        c.add_resistor("RL", b, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(b) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_drives_load() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        // gm = 1 mS, current p→n = gm·va pulls current out of b... use p=gnd.
        c.add_vccs("G1", Circuit::GROUND, b, a, Circuit::GROUND, 1e-3);
        c.add_resistor("RL", b, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        // Baseline g_min (1e-12 S) shifts the answer by ~1 nV.
        assert!((op.voltage(b) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn diode_connected_nmos_bias() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_resistor("RB", vdd, d, 10e3);
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            10e-6,
            1e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let vgs = op.voltage(d);
        // Must bias above threshold, below supply.
        assert!(vgs > p.nmos.vto && vgs < 2.0, "vgs = {vgs}");
        // KCL: resistor current equals drain current.
        let ir = (3.3 - vgs) / 10e3;
        let ev = op.mos_eval("M1").unwrap();
        assert!(
            (ev.id - ir).abs() < 1e-6 * ir.max(1e-9),
            "id {} vs ir {}",
            ev.id,
            ir
        );
        assert_eq!(ev.region, crate::mosfet::Region::Saturation);
    }

    #[test]
    fn common_source_amplifier_bias() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource("VG", g, Circuit::GROUND, 0.9);
        c.add_resistor("RD", vdd, d, 5e3);
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            20e-6,
            0.5e-6,
        );
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.2 && vd < 3.2, "vd = {vd}");
        let ev = op.mos_eval("M1").unwrap();
        assert!(ev.gm > 0.0);
    }

    #[test]
    fn cascode_stack_converges() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vb1 = c.node("vb1");
        let vb2 = c.node("vb2");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource("VB1", vb1, Circuit::GROUND, 0.9);
        c.add_vsource("VB2", vb2, Circuit::GROUND, 1.5);
        c.add_mosfet(
            "M1",
            mid,
            vb1,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            2.5e-6,
            0.5e-6,
        );
        c.add_mosfet("M2", out, vb2, mid, Circuit::GROUND, p.nmos, 2.5e-6, 0.5e-6);
        c.add_resistor("RL", vdd, out, 20e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let vm = op.voltage(mid);
        let vo = op.voltage(out);
        assert!(vm > 0.1 && vm < 1.0, "vmid = {vm}");
        assert!(vo > vm && vo < 3.3, "vout = {vo}");
    }

    #[test]
    fn floating_node_handled_by_gmin() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("float");
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        c.add_capacitor("C1", a, f, 1e-12); // cap is open in DC → f floats
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!(op.voltage(f).abs() < 1e-3); // pulled to 0 by gmin
    }

    #[test]
    fn switch_dc_states() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        c.add_switch("S1", a, b, 100.0, 1e12, ClockPhase::Phi1, true);
        c.add_resistor("RL", b, Circuit::GROUND, 100.0);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        assert!((op.voltage(b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_circuit_is_error() {
        let c = Circuit::new();
        assert!(dc_operating_point(&c, &DcOptions::default()).is_err());
    }

    #[test]
    fn pmos_source_follower() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let s = c.node("s");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource("VG", g, Circuit::GROUND, 1.0);
        // PMOS follower: source above gate by |vgs|.
        c.add_mosfet("M1", Circuit::GROUND, g, s, vdd, p.pmos, 20e-6, 0.5e-6);
        c.add_resistor("RS", vdd, s, 10e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let vs = op.voltage(s);
        assert!(vs > 1.4 && vs < 2.6, "vs = {vs}");
    }
}
