//! # adc-spice
//!
//! A compact circuit-simulation substrate standing in for the commercial
//! SPICE engine the paper's synthesis loop drives: netlists with MOSFETs
//! (level-1-style square-law model with smooth subthreshold), passives and
//! controlled sources; modified nodal analysis with automatic dense/sparse
//! engine selection (CSR + reusable symbolic factorization on OTA-sized
//! systems, dense partial-pivot LU as the oracle); damped-Newton DC
//! operating point with g_min and source-stepping homotopy; a shared
//! small-signal linearizer ([`linearize`]) feeding complex-valued AC
//! sweeps and the numeric TF extraction in adc-sfg; and a trapezoidal
//! transient engine with two-phase clocked switches for switched-capacitor
//! blocks.
//!
//! The paper's hybrid flow (§3) needs exactly this: *"DC simulation to
//! extract small signal values"* feeding an equation-based transfer-function
//! evaluation, plus *"simulation-based evaluation"* where swings are large.
//!
//! ## Example: resistive divider
//!
//! ```
//! use adc_spice::netlist::Circuit;
//! use adc_spice::dc::{dc_operating_point, DcOptions};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GROUND, 3.0);
//! ckt.add_resistor("R1", vin, out, 1000.0);
//! ckt.add_resistor("R2", out, Circuit::GROUND, 2000.0);
//! let op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
//! assert!((op.voltage(out) - 2.0).abs() < 1e-6);
//! ```

pub mod ac;
pub mod dc;
pub mod linearize;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod op;
pub mod process;
pub mod subckt;
pub mod tran;
pub mod waveform;

pub use ac::{ac_sweep, ac_sweep_with, AcWorkspace};
pub use dc::{
    dc_operating_point, dc_operating_point_warm, dc_operating_point_with, DcOptions, DcWorkspace,
};
pub use linearize::{ComplexMnaWorkspace, SmallSignal, SolverChoice};
pub use netlist::{Circuit, ElementId, NodeId};
pub use op::OperatingPoint;
pub use process::Process;
pub use subckt::{Instance, Subckt};
pub use tran::{
    transient, transient_adaptive, transient_with, Clock, InitialCondition, TimeStepConfig,
    TimeStepState, TranOptions, TranResult, TranStats, TranWorkspace,
};

/// Errors produced by the simulation engines.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The DC Newton iteration (including homotopy fallbacks) failed.
    DcConvergence {
        /// Final residual in amps.
        residual: f64,
        /// Iterations used across all homotopy stages.
        iterations: usize,
    },
    /// The MNA system was singular (floating node, voltage-source loop...).
    Singular(String),
    /// A named element or node was not found.
    NotFound(String),
    /// The netlist is structurally invalid.
    BadNetlist(String),
    /// A cooperative wall-clock deadline expired mid-analysis.
    Timeout {
        /// The analysis that ran out of budget (`"dc"`, `"tran"`...).
        analysis: &'static str,
        /// Iterations or timesteps completed before the budget ran out.
        iterations: usize,
    },
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiceError::DcConvergence { residual, iterations } => write!(
                f,
                "DC analysis failed to converge after {iterations} iterations (residual {residual:.3e} A)"
            ),
            SpiceError::Singular(what) => write!(f, "singular MNA system: {what}"),
            SpiceError::NotFound(name) => write!(f, "no such element or node: {name}"),
            SpiceError::BadNetlist(msg) => write!(f, "bad netlist: {msg}"),
            SpiceError::Timeout {
                analysis,
                iterations,
            } => write!(
                f,
                "{analysis} analysis exceeded its wall-clock budget after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for SpiceError {}

/// Result alias for simulator operations.
pub type SpiceResult<T> = Result<T, SpiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        let e = SpiceError::DcConvergence {
            residual: 1e-3,
            iterations: 500,
        };
        assert!(e.to_string().contains("converge"));
        assert!(SpiceError::Singular("x".into())
            .to_string()
            .contains("singular"));
        assert!(SpiceError::NotFound("M1".into()).to_string().contains("M1"));
        assert!(SpiceError::BadNetlist("loop".into())
            .to_string()
            .contains("loop"));
        assert!(SpiceError::Timeout {
            analysis: "dc",
            iterations: 12,
        }
        .to_string()
        .contains("budget"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
