//! Level-1-style MOSFET evaluation with smooth subthreshold transition.
//!
//! The classic square-law model is augmented with a softplus overdrive so
//! that drain current and its derivatives are C¹-continuous across cutoff —
//! a well-known trick that keeps Newton iterations from chattering at region
//! boundaries. Source/drain symmetry (`vds < 0`) and PMOS polarity are
//! handled by the standard variable transformations, and the returned
//! small-signal parameters are the exact partial derivatives of the drain
//! current as stamped by MNA.

use crate::process::{MosModel, Polarity};

/// Softplus smoothing voltage (≈ 2·kT/q): sets the width of the
/// cutoff→strong-inversion transition.
const V_SMOOTH: f64 = 0.052;

/// Operating region of a MOSFET (reported for diagnostics; the current
/// equation itself is smooth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `vgs` below threshold — only the smoothed subthreshold tail conducts.
    Cutoff,
    /// `vds` below `vdsat`.
    Triode,
    /// `vds` at or above `vdsat`.
    Saturation,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Cutoff => write!(f, "cutoff"),
            Region::Triode => write!(f, "triode"),
            Region::Saturation => write!(f, "saturation"),
        }
    }
}

/// Full large- and small-signal evaluation of one MOSFET at a bias point.
///
/// `id` is the current flowing **into the drain terminal** as netlisted
/// (negative for conducting PMOS devices). `gm`, `gds`, `gmb` are the exact
/// partials `∂id/∂vgs`, `∂id/∂vds`, `∂id/∂vbs` — signed, ready for MNA
/// stamping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current into the drain terminal, A.
    pub id: f64,
    /// `∂id/∂vgs`, S.
    pub gm: f64,
    /// `∂id/∂vds`, S.
    pub gds: f64,
    /// `∂id/∂vbs` (body transconductance), S.
    pub gmb: f64,
    /// Threshold voltage (in the polarity-normalized domain), V.
    pub vth: f64,
    /// Effective (smoothed) overdrive voltage, V.
    pub vov: f64,
    /// Saturation voltage, V.
    pub vdsat: f64,
    /// Reported operating region.
    pub region: Region,
    /// Gate–source capacitance, F.
    pub cgs: f64,
    /// Gate–drain capacitance, F.
    pub cgd: f64,
    /// Gate–body capacitance, F.
    pub cgb: f64,
    /// Source–body junction capacitance, F.
    pub csb: f64,
    /// Drain–body junction capacitance, F.
    pub cdb: f64,
}

impl MosEval {
    /// Intrinsic gain `gm/gds` of the device at this bias (∞-safe).
    pub fn intrinsic_gain(&self) -> f64 {
        if self.gds.abs() < 1e-30 {
            f64::INFINITY
        } else {
            (self.gm / self.gds).abs()
        }
    }
}

/// Softplus and its derivative, overflow-safe.
fn softplus(x: f64, scale: f64) -> (f64, f64) {
    let t = x / scale;
    if t > 40.0 {
        (x, 1.0)
    } else if t < -40.0 {
        let e = t.exp();
        (scale * e, e)
    } else {
        let e = t.exp();
        (scale * (1.0 + e).ln(), e / (1.0 + e))
    }
}

/// Evaluates the device model at the given terminal voltages.
///
/// `vgs`, `vds`, `vbs` are actual netlist voltage differences (gate−source,
/// drain−source, body−source); `w`, `l` the drawn dimensions in meters.
pub fn eval_mosfet(model: &MosModel, w: f64, l: f64, vgs: f64, vds: f64, vbs: f64) -> MosEval {
    // Polarity normalization: PMOS is evaluated as an NMOS in the primed
    // domain (all voltages negated); currents negate back, conductances are
    // invariant under the double sign flip.
    let sign = match model.polarity {
        Polarity::Nmos => 1.0,
        Polarity::Pmos => -1.0,
    };
    let (vgs_p, vds_p, vbs_p) = (sign * vgs, sign * vds, sign * vbs);

    // Source/drain swap for reverse operation.
    let swapped = vds_p < 0.0;
    let (vgs_e, vds_e, vbs_e) = if swapped {
        (vgs_p - vds_p, -vds_p, vbs_p - vds_p)
    } else {
        (vgs_p, vds_p, vbs_p)
    };

    // Body effect (clamped for forward body bias; the clamp zeroes the
    // derivative so Newton sees a consistent Jacobian).
    let vsb_raw = -vbs_e;
    let clamp_lo = -model.phi * 0.5;
    let (vsb, dvsb) = if vsb_raw < clamp_lo {
        (clamp_lo, 0.0)
    } else {
        (vsb_raw, 1.0)
    };
    let sq_arg = model.phi + vsb;
    let (sq, dvth_dvbs) = if sq_arg <= 0.05 {
        (0.05_f64.sqrt(), 0.0)
    } else {
        let s = sq_arg.sqrt();
        (s, -model.gamma / (2.0 * s) * dvsb)
    };
    let vth = model.vto + model.gamma * (sq - model.phi.sqrt());

    let vov_raw = vgs_e - vth;
    let (vov, sig) = softplus(vov_raw, V_SMOOTH);
    let vdsat = vov;

    let leff = model.leff(l);
    let beta = model.kp * w / leff;
    let lambda = model.lambda(l);
    let clm = 1.0 + lambda * vds_e;

    // f_g = ∂id/∂vgs_e etc. in the normalized, possibly swapped domain.
    let (id_e, f_g, f_d) = if vds_e >= vdsat {
        let id = 0.5 * beta * vov * vov * clm;
        (id, beta * vov * sig * clm, 0.5 * beta * vov * vov * lambda)
    } else {
        let id = beta * (vov - 0.5 * vds_e) * vds_e * clm;
        let fg = beta * vds_e * sig * clm;
        let fd = beta * (vov - vds_e) * clm + beta * (vov - 0.5 * vds_e) * vds_e * lambda;
        (id, fg, fd)
    };
    // ∂id/∂vbs via the threshold: ∂id/∂vth = -f_g/sig·sig = -f_g (chain rule
    // through vov_raw), so f_b = -f_g·dvth/dvbs ≥ 0.
    let f_b = -f_g * dvth_dvbs;

    // Undo the source/drain swap on current and derivatives.
    let (id_p, gm_p, gds_p, gmb_p) = if swapped {
        (-id_e, -f_g, f_g + f_d + f_b, -f_b)
    } else {
        (id_e, f_g, f_d, f_b)
    };

    // Undo polarity: id flips, conductances are invariant.
    let id = sign * id_p;

    // Region (reported in the normalized domain).
    let region = if vov_raw < 0.0 {
        Region::Cutoff
    } else if vds_e < vdsat {
        Region::Triode
    } else {
        Region::Saturation
    };

    // Meyer-style capacitances in the (possibly swapped) domain.
    let cox_tot = model.cox * w * leff;
    let cov = model.cgso * w; // symmetric overlap
    let (cgs_e, cgd_e, cgb_e) = match region {
        Region::Cutoff => (cov, cov, cox_tot),
        Region::Triode => (0.5 * cox_tot + cov, 0.5 * cox_tot + cov, 0.0),
        Region::Saturation => (2.0 / 3.0 * cox_tot + cov, cov, 0.0),
    };
    let cj_area = model.cj * w * model.ldiff;
    let cj_perim = model.cjsw * (w + 2.0 * model.ldiff);
    let cjunc = cj_area + cj_perim;
    let (cgs, cgd) = if swapped {
        (cgd_e, cgs_e)
    } else {
        (cgs_e, cgd_e)
    };

    MosEval {
        id,
        gm: gm_p,
        gds: gds_p,
        gmb: gmb_p,
        vth,
        vov,
        vdsat,
        region,
        cgs,
        cgd,
        cgb: cgb_e,
        csb: cjunc,
        cdb: cjunc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    fn nmos() -> MosModel {
        Process::c025().nmos
    }

    fn pmos() -> MosModel {
        Process::c025().pmos
    }

    const W: f64 = 10e-6;
    const L: f64 = 0.5e-6;

    #[test]
    fn saturation_current_square_law() {
        let m = nmos();
        let e = eval_mosfet(&m, W, L, 1.0, 2.0, 0.0);
        assert_eq!(e.region, Region::Saturation);
        let beta = m.kp * W / m.leff(L);
        let vov = 1.0 - m.vto;
        let expected = 0.5 * beta * vov * vov * (1.0 + m.lambda(L) * 2.0);
        assert!(
            (e.id - expected).abs() < 0.02 * expected,
            "id {} vs square-law {}",
            e.id,
            expected
        );
        assert!(e.gm > 0.0 && e.gds > 0.0 && e.gmb > 0.0);
    }

    #[test]
    fn cutoff_leaks_negligibly() {
        let e = eval_mosfet(&nmos(), W, L, 0.0, 2.0, 0.0);
        assert_eq!(e.region, Region::Cutoff);
        assert!(e.id < 1e-9, "cutoff current too high: {}", e.id);
        assert!(e.id > 0.0, "softplus tail should keep id positive");
    }

    #[test]
    fn triode_region_detected() {
        let e = eval_mosfet(&nmos(), W, L, 2.0, 0.1, 0.0);
        assert_eq!(e.region, Region::Triode);
        // Rds in deep triode ≈ 1/(β·vov)
        let m = nmos();
        let beta = m.kp * W / m.leff(L);
        let vov = 2.0 - m.vto;
        let g_expected = beta * vov;
        assert!((e.gds - g_expected).abs() < 0.2 * g_expected);
    }

    /// The central correctness property: returned gm/gds/gmb must match
    /// finite differences of id across regions, polarities and vds signs.
    #[test]
    fn derivatives_match_finite_differences() {
        let cases = [
            (nmos(), 1.2, 1.8, 0.0),
            (nmos(), 0.9, 0.2, 0.0),
            (nmos(), 0.45, 1.0, 0.0), // near threshold
            (nmos(), 1.2, -0.8, 0.0), // reverse vds
            (nmos(), 1.0, 1.5, -0.5), // body effect
            (pmos(), -1.2, -1.8, 0.0),
            (pmos(), -0.9, -0.2, 0.0),
            (pmos(), -1.2, 0.8, 0.0), // reverse
            (pmos(), -1.0, -1.5, 0.5),
        ];
        let h = 1e-6;
        for (m, vgs, vds, vbs) in cases {
            let e = eval_mosfet(&m, W, L, vgs, vds, vbs);
            let dg = (eval_mosfet(&m, W, L, vgs + h, vds, vbs).id
                - eval_mosfet(&m, W, L, vgs - h, vds, vbs).id)
                / (2.0 * h);
            let dd = (eval_mosfet(&m, W, L, vgs, vds + h, vbs).id
                - eval_mosfet(&m, W, L, vgs, vds - h, vbs).id)
                / (2.0 * h);
            let db = (eval_mosfet(&m, W, L, vgs, vds, vbs + h).id
                - eval_mosfet(&m, W, L, vgs, vds, vbs - h).id)
                / (2.0 * h);
            let tol = 1e-7 + 1e-4 * dg.abs().max(dd.abs()).max(db.abs());
            assert!(
                (e.gm - dg).abs() < tol,
                "gm {} vs FD {} at {vgs},{vds},{vbs} {:?}",
                e.gm,
                dg,
                m.polarity
            );
            assert!(
                (e.gds - dd).abs() < tol,
                "gds {} vs FD {} at {vgs},{vds},{vbs} {:?}",
                e.gds,
                dd,
                m.polarity
            );
            assert!(
                (e.gmb - db).abs() < tol,
                "gmb {} vs FD {} at {vgs},{vds},{vbs} {:?}",
                e.gmb,
                db,
                m.polarity
            );
        }
    }

    #[test]
    fn current_continuous_across_vds_zero() {
        let m = nmos();
        let left = eval_mosfet(&m, W, L, 1.2, -1e-6, 0.0).id;
        let right = eval_mosfet(&m, W, L, 1.2, 1e-6, 0.0).id;
        // Odd symmetry: id(−ε) ≈ −id(+ε) up to the O(ε) body-effect
        // asymmetry inherent to level-1 in the swapped domain.
        assert!((left + right).abs() < 5e-6 * right.abs().max(1e-12));
        assert!(eval_mosfet(&m, W, L, 1.2, 0.0, 0.0).id.abs() < 1e-12);
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let p = pmos();
        let e = eval_mosfet(&p, W, L, -1.2, -2.0, 0.0);
        assert_eq!(e.region, Region::Saturation);
        assert!(e.id < 0.0, "conducting PMOS drain current must be negative");
        assert!(e.gm > 0.0 && e.gds > 0.0);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let m = nmos();
        let e0 = eval_mosfet(&m, W, L, 1.0, 1.5, 0.0);
        let eb = eval_mosfet(&m, W, L, 1.0, 1.5, -1.0);
        assert!(eb.vth > e0.vth + 0.05, "vth {} vs {}", eb.vth, e0.vth);
        assert!(eb.id < e0.id);
    }

    #[test]
    fn intrinsic_gain_increases_with_length() {
        let m = nmos();
        let short = eval_mosfet(&m, W, 0.25e-6, 1.0, 1.5, 0.0);
        let long = eval_mosfet(&m, W, 1.0e-6, 1.0, 1.5, 0.0);
        assert!(long.intrinsic_gain() > 2.0 * short.intrinsic_gain());
    }

    #[test]
    fn capacitances_positive_and_region_dependent() {
        let m = nmos();
        let sat = eval_mosfet(&m, W, L, 1.2, 2.0, 0.0);
        let tri = eval_mosfet(&m, W, L, 2.0, 0.05, 0.0);
        assert!(sat.cgs > sat.cgd, "saturation: cgs should dominate");
        assert!((tri.cgs - tri.cgd).abs() < 1e-18, "triode: symmetric split");
        for e in [sat, tri] {
            assert!(e.cgs > 0.0 && e.cgd > 0.0 && e.csb > 0.0 && e.cdb > 0.0);
        }
    }

    #[test]
    fn reverse_operation_swaps_capacitances() {
        let m = nmos();
        let fwd = eval_mosfet(&m, W, L, 1.5, 1.0, 0.0);
        let rev = eval_mosfet(&m, W, L, 1.5 - 1.0, -1.0, -1.0); // same physical bias, terminals swapped
        assert!((fwd.cgs - rev.cgd).abs() < 1e-18);
        assert!((fwd.id + rev.id).abs() < 1e-3 * fwd.id.abs());
    }
}
