//! Transient analysis: fixed-step trapezoidal integration with per-step
//! Newton solves and two-phase clocked switches.
//!
//! This engine backs the paper's "when circuits experience large dynamic
//! swing, simulation-based evaluation produces trustworthy results" claim:
//! switched-capacitor MDAC settling is simulated here when the linear
//! small-signal model is not to be trusted.
//!
//! Capacitors use the trapezoidal companion model (A-stable, second-order);
//! MOSFETs are evaluated as static nonlinearities — charge storage must be
//! modeled with explicit capacitors, which the OTA templates do.

use crate::mna::{add_opt, stamp_conductance, stamp_vccs, MnaMap};
use crate::mosfet::eval_mosfet;
use crate::netlist::{Circuit, ClockPhase, Element};
use crate::{SpiceError, SpiceResult};
use adc_numerics::Matrix;

/// Two-phase non-overlapping clock description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Clock frequency, Hz.
    pub freq: f64,
    /// Non-overlap interval between phases, s.
    pub nonoverlap: f64,
}

impl Clock {
    /// Which phase is active at time `t` (`None` during non-overlap gaps).
    pub fn active_phase(&self, t: f64) -> Option<ClockPhase> {
        let period = 1.0 / self.freq;
        let tm = t.rem_euclid(period);
        let half = period / 2.0;
        if tm < half - self.nonoverlap {
            Some(ClockPhase::Phi1)
        } else if tm >= half && tm < period - self.nonoverlap {
            Some(ClockPhase::Phi2)
        } else {
            None
        }
    }
}

/// Initial condition for the transient run.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum InitialCondition {
    /// All node voltages start at 0.
    #[default]
    Zero,
    /// Start from explicit node voltages indexed by [`crate::netlist::NodeId::index`].
    Voltages(Vec<f64>),
}

/// Options for [`transient`].
#[derive(Debug, Clone)]
pub struct TranOptions {
    /// Stop time, s.
    pub tstop: f64,
    /// Fixed time step, s.
    pub dt: f64,
    /// Optional two-phase clock driving the switches.
    pub clock: Option<Clock>,
    /// Initial condition.
    pub ic: InitialCondition,
    /// Newton iterations per step.
    pub max_iter: usize,
    /// Voltage convergence tolerance.
    pub vtol: f64,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            tstop: 1e-6,
            dt: 1e-9,
            clock: None,
            ic: InitialCondition::Zero,
            max_iter: 60,
            vtol: 1e-9,
        }
    }
}

/// Transient simulation result.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Per time point, full node-voltage vector.
    samples: Vec<Vec<f64>>,
}

impl TranResult {
    /// Time axis, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of one node.
    pub fn waveform(&self, node: crate::netlist::NodeId) -> Vec<f64> {
        self.samples.iter().map(|s| s[node.index()]).collect()
    }

    /// Node voltage at sample `k`.
    pub fn voltage_at(&self, node: crate::netlist::NodeId, k: usize) -> f64 {
        self.samples[k][node.index()]
    }

    /// Final node voltage.
    pub fn final_voltage(&self, node: crate::netlist::NodeId) -> f64 {
        self.samples.last().map_or(0.0, |s| s[node.index()])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Per-capacitor trapezoidal state.
#[derive(Debug, Clone, Copy)]
struct CapState {
    v_old: f64,
    i_old: f64,
}

/// Runs a fixed-step transient simulation.
///
/// # Errors
/// [`SpiceError::DcConvergence`] if a step's Newton loop fails,
/// [`SpiceError::Singular`] if the Jacobian becomes singular.
pub fn transient(circuit: &Circuit, opts: &TranOptions) -> SpiceResult<TranResult> {
    let map = MnaMap::new(circuit);
    let dim = map.dim();
    if dim == 0 {
        return Err(SpiceError::BadNetlist("circuit has no unknowns".into()));
    }

    let n_steps = (opts.tstop / opts.dt).round() as usize;
    let mut x = vec![0.0; dim];
    if let InitialCondition::Voltages(v0) = &opts.ic {
        let n = map.node_count().min(v0.len());
        if n > 1 {
            x[..n - 1].copy_from_slice(&v0[1..n]);
        }
    }

    // Initialize capacitor states from the initial node voltages.
    let cap_elems: Vec<usize> = circuit
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Element::Capacitor { .. }))
        .map(|(i, _)| i)
        .collect();
    let volt_of = |x: &[f64], node: crate::netlist::NodeId| -> f64 {
        match map.node_row(node) {
            Some(r) => x[r],
            None => 0.0,
        }
    };
    let mut cap_states: Vec<CapState> = cap_elems
        .iter()
        .map(|&i| {
            if let Element::Capacitor { a, b, .. } = &circuit.elements()[i] {
                CapState {
                    v_old: volt_of(&x, *a) - volt_of(&x, *b),
                    i_old: 0.0,
                }
            } else {
                unreachable!()
            }
        })
        .collect();

    let mut times = Vec::with_capacity(n_steps + 1);
    let mut samples = Vec::with_capacity(n_steps + 1);
    let record = |x: &[f64], samples: &mut Vec<Vec<f64>>| {
        let mut v = vec![0.0; map.node_count()];
        v[1..].copy_from_slice(&x[..map.node_count() - 1]);
        samples.push(v);
    };
    times.push(0.0);
    record(&x, &mut samples);

    let mut jac = Matrix::zeros(dim, dim);
    let mut res = vec![0.0; dim];
    let geq_of = |c: f64| 2.0 * c / opts.dt; // trapezoidal companion

    for step in 1..=n_steps {
        let t = step as f64 * opts.dt;
        // Newton loop at this time point.
        let mut converged = false;
        for _ in 0..opts.max_iter {
            jac.clear();
            res.iter_mut().for_each(|r| *r = 0.0);
            // g_min for floating nodes.
            for r in 0..(map.node_count() - 1) {
                jac.add_at(r, r, 1e-12);
                res[r] += 1e-12 * x[r];
            }
            let mut cap_k = 0usize;
            for (idx, e) in circuit.elements().iter().enumerate() {
                match e {
                    Element::Resistor { a, b, ohms, .. } => {
                        let g = 1.0 / ohms;
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let dv = volt_of(&x, *a) - volt_of(&x, *b);
                        stamp_conductance(&mut jac, ra, rb, g);
                        add_opt(&mut res, ra, g * dv);
                        add_opt(&mut res, rb, -g * dv);
                    }
                    Element::Switch {
                        a,
                        b,
                        ron,
                        roff,
                        phase,
                        ..
                    } => {
                        let closed = match &opts.clock {
                            Some(clk) => clk.active_phase(t) == Some(*phase),
                            None => false,
                        };
                        let g = 1.0 / if closed { *ron } else { *roff };
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let dv = volt_of(&x, *a) - volt_of(&x, *b);
                        stamp_conductance(&mut jac, ra, rb, g);
                        add_opt(&mut res, ra, g * dv);
                        add_opt(&mut res, rb, -g * dv);
                    }
                    Element::Capacitor { a, b, farads, .. } => {
                        let st = cap_states[cap_k];
                        cap_k += 1;
                        let geq = geq_of(*farads);
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let v_new = volt_of(&x, *a) - volt_of(&x, *b);
                        // Trapezoidal: i_new = geq·(v_new − v_old) − i_old
                        let i_new = geq * (v_new - st.v_old) - st.i_old;
                        stamp_conductance(&mut jac, ra, rb, geq);
                        add_opt(&mut res, ra, i_new);
                        add_opt(&mut res, rb, -i_new);
                    }
                    Element::ISource { p, n, wave, .. } => {
                        let i = wave.value(t);
                        add_opt(&mut res, map.node_row(*p), i);
                        add_opt(&mut res, map.node_row(*n), -i);
                    }
                    Element::VSource { p, n, wave, .. } => {
                        let br = map.branch_row(idx);
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let ib = x[br];
                        add_opt(&mut res, rp, ib);
                        add_opt(&mut res, rn, -ib);
                        if let Some(r) = rp {
                            jac.add_at(r, br, 1.0);
                            jac.add_at(br, r, 1.0);
                        }
                        if let Some(r) = rn {
                            jac.add_at(r, br, -1.0);
                            jac.add_at(br, r, -1.0);
                        }
                        res[br] += volt_of(&x, *p) - volt_of(&x, *n) - wave.value(t);
                    }
                    Element::Vcvs {
                        p, n, cp, cn, gain, ..
                    } => {
                        let br = map.branch_row(idx);
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let ib = x[br];
                        add_opt(&mut res, rp, ib);
                        add_opt(&mut res, rn, -ib);
                        if let Some(r) = rp {
                            jac.add_at(r, br, 1.0);
                            jac.add_at(br, r, 1.0);
                        }
                        if let Some(r) = rn {
                            jac.add_at(r, br, -1.0);
                            jac.add_at(br, r, -1.0);
                        }
                        if let Some(r) = map.node_row(*cp) {
                            jac.add_at(br, r, -gain);
                        }
                        if let Some(r) = map.node_row(*cn) {
                            jac.add_at(br, r, *gain);
                        }
                        res[br] += volt_of(&x, *p)
                            - volt_of(&x, *n)
                            - gain * (volt_of(&x, *cp) - volt_of(&x, *cn));
                    }
                    Element::Vccs {
                        p, n, cp, cn, gm, ..
                    } => {
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let vc = volt_of(&x, *cp) - volt_of(&x, *cn);
                        stamp_vccs(&mut jac, rp, rn, map.node_row(*cp), map.node_row(*cn), *gm);
                        add_opt(&mut res, rp, gm * vc);
                        add_opt(&mut res, rn, -gm * vc);
                    }
                    Element::Mosfet {
                        d,
                        g,
                        s,
                        b,
                        model,
                        w,
                        l,
                        ..
                    } => {
                        let ev = eval_mosfet(
                            model,
                            *w,
                            *l,
                            volt_of(&x, *g) - volt_of(&x, *s),
                            volt_of(&x, *d) - volt_of(&x, *s),
                            volt_of(&x, *b) - volt_of(&x, *s),
                        );
                        let (rd, rg, rs, rb) = (
                            map.node_row(*d),
                            map.node_row(*g),
                            map.node_row(*s),
                            map.node_row(*b),
                        );
                        add_opt(&mut res, rd, ev.id);
                        add_opt(&mut res, rs, -ev.id);
                        let gs_total = ev.gm + ev.gds + ev.gmb;
                        for (row, sign) in [(rd, 1.0), (rs, -1.0)] {
                            let Some(r) = row else { continue };
                            if let Some(cg) = rg {
                                jac.add_at(r, cg, sign * ev.gm);
                            }
                            if let Some(cd) = rd {
                                jac.add_at(r, cd, sign * ev.gds);
                            }
                            if let Some(cb) = rb {
                                jac.add_at(r, cb, sign * ev.gmb);
                            }
                            if let Some(cs) = rs {
                                jac.add_at(r, cs, -sign * gs_total);
                            }
                        }
                    }
                }
            }
            let rhs: Vec<f64> = res.iter().map(|&r| -r).collect();
            let dx = jac
                .solve(&rhs)
                .map_err(|e| SpiceError::Singular(format!("t = {t:.3e}s: {e}")))?;
            let nv = map.node_count() - 1;
            let max_dv = dx[..nv].iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
            let alpha = if max_dv > 1.0 { 1.0 / max_dv } else { 1.0 };
            for (xi, di) in x.iter_mut().zip(dx.iter()) {
                *xi += alpha * di;
            }
            if max_dv * alpha < opts.vtol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SpiceError::DcConvergence {
                residual: f64::NAN,
                iterations: step,
            });
        }
        // Commit capacitor states.
        let mut cap_k = 0usize;
        for &i in &cap_elems {
            if let Element::Capacitor { a, b, farads, .. } = &circuit.elements()[i] {
                let st = &mut cap_states[cap_k];
                let v_new = volt_of(&x, *a) - volt_of(&x, *b);
                let geq = geq_of(*farads);
                let i_new = geq * (v_new - st.v_old) - st.i_old;
                st.v_old = v_new;
                st.i_old = i_new;
                cap_k += 1;
            }
        }
        times.push(t);
        record(&x, &mut samples);
    }

    Ok(TranResult { times, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::waveform::Waveform;

    #[test]
    fn rc_charging_curve() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-9);
        c.add_vsource_wave(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 1.0,
                period: 0.0,
            },
            0.0,
        );
        c.add_resistor("R1", vin, out, r);
        c.add_capacitor("C1", out, Circuit::GROUND, cap);
        let tau = r * cap;
        let result = transient(
            &c,
            &TranOptions {
                tstop: 5.0 * tau,
                dt: tau / 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        // At t = τ the output should be 1 − e⁻¹.
        let idx = 100;
        let v_tau = result.voltage_at(out, idx);
        let want = 1.0 - (-1.0f64).exp();
        assert!((v_tau - want).abs() < 5e-3, "v(τ) = {v_tau}, want {want}");
        assert!((result.final_voltage(out) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn sine_passthrough_amplitude() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource_wave(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 0.5,
                freq: 1e6,
                delay: 0.0,
                phase: 0.0,
            },
            0.0,
        );
        c.add_resistor("R1", vin, Circuit::GROUND, 1e3);
        let result = transient(
            &c,
            &TranOptions {
                tstop: 1e-6,
                dt: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let w = result.waveform(vin);
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 0.5).abs() < 1e-3, "peak {max}");
    }

    #[test]
    fn clocked_switch_sample_and_hold() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let cap_node = c.node("hold");
        c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
        c.add_switch("S1", vin, cap_node, 100.0, 1e12, ClockPhase::Phi1, false);
        c.add_capacitor("CH", cap_node, Circuit::GROUND, 1e-12);
        let clk = Clock {
            freq: 1e6,
            nonoverlap: 10e-9,
        };
        let result = transient(
            &c,
            &TranOptions {
                tstop: 2e-6,
                dt: 1e-9,
                clock: Some(clk),
                ..Default::default()
            },
        )
        .unwrap();
        // After the first φ1 (track) the hold cap should be at 1 V and stay
        // there through φ2.
        let w = result.waveform(cap_node);
        let t = result.times();
        let at = |time: f64| {
            let k = (time / 1e-9).round() as usize;
            w[k.min(w.len() - 1)]
        };
        let _ = t;
        assert!((at(0.45e-6) - 1.0).abs() < 1e-3, "tracked: {}", at(0.45e-6));
        assert!((at(0.9e-6) - 1.0).abs() < 1e-3, "held: {}", at(0.9e-6));
    }

    #[test]
    fn clock_phases() {
        let clk = Clock {
            freq: 1e6,
            nonoverlap: 50e-9,
        };
        assert_eq!(clk.active_phase(0.1e-6), Some(ClockPhase::Phi1));
        assert_eq!(clk.active_phase(0.47e-6), None); // non-overlap
        assert_eq!(clk.active_phase(0.6e-6), Some(ClockPhase::Phi2));
        assert_eq!(clk.active_phase(0.97e-6), None);
        assert_eq!(clk.active_phase(1.1e-6), Some(ClockPhase::Phi1)); // periodic
    }

    #[test]
    fn ic_voltages_respected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-12);
        c.add_resistor("R1", a, Circuit::GROUND, 1e6);
        let mut v0 = vec![0.0; 2];
        v0[a.index()] = 2.0;
        let result = transient(
            &c,
            &TranOptions {
                tstop: 1e-8,
                dt: 1e-10,
                ic: InitialCondition::Voltages(v0),
                ..Default::default()
            },
        )
        .unwrap();
        // τ = 1 µs, simulate 10 ns → essentially unchanged.
        assert!((result.voltage_at(a, 0) - 2.0).abs() < 1e-9);
        assert!((result.final_voltage(a) - 2.0).abs() < 0.05);
    }
}
