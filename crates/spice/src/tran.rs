//! Transient analysis: trapezoidal integration with per-step Newton
//! solves and two-phase clocked switches.
//!
//! This engine backs the paper's "when circuits experience large dynamic
//! swing, simulation-based evaluation produces trustworthy results" claim:
//! switched-capacitor MDAC settling is simulated here when the linear
//! small-signal model is not to be trusted.
//!
//! Two paths coexist:
//!
//! * [`transient`] — the seed-era dense fixed-step engine, kept verbatim
//!   as the **oracle**: every element restamps a dense Jacobian each
//!   Newton iteration. Slow, simple, trusted.
//! * [`TranWorkspace`] + [`transient_with`] / [`transient_adaptive`] — the
//!   production engine on the sparse workspace substrate. The
//!   companion-model sparsity pattern is fixed per topology (a capacitor
//!   stamps the same four positions whatever `dt` is; a switch stamps the
//!   same four positions whatever phase is active), so the CSR pattern and
//!   symbolic factorization are frozen once and capacitor/switch/MOSFET
//!   restamps replay through precomputed slot maps — the timestep loop
//!   performs **zero heap allocation**. Newton warm-starts from the
//!   previous timestep, and [`transient_adaptive`] adds LTE-based step
//!   doubling/halving with clock-edge-aligned breakpoints.
//!
//! Capacitors use the trapezoidal companion model (A-stable, second-order);
//! MOSFETs are evaluated as static nonlinearities — charge storage must be
//! modeled with explicit capacitors, which the OTA templates do.

use crate::dc::stamp_mosfets;
use crate::linearize::SolverChoice;
use crate::mna::{add_opt, stamp_conductance, stamp_vccs, MnaMap};
use crate::mosfet::eval_mosfet;
use crate::netlist::{Circuit, ClockPhase, Element, NodeId};
use crate::{SpiceError, SpiceResult};
use adc_numerics::linalg::Lu;
use adc_numerics::quant::quantize_rel;
use adc_numerics::sparse::{prefer_sparse, CsrMatrix, CsrPattern, SparseLu, Symbolic};
use adc_numerics::{Deadline, Matrix};

/// Floating-node leak conductance added to every node diagonal, S.
const TRAN_GMIN: f64 = 1e-12;

/// Stall-acceptance ceiling of the transient Newton loops, relative to the
/// iterate's node-voltage scale (clamped to ≥ 1 V): an update that is
/// already below `ceiling = NEWTON_STALL_VTOL·max(1, max|vₖ|)` and no
/// longer contracting (reduction by less than 2× per iteration) is
/// float-noise limit cycling above `vtol` — amplified by the stiff
/// companion conductances at small dt — not real residual motion, and the
/// iterate is accepted. Quadratically converging trajectories contract far
/// faster than 2× per step in this regime, so the early accept never fires
/// on a healthy Newton sequence.
const NEWTON_STALL_VTOL: f64 = 1e-5;

/// The stall ceiling for a node-voltage slice (see [`NEWTON_STALL_VTOL`]).
fn stall_ceiling(v: &[f64]) -> f64 {
    let vmax = v.iter().fold(1.0_f64, |m, &x| m.max(x.abs()));
    NEWTON_STALL_VTOL * vmax
}

/// Two-phase non-overlapping clock description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    /// Clock frequency, Hz.
    pub freq: f64,
    /// Non-overlap interval between phases, s.
    pub nonoverlap: f64,
}

impl Clock {
    /// Clock period, s.
    pub fn period(&self) -> f64 {
        1.0 / self.freq
    }

    /// Non-overlap interval as a fraction of the period.
    #[inline]
    fn nonoverlap_frac(&self) -> f64 {
        self.nonoverlap * self.freq
    }

    /// Which phase is active at time `t` (`None` during non-overlap gaps).
    ///
    /// The period position is computed as the fractional part of
    /// `t · freq` — one rounding, no accumulation — rather than
    /// `t.rem_euclid(1/freq)`, whose inexact period drifts the phase
    /// boundaries by ~`t · ε` after many cycles.
    pub fn active_phase(&self, t: f64) -> Option<ClockPhase> {
        let u = t * self.freq;
        let frac = u - u.floor();
        let d = self.nonoverlap_frac();
        if frac < 0.5 - d {
            Some(ClockPhase::Phi1)
        } else if (0.5..1.0 - d).contains(&frac) {
            Some(ClockPhase::Phi2)
        } else {
            None
        }
    }

    /// The next phase boundary strictly after `t`: the end of φ1, the
    /// start of φ2, the end of φ2, or the start of the next period.
    /// Adaptive stepping clamps to these so a step never straddles a
    /// switch transition.
    pub fn next_edge(&self, t: f64) -> f64 {
        let period = self.period();
        let u = t * self.freq;
        let k = u.floor();
        let d = self.nonoverlap_frac();
        let eps = (t.abs() + period) * 1e-12;
        for cycle in 0..2 {
            let base = k + cycle as f64;
            for frac in [0.5 - d, 0.5, 1.0 - d, 1.0] {
                let cand = (base + frac) * period;
                if cand > t + eps {
                    return cand;
                }
            }
        }
        t + period
    }

    /// The `(t_start, t_end)` window during which `phase` is active in
    /// period `period_index` (φ1 opens at the period start, φ2 at the
    /// half-period; both close one non-overlap interval early).
    pub fn phase_window(&self, period_index: usize, phase: ClockPhase) -> (f64, f64) {
        let p = self.period();
        let d = self.nonoverlap_frac();
        let k = period_index as f64;
        match phase {
            ClockPhase::Phi1 => (k * p, (k + 0.5 - d) * p),
            ClockPhase::Phi2 => ((k + 0.5) * p, (k + 1.0 - d) * p),
        }
    }
}

/// Initial condition for the transient run.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum InitialCondition {
    /// All node voltages start at 0.
    #[default]
    Zero,
    /// Start from explicit node voltages indexed by [`crate::netlist::NodeId::index`].
    /// The vector length must equal the circuit's node count (including
    /// ground at index 0).
    Voltages(Vec<f64>),
}

/// Options for [`transient`], [`transient_with`] and [`transient_adaptive`].
#[derive(Debug, Clone)]
pub struct TranOptions {
    /// Stop time, s.
    pub tstop: f64,
    /// Fixed time step, s (ignored by [`transient_adaptive`]).
    pub dt: f64,
    /// Optional two-phase clock driving the switches.
    pub clock: Option<Clock>,
    /// Initial condition.
    pub ic: InitialCondition,
    /// Newton iterations per step.
    pub max_iter: usize,
    /// Voltage convergence tolerance.
    pub vtol: f64,
    /// Cooperative wall-clock budget, checked once per timestep (fixed)
    /// or step attempt (adaptive). An expired deadline turns the run into
    /// [`SpiceError::Timeout`]; the default is unlimited and costs
    /// nothing.
    pub deadline: Deadline,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            tstop: 1e-6,
            dt: 1e-9,
            clock: None,
            ic: InitialCondition::Zero,
            max_iter: 60,
            vtol: 1e-9,
            deadline: Deadline::none(),
        }
    }
}

/// Counters from a transient run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TranStats {
    /// Accepted timesteps (equals the fixed step count on fixed-step runs).
    pub accepted: usize,
    /// Steps rejected by the LTE controller (always 0 on fixed-step runs).
    pub rejected: usize,
    /// Total Newton iterations across all steps.
    pub newton_iters: usize,
    /// Smallest accepted step, s (0 when no steps ran).
    pub min_dt: f64,
    /// Whether the run factored through the CSR engine.
    pub sparse: bool,
}

/// Transient simulation result: a flat sample store (one row of node
/// voltages per accepted time point, ground included at index 0).
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    node_count: usize,
    /// Row-major samples, `times.len() × node_count`.
    data: Vec<f64>,
    stats: TranStats,
}

impl TranResult {
    /// Time axis, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of one node.
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        (0..self.times.len())
            .map(|k| self.data[k * self.node_count + node.index()])
            .collect()
    }

    /// Node voltage at sample `k`.
    pub fn voltage_at(&self, node: NodeId, k: usize) -> f64 {
        self.data[k * self.node_count + node.index()]
    }

    /// Final node voltage.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        if self.times.is_empty() {
            0.0
        } else {
            self.voltage_at(node, self.times.len() - 1)
        }
    }

    /// Node voltage at time `t`, linearly interpolated between samples
    /// (clamped to the run's time span). Adaptive runs place samples
    /// unevenly, so probing "the voltage at phase end" goes through here.
    pub fn sample_at(&self, node: NodeId, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        let n = self.times.len();
        if t <= self.times[0] {
            return self.voltage_at(node, 0);
        }
        if t >= self.times[n - 1] {
            return self.voltage_at(node, n - 1);
        }
        // First index with time > t; its predecessor brackets t.
        let hi = self.times.partition_point(|&tt| tt <= t);
        let (t0, t1) = (self.times[hi - 1], self.times[hi]);
        let (v0, v1) = (self.voltage_at(node, hi - 1), self.voltage_at(node, hi));
        if t1 <= t0 {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Node voltage at the last accepted sample with time ≤ `t` — the
    /// **left limit**. Switched-capacitor waveforms jump discontinuously
    /// when a phase ends and an undriven node snaps to its open-switch
    /// level; probing "the value at phase end" must not interpolate across
    /// that snap (fixed-step runs place no sample exactly on the edge), so
    /// phase-end measurements go through here instead of [`Self::sample_at`].
    pub fn sample_before(&self, node: NodeId, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        let hi = self.times.partition_point(|&tt| tt <= t);
        self.voltage_at(node, hi.saturating_sub(1))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the run produced no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Run counters (step/iteration counts, smallest step, engine kind).
    pub fn stats(&self) -> &TranStats {
        &self.stats
    }

    fn push_sample(&mut self, t: f64, x: &[f64]) {
        self.times.push(t);
        self.data.push(0.0); // ground
        self.data.extend_from_slice(&x[..self.node_count - 1]);
    }
}

/// Validates and applies an initial condition onto the unknown vector
/// (node rows only; branch currents start at 0).
fn apply_ic(map: &MnaMap, ic: &InitialCondition, x: &mut [f64]) -> SpiceResult<()> {
    x.fill(0.0);
    if let InitialCondition::Voltages(v0) = ic {
        let nc = map.node_count();
        if v0.len() != nc {
            return Err(SpiceError::BadNetlist(format!(
                "initial condition has {} voltages, circuit has {} nodes",
                v0.len(),
                nc
            )));
        }
        x[..nc - 1].copy_from_slice(&v0[1..]);
    }
    Ok(())
}

/// Walks a 2×2 conductance stamp's positions/values in a fixed order —
/// `(i,i) (j,j) (i,j) (j,i)`, ground rows skipped. Both the slot-map
/// recording and the per-step value buffering go through this single
/// helper, so they can never disagree on stamp order.
#[inline]
fn cond_pattern(
    a: Option<usize>,
    b: Option<usize>,
    g: f64,
    add: &mut impl FnMut(usize, usize, f64),
) {
    if let Some(i) = a {
        add(i, i, g);
    }
    if let Some(j) = b {
        add(j, j, g);
    }
    if let (Some(i), Some(j)) = (a, b) {
        add(i, j, -g);
        add(j, i, -g);
    }
}

/// Walks the stamps that are constant across the whole transient run:
/// resistors, source branch patterns and controlled sources. Switches,
/// capacitors (value varies with phase/step) and MOSFETs (vary per Newton
/// iteration) replay through slot maps instead; independent-source values
/// live in the time-varying `b(t)` vector.
fn stamp_tran_static(circuit: &Circuit, map: &MnaMap, add: &mut impl FnMut(usize, usize, f64)) {
    for (idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms, .. } => {
                cond_pattern(map.node_row(*a), map.node_row(*b), 1.0 / ohms, add);
            }
            Element::Capacitor { .. } | Element::Switch { .. } | Element::Mosfet { .. } => {}
            Element::ISource { .. } => {
                // Current sources only touch b(t).
            }
            Element::VSource { p, n, .. } => {
                let br = map.branch_row(idx);
                for (r, sgn) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    if let Some(r) = r {
                        add(r, br, sgn);
                        add(br, r, sgn);
                    }
                }
            }
            Element::Vcvs {
                p, n, cp, cn, gain, ..
            } => {
                let br = map.branch_row(idx);
                for (r, sgn) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    if let Some(r) = r {
                        add(r, br, sgn);
                        add(br, r, sgn);
                    }
                }
                if let Some(r) = map.node_row(*cp) {
                    add(br, r, -gain);
                }
                if let Some(r) = map.node_row(*cn) {
                    add(br, r, *gain);
                }
            }
            Element::Vccs {
                p, n, cp, cn, gm, ..
            } => {
                for (out, so) in [(map.node_row(*p), 1.0), (map.node_row(*n), -1.0)] {
                    let Some(row) = out else { continue };
                    for (ctrl, sc) in [(map.node_row(*cp), 1.0), (map.node_row(*cn), -1.0)] {
                        if let Some(col) = ctrl {
                            add(row, col, so * sc * gm);
                        }
                    }
                }
            }
        }
    }
}

/// Precomputed per-switch restamp data: matrix rows and the two
/// conductances the phase toggles between.
#[derive(Debug, Clone, Copy)]
struct SwitchSlot {
    ra: Option<usize>,
    rb: Option<usize>,
    gon: f64,
    goff: f64,
    phase: ClockPhase,
}

/// Precomputed per-capacitor companion data: matrix rows, the companion
/// conductance for the current step size, and the trapezoidal state.
#[derive(Debug, Clone, Copy)]
struct CapSlot {
    ra: Option<usize>,
    rb: Option<usize>,
    farads: f64,
    /// `2C/dt` for the step size currently loaded via `set_dt`.
    geq: f64,
    v_old: f64,
    i_old: f64,
}

/// The linear-solver engine inside a [`TranWorkspace`]: dense
/// partial-pivot LU, or CSR with a symbolic factorization frozen once per
/// topology and every time-varying stamp writing through precomputed slot
/// indices.
#[derive(Debug)]
enum TranEngine {
    Dense {
        /// Constant static stamps (resistors, source patterns, controlled
        /// sources); switch/cap/g_min/MOSFET stamps are scattered on top
        /// per assembly.
        base_jac: Matrix,
        jac: Matrix,
        lu: Lu,
        /// Flat (row-major) stamp slots in element order, mirroring the
        /// sparse engine's slot segments.
        sw_slots: Vec<usize>,
        cap_slots: Vec<usize>,
        mos_slots: Vec<usize>,
    },
    Sparse {
        /// Static base values aligned with the pattern's nonzeros.
        base_vals: Vec<f64>,
        jac: CsrMatrix,
        lu: SparseLu,
        /// Stamp slots in traversal order: static stamps, then switch
        /// conductances, then capacitor companions, then the g_min node
        /// diagonals, then the MOSFET companion entries.
        slots: Vec<usize>,
        static_len: usize,
        sw_len: usize,
        cap_len: usize,
        gmin_len: usize,
    },
}

/// Builds the dense engine storage, recording switch/capacitor/MOSFET
/// stamp patterns as flat slots so restamps replay through the chunked
/// [`Matrix::scatter_add`] kernel — the dense twin of the CSR slot replay.
fn dense_tran_engine(circuit: &Circuit, map: &MnaMap) -> TranEngine {
    let dim = map.dim();
    let mut sw_slots: Vec<usize> = Vec::new();
    let mut cap_slots: Vec<usize> = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Switch { a, b, .. } => {
                cond_pattern(map.node_row(*a), map.node_row(*b), 0.0, &mut |r, c, _| {
                    sw_slots.push(r * dim + c);
                });
            }
            Element::Capacitor { a, b, .. } => {
                cond_pattern(map.node_row(*a), map.node_row(*b), 0.0, &mut |r, c, _| {
                    cap_slots.push(r * dim + c);
                });
            }
            _ => {}
        }
    }
    let zeros = vec![0.0; dim];
    let mut scratch = vec![0.0; dim];
    let mut mos_slots: Vec<usize> = Vec::new();
    stamp_mosfets(circuit, map, &zeros, &mut scratch, &mut |r, c, _| {
        mos_slots.push(r * dim + c);
    });
    TranEngine::Dense {
        base_jac: Matrix::zeros(dim, dim),
        jac: Matrix::zeros(dim, dim),
        lu: Lu::with_dim(dim),
        sw_slots,
        cap_slots,
        mos_slots,
    }
}

/// Reusable transient workspace: the [`MnaMap`], stamp slot maps and (on
/// the sparse engine) the symbolic factorization are built once per
/// circuit topology; every run restamps the static base (so value
/// retuning is picked up), and the timestep loop itself performs **zero
/// heap allocation** — switch and capacitor companion restamps replay
/// buffered values through frozen slot maps exactly like the MOSFET
/// restamp path, and Newton warm-starts each step from the previous one.
#[derive(Debug)]
pub struct TranWorkspace {
    map: MnaMap,
    elem_count: usize,
    /// Wiring fingerprint ([`Circuit::topology_fingerprint`]) the stamp
    /// slot maps were recorded for.
    fingerprint: u64,
    /// Engine selection this workspace was created with.
    choice: SolverChoice,
    engine: TranEngine,
    /// Set when the sparse engine hit a numerically unlucky static pivot;
    /// the run entry points demote to dense and retry.
    sparse_failed: bool,
    switches: Vec<SwitchSlot>,
    caps: Vec<CapSlot>,
    /// Buffered switch conductance values (refreshed on phase change only).
    sw_vals: Vec<f64>,
    /// Buffered capacitor companion values (refreshed on dt change only).
    cap_vals: Vec<f64>,
    /// Scratch for MOSFET companion values, buffered per assembly.
    mos_vals: Vec<f64>,
    /// Time-varying source vector: residual = `A·x − b(t)` + MOSFET
    /// currents, where `b` holds source waveforms at `t` and capacitor
    /// history terms.
    b: Vec<f64>,
    res: Vec<f64>,
    dx: Vec<f64>,
    x: Vec<f64>,
    /// Previous accepted solution (reject/restore in the adaptive loop).
    x_prev: Vec<f64>,
    cur_phase: Option<ClockPhase>,
    phase_valid: bool,
    cur_dt: f64,
}

impl TranWorkspace {
    /// Builds the workspace for a circuit topology, selecting the solver
    /// engine by structural fill ratio.
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if the circuit has no unknowns.
    pub fn new(circuit: &Circuit) -> SpiceResult<Self> {
        TranWorkspace::with_solver(circuit, SolverChoice::Auto)
    }

    /// [`TranWorkspace::new`] with an explicit solver-engine choice
    /// (tests/diagnostics; production uses [`SolverChoice::Auto`]).
    ///
    /// # Errors
    /// [`SpiceError::BadNetlist`] if the circuit has no unknowns.
    pub fn with_solver(circuit: &Circuit, choice: SolverChoice) -> SpiceResult<Self> {
        let map = MnaMap::new(circuit);
        let dim = map.dim();
        if dim == 0 {
            return Err(SpiceError::BadNetlist("circuit has no unknowns".into()));
        }
        let engine = TranWorkspace::build_engine(circuit, &map, choice);
        Ok(TranWorkspace {
            map,
            elem_count: circuit.elements().len(),
            fingerprint: circuit.topology_fingerprint(),
            choice,
            engine,
            sparse_failed: false,
            switches: Vec::new(),
            caps: Vec::new(),
            sw_vals: Vec::new(),
            cap_vals: Vec::new(),
            mos_vals: Vec::new(),
            b: vec![0.0; dim],
            res: vec![0.0; dim],
            dx: vec![0.0; dim],
            x: vec![0.0; dim],
            x_prev: vec![0.0; dim],
            cur_phase: None,
            phase_valid: false,
            cur_dt: 0.0,
        })
    }

    /// Records the full stamp pattern (static, switch, capacitor, g_min,
    /// MOSFET — in that order) and chooses the engine.
    fn build_engine(circuit: &Circuit, map: &MnaMap, choice: SolverChoice) -> TranEngine {
        if choice == SolverChoice::Dense {
            return dense_tran_engine(circuit, map);
        }
        let dim = map.dim();
        let mut entries: Vec<(usize, usize)> = Vec::new();
        stamp_tran_static(circuit, map, &mut |r, c, _| entries.push((r, c)));
        let static_len = entries.len();
        for e in circuit.elements() {
            if let Element::Switch { a, b, .. } = e {
                cond_pattern(map.node_row(*a), map.node_row(*b), 0.0, &mut |r, c, _| {
                    entries.push((r, c));
                });
            }
        }
        let sw_len = entries.len() - static_len;
        for e in circuit.elements() {
            if let Element::Capacitor { a, b, .. } = e {
                cond_pattern(map.node_row(*a), map.node_row(*b), 0.0, &mut |r, c, _| {
                    entries.push((r, c));
                });
            }
        }
        let cap_len = entries.len() - static_len - sw_len;
        for row in 0..(map.node_count() - 1) {
            entries.push((row, row));
        }
        let gmin_len = map.node_count() - 1;
        let zeros = vec![0.0; dim];
        let mut scratch = vec![0.0; dim];
        stamp_mosfets(circuit, map, &zeros, &mut scratch, &mut |r, c, _| {
            entries.push((r, c));
        });
        let (pattern, slots) = CsrPattern::from_entries(dim, &entries);
        let go_sparse = match choice {
            SolverChoice::Auto => prefer_sparse(dim, pattern.nnz()),
            SolverChoice::Sparse => true,
            SolverChoice::Dense => unreachable!("handled above"),
        };
        if !go_sparse {
            return dense_tran_engine(circuit, map);
        }
        match Symbolic::analyze(&pattern) {
            Ok(sym) => TranEngine::Sparse {
                base_vals: vec![0.0; pattern.nnz()],
                jac: CsrMatrix::zeros(pattern),
                lu: SparseLu::new(sym),
                slots,
                static_len,
                sw_len,
                cap_len,
                gmin_len,
            },
            // Structurally singular patterns get the dense oracle's
            // per-iteration singularity reporting instead.
            Err(_) => dense_tran_engine(circuit, map),
        }
    }

    /// Whether this workspace was built for `circuit`'s topology (value
    /// retuning keeps it valid; rewiring rebuilds).
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.elem_count == circuit.elements().len()
            && self.map.matches(circuit)
            && self.fingerprint == circuit.topology_fingerprint()
    }

    /// The MNA index map.
    pub fn map(&self) -> &MnaMap {
        &self.map
    }

    /// Whether the Newton Jacobian currently factors sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.engine, TranEngine::Sparse { .. })
    }

    /// Replaces the engine with the dense oracle (sparse static pivot
    /// underflowed).
    fn demote_to_dense(&mut self, circuit: &Circuit) {
        self.engine = dense_tran_engine(circuit, &self.map);
        self.sparse_failed = false;
    }

    /// Per-run setup: applies the initial condition, (re)collects the
    /// switch/capacitor restamp slots so value retuning is picked up,
    /// restamps the static base and invalidates the phase/dt buffers.
    fn prepare(&mut self, circuit: &Circuit, ic: &InitialCondition) -> SpiceResult<()> {
        if !self.matches(circuit) {
            *self = TranWorkspace::with_solver(circuit, self.choice)?;
        }
        apply_ic(&self.map, ic, &mut self.x)?;
        self.x_prev.copy_from_slice(&self.x);
        self.switches.clear();
        self.caps.clear();
        for e in circuit.elements() {
            match e {
                Element::Switch {
                    a,
                    b,
                    ron,
                    roff,
                    phase,
                    ..
                } => self.switches.push(SwitchSlot {
                    ra: self.map.node_row(*a),
                    rb: self.map.node_row(*b),
                    gon: 1.0 / ron,
                    goff: 1.0 / roff,
                    phase: *phase,
                }),
                Element::Capacitor { a, b, farads, .. } => {
                    let (ra, rb) = (self.map.node_row(*a), self.map.node_row(*b));
                    let va = ra.map_or(0.0, |r| self.x[r]);
                    let vb = rb.map_or(0.0, |r| self.x[r]);
                    self.caps.push(CapSlot {
                        ra,
                        rb,
                        farads: *farads,
                        geq: 0.0,
                        v_old: va - vb,
                        i_old: 0.0,
                    });
                }
                _ => {}
            }
        }
        self.stamp_static_base(circuit);
        // Pre-size the value buffers so the first set_phase/set_dt in the
        // timestep loop rewrites in place instead of growing.
        let sw_vals = &mut self.sw_vals;
        sw_vals.clear();
        for sw in &self.switches {
            cond_pattern(sw.ra, sw.rb, sw.goff, &mut |_, _, v| sw_vals.push(v));
        }
        let cap_vals = &mut self.cap_vals;
        cap_vals.clear();
        for cap in &self.caps {
            cond_pattern(cap.ra, cap.rb, 0.0, &mut |_, _, v| cap_vals.push(v));
        }
        self.phase_valid = false;
        self.cur_dt = 0.0;
        Ok(())
    }

    /// Stamps the run-constant static part into the engine's base storage.
    fn stamp_static_base(&mut self, circuit: &Circuit) {
        let map = &self.map;
        match &mut self.engine {
            TranEngine::Dense { base_jac, .. } => {
                base_jac.clear();
                stamp_tran_static(circuit, map, &mut |r, c, v| base_jac.add_at(r, c, v));
            }
            TranEngine::Sparse {
                base_vals,
                slots,
                static_len,
                ..
            } => {
                base_vals.fill(0.0);
                let mut k = 0usize;
                stamp_tran_static(circuit, map, &mut |_, _, v| {
                    base_vals[slots[k]] += v;
                    k += 1;
                });
                debug_assert_eq!(k, *static_len, "stamp traversal drifted from slot map");
            }
        }
    }

    /// Re-buffers switch conductances when the active phase changes
    /// (no-op while the phase holds — most timesteps).
    fn set_phase(&mut self, phase: Option<ClockPhase>) {
        if self.phase_valid && self.cur_phase == phase {
            return;
        }
        self.cur_phase = phase;
        self.phase_valid = true;
        let sw_vals = &mut self.sw_vals;
        sw_vals.clear();
        for sw in &self.switches {
            let g = if phase == Some(sw.phase) {
                sw.gon
            } else {
                sw.goff
            };
            cond_pattern(sw.ra, sw.rb, g, &mut |_, _, v| sw_vals.push(v));
        }
    }

    /// Re-buffers capacitor companion conductances when the step size
    /// changes (no-op while dt holds).
    fn set_dt(&mut self, dt: f64) {
        if self.cur_dt == dt {
            return;
        }
        self.cur_dt = dt;
        for cap in &mut self.caps {
            cap.geq = 2.0 * cap.farads / dt;
        }
        let cap_vals = &mut self.cap_vals;
        cap_vals.clear();
        for cap in &self.caps {
            cond_pattern(cap.ra, cap.rb, cap.geq, &mut |_, _, v| cap_vals.push(v));
        }
    }

    /// Assembles the time-varying source vector at `t`: independent
    /// source waveforms plus the trapezoidal history term
    /// `h = geq·v_old + i_old` of every capacitor.
    fn assemble_b(&mut self, circuit: &Circuit, t: f64) {
        let map = &self.map;
        let b = &mut self.b;
        b.fill(0.0);
        for (idx, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::ISource { p, n, wave, .. } => {
                    // Residual is A·x − b, so a current `i` leaving `p`
                    // lands in b with sign −i.
                    let i = wave.value(t);
                    add_opt(b, map.node_row(*p), -i);
                    add_opt(b, map.node_row(*n), i);
                }
                Element::VSource { wave, .. } => {
                    b[map.branch_row(idx)] += wave.value(t);
                }
                _ => {}
            }
        }
        for cap in &self.caps {
            let h = cap.geq * cap.v_old + cap.i_old;
            add_opt(b, cap.ra, h);
            add_opt(b, cap.rb, -h);
        }
    }

    /// Assembles the Jacobian and residual at the current `x` without
    /// allocating: memcpy the static base back, scatter the buffered
    /// switch/capacitor/g_min values through the frozen slot maps,
    /// evaluate the linear residual as a mat-vec against `b(t)`, then
    /// restamp only the MOSFET companions.
    fn assemble(&mut self, circuit: &Circuit) {
        let map = &self.map;
        let x = &self.x;
        let res = &mut self.res;
        let b = &self.b;
        let sw_vals = &self.sw_vals;
        let cap_vals = &self.cap_vals;
        let mos_vals = &mut self.mos_vals;
        match &mut self.engine {
            TranEngine::Dense {
                base_jac,
                jac,
                sw_slots,
                cap_slots,
                mos_slots,
                ..
            } => {
                jac.copy_from(base_jac);
                jac.scatter_add(sw_slots, sw_vals);
                jac.scatter_add(cap_slots, cap_vals);
                for row in 0..(map.node_count() - 1) {
                    jac.add_at(row, row, TRAN_GMIN);
                }
                jac.mul_vec_into(x, res);
                for (r, bv) in res.iter_mut().zip(b.iter()) {
                    *r -= *bv;
                }
                mos_vals.clear();
                stamp_mosfets(circuit, map, x, res, &mut |_, _, v| mos_vals.push(v));
                debug_assert_eq!(
                    mos_vals.len(),
                    mos_slots.len(),
                    "stamp traversal drifted from slot map"
                );
                jac.scatter_add(mos_slots, mos_vals);
            }
            TranEngine::Sparse {
                base_vals,
                jac,
                slots,
                static_len,
                sw_len,
                cap_len,
                gmin_len,
                ..
            } => {
                jac.values_mut().copy_from_slice(base_vals);
                let sw0 = *static_len;
                jac.scatter_add(&slots[sw0..sw0 + *sw_len], sw_vals);
                let cap0 = sw0 + *sw_len;
                jac.scatter_add(&slots[cap0..cap0 + *cap_len], cap_vals);
                let g0 = cap0 + *cap_len;
                jac.scatter_add_uniform(&slots[g0..g0 + *gmin_len], TRAN_GMIN);
                jac.mul_vec_into(x, res);
                for (r, bv) in res.iter_mut().zip(b.iter()) {
                    *r -= *bv;
                }
                mos_vals.clear();
                stamp_mosfets(circuit, map, x, res, &mut |_, _, v| mos_vals.push(v));
                let mos_slots = &slots[g0 + *gmin_len..];
                debug_assert_eq!(
                    mos_vals.len(),
                    mos_slots.len(),
                    "stamp traversal drifted from slot map"
                );
                jac.scatter_add(mos_slots, mos_vals);
            }
        }
    }

    /// Factors the assembled Jacobian and solves `J·dx = res` into `dx`.
    fn factor_and_solve(&mut self) -> bool {
        match &mut self.engine {
            TranEngine::Dense { jac, lu, .. } => {
                if lu.factor_into(jac).is_err() {
                    return false;
                }
                lu.solve_into(&self.res, &mut self.dx);
                true
            }
            TranEngine::Sparse { jac, lu, .. } => {
                if lu.factor_into(jac).is_err() {
                    self.sparse_failed = true;
                    return false;
                }
                lu.solve_into(&self.res, &mut self.dx);
                true
            }
        }
    }

    /// Damped Newton at one time point (assemble → solve → update),
    /// warm-started from the current `x`. Returns the iteration count.
    fn solve_point(
        &mut self,
        circuit: &Circuit,
        t: f64,
        max_iter: usize,
        vtol: f64,
    ) -> SpiceResult<usize> {
        let mut prev_dv = f64::INFINITY;
        for it in 0..max_iter {
            self.assemble(circuit);
            // Newton step: J·dx = −res, reusing res as the negated rhs.
            self.res.iter_mut().for_each(|r| *r = -*r);
            if !self.factor_and_solve() {
                return Err(SpiceError::Singular(format!("t = {t:.3e}s")));
            }
            let nv = self.map.node_count() - 1;
            let max_dv = self.dx[..nv].iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
            let alpha = if max_dv > 1.0 { 1.0 / max_dv } else { 1.0 };
            for (xi, di) in self.x.iter_mut().zip(self.dx.iter()) {
                *xi += alpha * di;
            }
            if max_dv * alpha < vtol {
                return Ok(it + 1);
            }
            // Float noise in the device-model evaluations can trap the
            // update in a nanovolt-scale limit cycle just above `vtol`.
            // Once the step is micro-volt small and no longer contracting,
            // the point is solved for every physical purpose — accept it.
            if max_dv < stall_ceiling(&self.x[..nv]) && max_dv > 0.5 * prev_dv {
                return Ok(it + 1);
            }
            prev_dv = max_dv;
        }
        // Noise-bound fallback (see [`NEWTON_STALL_VTOL`]): a multi-level
        // limit cycle whose envelope is still far below any physical
        // bistability is accepted at loop exhaustion; a genuinely
        // non-convergent (volt-scale) cycle stays an error.
        let nv = self.map.node_count() - 1;
        if prev_dv < 100.0 * stall_ceiling(&self.x[..nv]) {
            return Ok(max_iter);
        }
        Err(SpiceError::DcConvergence {
            residual: f64::NAN,
            iterations: max_iter,
        })
    }

    /// Advances every capacitor's trapezoidal state to the just-accepted
    /// solution.
    fn commit_caps(&mut self) {
        let x = &self.x;
        for cap in &mut self.caps {
            let va = cap.ra.map_or(0.0, |r| x[r]);
            let vb = cap.rb.map_or(0.0, |r| x[r]);
            let v_new = va - vb;
            let i_new = cap.geq * (v_new - cap.v_old) - cap.i_old;
            cap.v_old = v_new;
            cap.i_old = i_new;
        }
    }
}

/// Tuning for the LTE-based adaptive step controller.
#[derive(Debug, Clone, Copy)]
pub struct TimeStepConfig {
    /// Smallest allowed step, s.
    pub dt_min: f64,
    /// Largest allowed step, s.
    pub dt_max: f64,
    /// First step after t=0 and after every clock-edge breakpoint, s.
    pub dt_init: f64,
    /// Relative LTE tolerance.
    pub reltol: f64,
    /// Absolute LTE tolerance, V.
    pub abstol: f64,
    /// Step growth factor on low-error acceptance.
    pub grow: f64,
    /// Step shrink factor on rejection.
    pub shrink: f64,
    /// Error ratio below which the step doubles.
    pub grow_threshold: f64,
    /// Significant digits the error ratio is quantized to before every
    /// accept/reject/grow decision, so sparse and dense engines walk an
    /// identical step sequence despite last-ulp assembly differences.
    pub control_digits: u32,
}

impl Default for TimeStepConfig {
    fn default() -> Self {
        TimeStepConfig {
            dt_min: 1e-13,
            dt_max: 1e-7,
            dt_init: 1e-10,
            reltol: 1e-3,
            abstol: 1e-6,
            grow: 2.0,
            shrink: 0.5,
            grow_threshold: 0.05,
            control_digits: 4,
        }
    }
}

impl TimeStepConfig {
    /// A configuration scaled to a clock: the initial step resolves a
    /// phase window into ~256 slices, the cap keeps at least 8 steps per
    /// window, and the floor leaves 4096× headroom for stiff transitions.
    pub fn for_clock(clock: &Clock) -> Self {
        let w = clock.period() / 2.0;
        TimeStepConfig {
            dt_init: w / 256.0,
            dt_min: w / 256.0 / 4096.0,
            dt_max: w / 8.0,
            ..Default::default()
        }
    }
}

/// Mutable state of the adaptive step controller: the proposed step and a
/// short history of accepted solutions for the divided-difference LTE
/// estimate.
#[derive(Debug, Clone)]
pub struct TimeStepState {
    /// Step proposed for the next attempt, s.
    dt: f64,
    /// Times of the retained accepted points (oldest → newest).
    hist_t: [f64; 3],
    /// Solutions at those times.
    hist_x: [Vec<f64>; 3],
    /// How many history slots are valid.
    hist_len: usize,
}

impl TimeStepState {
    /// Fresh controller state for a system of dimension `dim`.
    pub fn new(cfg: &TimeStepConfig, dim: usize) -> Self {
        TimeStepState {
            dt: cfg.dt_init,
            hist_t: [0.0; 3],
            hist_x: [vec![0.0; dim], vec![0.0; dim], vec![0.0; dim]],
            hist_len: 0,
        }
    }

    /// Records an accepted solution (oldest point rotates out).
    fn push_accepted(&mut self, t: f64, x: &[f64]) {
        if self.hist_len < 3 {
            self.hist_t[self.hist_len] = t;
            self.hist_x[self.hist_len].copy_from_slice(x);
            self.hist_len += 1;
        } else {
            self.hist_t.rotate_left(1);
            self.hist_x.rotate_left(1);
            self.hist_t[2] = t;
            self.hist_x[2].copy_from_slice(x);
        }
    }

    /// Drops the history (called at clock-edge breakpoints: the solution
    /// is discontinuous in its derivatives there, so divided differences
    /// across the edge would be meaningless).
    fn clear_history(&mut self) {
        self.hist_len = 0;
    }

    /// Weighted local-truncation-error estimate for a candidate solution
    /// `x_new` at `t_new` against the accepted history: the trapezoidal
    /// LTE is `−h³/12·x‴`, with `x‴ ≈ 6·DD3` from the third divided
    /// difference over the last four points, giving `|LTE| = h³·|DD3|/2`
    /// per unknown. Each node row is weighted by `reltol·|x| + abstol`
    /// and the maximum ratio is returned: ≤ 1 means the step passes. With
    /// fewer than two history points the estimate is 0 (accept — startup
    /// or just past a breakpoint); with exactly two, a conservative
    /// `h²·|DD2|` second-difference bound is used.
    pub fn estimate_error_weighted(
        &self,
        cfg: &TimeStepConfig,
        t_new: f64,
        x_new: &[f64],
        node_rows: usize,
    ) -> f64 {
        if self.hist_len < 2 {
            return 0.0;
        }
        let mut worst = 0.0_f64;
        if self.hist_len == 2 {
            let (t0, t1) = (self.hist_t[0], self.hist_t[1]);
            let h = t_new - t1;
            for (i, &xn) in x_new.iter().enumerate().take(node_rows) {
                let x0 = self.hist_x[0][i];
                let x1 = self.hist_x[1][i];
                let dd1a = (x1 - x0) / (t1 - t0);
                let dd1b = (xn - x1) / h;
                let dd2 = (dd1b - dd1a) / (t_new - t0);
                let lte = h * h * dd2.abs();
                let w = cfg.reltol * xn.abs() + cfg.abstol;
                worst = worst.max(lte / w);
            }
            return worst;
        }
        let (t0, t1, t2) = (self.hist_t[0], self.hist_t[1], self.hist_t[2]);
        let h = t_new - t2;
        for (i, &xn) in x_new.iter().enumerate().take(node_rows) {
            let x0 = self.hist_x[0][i];
            let x1 = self.hist_x[1][i];
            let x2 = self.hist_x[2][i];
            let dd1a = (x1 - x0) / (t1 - t0);
            let dd1b = (x2 - x1) / (t2 - t1);
            let dd1c = (xn - x2) / h;
            let dd2a = (dd1b - dd1a) / (t2 - t0);
            let dd2b = (dd1c - dd1b) / (t_new - t1);
            let dd3 = (dd2b - dd2a) / (t_new - t0);
            let lte = 0.5 * h * h * h * dd3.abs();
            let w = cfg.reltol * xn.abs() + cfg.abstol;
            worst = worst.max(lte / w);
        }
        worst
    }
}

impl TranWorkspace {
    /// Fixed-step run through the workspace engines (same stepping and
    /// damping as the dense oracle [`transient`], so the two agree to
    /// solver precision on any circuit).
    fn run_fixed(&mut self, circuit: &Circuit, opts: &TranOptions) -> SpiceResult<TranResult> {
        self.prepare(circuit, &opts.ic)?;
        let n_steps = (opts.tstop / opts.dt).round() as usize;
        let mut out = TranResult {
            times: Vec::with_capacity(n_steps + 1),
            node_count: self.map.node_count(),
            data: Vec::with_capacity((n_steps + 1) * self.map.node_count()),
            stats: TranStats {
                sparse: self.is_sparse(),
                ..TranStats::default()
            },
        };
        out.push_sample(0.0, &self.x);
        self.set_dt(opts.dt);
        for step in 1..=n_steps {
            if opts.deadline.expired() {
                return Err(SpiceError::Timeout {
                    analysis: "tran",
                    iterations: step - 1,
                });
            }
            let t = step as f64 * opts.dt;
            let phase = opts.clock.as_ref().and_then(|c| c.active_phase(t));
            self.set_phase(phase);
            self.assemble_b(circuit, t);
            match self.solve_point(circuit, t, opts.max_iter, opts.vtol) {
                Ok(iters) => out.stats.newton_iters += iters,
                Err(SpiceError::DcConvergence { residual, .. }) => {
                    return Err(SpiceError::DcConvergence {
                        residual,
                        iterations: step,
                    })
                }
                Err(e) => return Err(e),
            }
            self.commit_caps();
            out.stats.accepted += 1;
            out.push_sample(t, &self.x);
        }
        out.stats.min_dt = if n_steps > 0 { opts.dt } else { 0.0 };
        Ok(out)
    }

    /// Adaptive run: LTE-controlled step doubling/halving with
    /// clock-edge-aligned breakpoints.
    fn run_adaptive(
        &mut self,
        circuit: &Circuit,
        opts: &TranOptions,
        cfg: &TimeStepConfig,
    ) -> SpiceResult<TranResult> {
        self.prepare(circuit, &opts.ic)?;
        let dim = self.map.dim();
        let nv = self.map.node_count() - 1;
        let mut state = TimeStepState::new(cfg, dim);
        let mut out = TranResult {
            times: Vec::new(),
            node_count: self.map.node_count(),
            data: Vec::new(),
            stats: TranStats {
                sparse: self.is_sparse(),
                min_dt: f64::INFINITY,
                ..TranStats::default()
            },
        };
        out.push_sample(0.0, &self.x);
        state.push_accepted(0.0, &self.x);
        let teps = opts.tstop * 1e-12;
        let mut t = 0.0_f64;
        // Attempt cap: generous backstop against a controller that can
        // neither accept nor shrink further.
        let max_attempts = 20_000_000usize;
        let mut attempts = 0usize;
        while t < opts.tstop - teps {
            if opts.deadline.expired() {
                return Err(SpiceError::Timeout {
                    analysis: "tran",
                    iterations: attempts,
                });
            }
            attempts += 1;
            if attempts > max_attempts {
                return Err(SpiceError::DcConvergence {
                    residual: f64::NAN,
                    iterations: attempts,
                });
            }
            let mut dt_step = state.dt.clamp(cfg.dt_min, cfg.dt_max);
            let mut on_edge = false;
            if let Some(clk) = &opts.clock {
                let edge = clk.next_edge(t);
                if edge <= opts.tstop + teps && t + dt_step >= edge - teps {
                    dt_step = edge - t;
                    on_edge = true;
                }
            }
            if t + dt_step > opts.tstop {
                dt_step = opts.tstop - t;
                on_edge = false;
            }
            if dt_step <= 0.0 {
                break;
            }
            let t_new = t + dt_step;
            self.set_dt(dt_step);
            // Phase at the interval midpoint: unambiguous even when the
            // step lands exactly on a phase boundary.
            let phase = opts
                .clock
                .as_ref()
                .and_then(|c| c.active_phase(t + 0.5 * dt_step));
            self.set_phase(phase);
            self.assemble_b(circuit, t_new);
            self.x_prev.copy_from_slice(&self.x);
            let can_shrink = dt_step > cfg.dt_min * (1.0 + 1e-9);
            match self.solve_point(circuit, t_new, opts.max_iter, opts.vtol) {
                Ok(iters) => {
                    out.stats.newton_iters += iters;
                    let err = state.estimate_error_weighted(cfg, t_new, &self.x, nv);
                    let err_q = quantize_rel(err, cfg.control_digits);
                    if err_q > 1.0 && can_shrink {
                        self.x.copy_from_slice(&self.x_prev);
                        state.dt = (dt_step * cfg.shrink).max(cfg.dt_min);
                        out.stats.rejected += 1;
                        continue;
                    }
                    let had_full_history = state.hist_len == 3;
                    self.commit_caps();
                    t = t_new;
                    state.push_accepted(t, &self.x);
                    out.stats.accepted += 1;
                    out.stats.min_dt = out.stats.min_dt.min(dt_step);
                    out.push_sample(t, &self.x);
                    if on_edge {
                        // Derivatives are discontinuous across a switch
                        // transition: restart the LTE history and step
                        // small into the new phase.
                        state.clear_history();
                        state.push_accepted(t, &self.x);
                        state.dt = cfg.dt_init;
                    } else if err_q < cfg.grow_threshold && had_full_history {
                        state.dt = (dt_step * cfg.grow).min(cfg.dt_max);
                    } else {
                        state.dt = dt_step.min(cfg.dt_max);
                    }
                }
                Err(SpiceError::DcConvergence { .. }) if can_shrink => {
                    // Newton trouble is handled like an LTE rejection:
                    // retreat and retry with a smaller step.
                    self.x.copy_from_slice(&self.x_prev);
                    state.dt = (dt_step * cfg.shrink).max(cfg.dt_min);
                    out.stats.rejected += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if !out.stats.min_dt.is_finite() {
            out.stats.min_dt = 0.0;
        }
        Ok(out)
    }
}

/// Runs a fixed-step transient simulation through a reusable
/// [`TranWorkspace`] (sparse engine on OTA-sized circuits, dense oracle
/// retried automatically on an unlucky sparse pivot).
///
/// # Errors
/// [`SpiceError::DcConvergence`] if a step's Newton loop fails,
/// [`SpiceError::Singular`] if the Jacobian is singular,
/// [`SpiceError::BadNetlist`] for a malformed initial condition.
pub fn transient_with(
    ws: &mut TranWorkspace,
    circuit: &Circuit,
    opts: &TranOptions,
) -> SpiceResult<TranResult> {
    #[cfg(feature = "faults")]
    if let Some(e) = injected_tran_fault() {
        return Err(e);
    }
    ws.sparse_failed = false;
    match ws.run_fixed(circuit, opts) {
        // An expired budget is final: a dense re-run would only blow
        // further past it.
        Err(e @ SpiceError::Timeout { .. }) => Err(e),
        Err(e) => {
            if ws.sparse_failed {
                ws.demote_to_dense(circuit);
                ws.run_fixed(circuit, opts)
            } else {
                Err(e)
            }
        }
        ok => ok,
    }
}

/// Maps an armed `tran_solve` fault-injection rule to the failure the rest
/// of the stack must absorb. `Corrupt` has no datum to corrupt at this
/// layer, so it degrades to a convergence failure.
#[cfg(feature = "faults")]
fn injected_tran_fault() -> Option<SpiceError> {
    use adc_numerics::faults::{self, FaultAction};
    match faults::check(faults::SITE_TRAN_SOLVE)? {
        FaultAction::FailConvergence | FaultAction::Corrupt => Some(SpiceError::DcConvergence {
            residual: f64::INFINITY,
            iterations: 0,
        }),
        FaultAction::Panic => panic!("injected fault: tran_solve panic"),
        FaultAction::Timeout => Some(SpiceError::Timeout {
            analysis: "tran",
            iterations: 0,
        }),
    }
}

/// Runs an adaptive-step transient simulation through a reusable
/// [`TranWorkspace`]: trapezoidal LTE control with step doubling/halving
/// ([`TimeStepConfig`]) and clock-edge-aligned breakpoints so phase
/// transitions are never stepped over. `opts.dt` is ignored.
///
/// # Errors
/// [`SpiceError::DcConvergence`] if a step's Newton loop fails at the
/// minimum step, [`SpiceError::Singular`] if the Jacobian is singular,
/// [`SpiceError::BadNetlist`] for a malformed initial condition.
pub fn transient_adaptive(
    ws: &mut TranWorkspace,
    circuit: &Circuit,
    opts: &TranOptions,
    cfg: &TimeStepConfig,
) -> SpiceResult<TranResult> {
    #[cfg(feature = "faults")]
    if let Some(e) = injected_tran_fault() {
        return Err(e);
    }
    ws.sparse_failed = false;
    match ws.run_adaptive(circuit, opts, cfg) {
        Err(e @ SpiceError::Timeout { .. }) => Err(e),
        Err(e) => {
            if ws.sparse_failed {
                ws.demote_to_dense(circuit);
                ws.run_adaptive(circuit, opts, cfg)
            } else {
                Err(e)
            }
        }
        ok => ok,
    }
}

/// Per-capacitor trapezoidal state (oracle path).
#[derive(Debug, Clone, Copy)]
struct CapState {
    v_old: f64,
    i_old: f64,
}

/// Runs a fixed-step transient simulation with the seed-era dense engine:
/// every element restamps a freshly cleared dense Jacobian each Newton
/// iteration. Kept as the bit-level oracle the workspace engines are
/// compared against on small circuits.
///
/// # Errors
/// [`SpiceError::DcConvergence`] if a step's Newton loop fails,
/// [`SpiceError::Singular`] if the Jacobian becomes singular,
/// [`SpiceError::BadNetlist`] for a malformed initial condition.
pub fn transient(circuit: &Circuit, opts: &TranOptions) -> SpiceResult<TranResult> {
    let map = MnaMap::new(circuit);
    let dim = map.dim();
    if dim == 0 {
        return Err(SpiceError::BadNetlist("circuit has no unknowns".into()));
    }

    let n_steps = (opts.tstop / opts.dt).round() as usize;
    let mut x = vec![0.0; dim];
    apply_ic(&map, &opts.ic, &mut x)?;

    // Initialize capacitor states from the initial node voltages.
    let cap_elems: Vec<usize> = circuit
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Element::Capacitor { .. }))
        .map(|(i, _)| i)
        .collect();
    let volt_of = |x: &[f64], node: NodeId| -> f64 {
        match map.node_row(node) {
            Some(r) => x[r],
            None => 0.0,
        }
    };
    let mut cap_states: Vec<CapState> = cap_elems
        .iter()
        .map(|&i| {
            if let Element::Capacitor { a, b, .. } = &circuit.elements()[i] {
                CapState {
                    v_old: volt_of(&x, *a) - volt_of(&x, *b),
                    i_old: 0.0,
                }
            } else {
                unreachable!()
            }
        })
        .collect();

    let mut out = TranResult {
        times: Vec::with_capacity(n_steps + 1),
        node_count: map.node_count(),
        data: Vec::with_capacity((n_steps + 1) * map.node_count()),
        stats: TranStats {
            min_dt: if n_steps > 0 { opts.dt } else { 0.0 },
            ..TranStats::default()
        },
    };
    out.push_sample(0.0, &x);

    let mut jac = Matrix::zeros(dim, dim);
    let mut res = vec![0.0; dim];
    let geq_of = |c: f64| 2.0 * c / opts.dt; // trapezoidal companion

    for step in 1..=n_steps {
        if opts.deadline.expired() {
            return Err(SpiceError::Timeout {
                analysis: "tran",
                iterations: step - 1,
            });
        }
        let t = step as f64 * opts.dt;
        // Newton loop at this time point.
        let mut converged = false;
        let mut prev_dv = f64::INFINITY;
        for _ in 0..opts.max_iter {
            out.stats.newton_iters += 1;
            jac.clear();
            res.iter_mut().for_each(|r| *r = 0.0);
            // g_min for floating nodes.
            for r in 0..(map.node_count() - 1) {
                jac.add_at(r, r, TRAN_GMIN);
                res[r] += TRAN_GMIN * x[r];
            }
            let mut cap_k = 0usize;
            for (idx, e) in circuit.elements().iter().enumerate() {
                match e {
                    Element::Resistor { a, b, ohms, .. } => {
                        let g = 1.0 / ohms;
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let dv = volt_of(&x, *a) - volt_of(&x, *b);
                        stamp_conductance(&mut jac, ra, rb, g);
                        add_opt(&mut res, ra, g * dv);
                        add_opt(&mut res, rb, -g * dv);
                    }
                    Element::Switch {
                        a,
                        b,
                        ron,
                        roff,
                        phase,
                        ..
                    } => {
                        let closed = match &opts.clock {
                            Some(clk) => clk.active_phase(t) == Some(*phase),
                            None => false,
                        };
                        let g = 1.0 / if closed { *ron } else { *roff };
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let dv = volt_of(&x, *a) - volt_of(&x, *b);
                        stamp_conductance(&mut jac, ra, rb, g);
                        add_opt(&mut res, ra, g * dv);
                        add_opt(&mut res, rb, -g * dv);
                    }
                    Element::Capacitor { a, b, farads, .. } => {
                        let st = cap_states[cap_k];
                        cap_k += 1;
                        let geq = geq_of(*farads);
                        let (ra, rb) = (map.node_row(*a), map.node_row(*b));
                        let v_new = volt_of(&x, *a) - volt_of(&x, *b);
                        // Trapezoidal: i_new = geq·(v_new − v_old) − i_old
                        let i_new = geq * (v_new - st.v_old) - st.i_old;
                        stamp_conductance(&mut jac, ra, rb, geq);
                        add_opt(&mut res, ra, i_new);
                        add_opt(&mut res, rb, -i_new);
                    }
                    Element::ISource { p, n, wave, .. } => {
                        let i = wave.value(t);
                        add_opt(&mut res, map.node_row(*p), i);
                        add_opt(&mut res, map.node_row(*n), -i);
                    }
                    Element::VSource { p, n, wave, .. } => {
                        let br = map.branch_row(idx);
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let ib = x[br];
                        add_opt(&mut res, rp, ib);
                        add_opt(&mut res, rn, -ib);
                        if let Some(r) = rp {
                            jac.add_at(r, br, 1.0);
                            jac.add_at(br, r, 1.0);
                        }
                        if let Some(r) = rn {
                            jac.add_at(r, br, -1.0);
                            jac.add_at(br, r, -1.0);
                        }
                        res[br] += volt_of(&x, *p) - volt_of(&x, *n) - wave.value(t);
                    }
                    Element::Vcvs {
                        p, n, cp, cn, gain, ..
                    } => {
                        let br = map.branch_row(idx);
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let ib = x[br];
                        add_opt(&mut res, rp, ib);
                        add_opt(&mut res, rn, -ib);
                        if let Some(r) = rp {
                            jac.add_at(r, br, 1.0);
                            jac.add_at(br, r, 1.0);
                        }
                        if let Some(r) = rn {
                            jac.add_at(r, br, -1.0);
                            jac.add_at(br, r, -1.0);
                        }
                        if let Some(r) = map.node_row(*cp) {
                            jac.add_at(br, r, -gain);
                        }
                        if let Some(r) = map.node_row(*cn) {
                            jac.add_at(br, r, *gain);
                        }
                        res[br] += volt_of(&x, *p)
                            - volt_of(&x, *n)
                            - gain * (volt_of(&x, *cp) - volt_of(&x, *cn));
                    }
                    Element::Vccs {
                        p, n, cp, cn, gm, ..
                    } => {
                        let (rp, rn) = (map.node_row(*p), map.node_row(*n));
                        let vc = volt_of(&x, *cp) - volt_of(&x, *cn);
                        stamp_vccs(&mut jac, rp, rn, map.node_row(*cp), map.node_row(*cn), *gm);
                        add_opt(&mut res, rp, gm * vc);
                        add_opt(&mut res, rn, -gm * vc);
                    }
                    Element::Mosfet {
                        d,
                        g,
                        s,
                        b,
                        model,
                        w,
                        l,
                        ..
                    } => {
                        let ev = eval_mosfet(
                            model,
                            *w,
                            *l,
                            volt_of(&x, *g) - volt_of(&x, *s),
                            volt_of(&x, *d) - volt_of(&x, *s),
                            volt_of(&x, *b) - volt_of(&x, *s),
                        );
                        let (rd, rg, rs, rb) = (
                            map.node_row(*d),
                            map.node_row(*g),
                            map.node_row(*s),
                            map.node_row(*b),
                        );
                        add_opt(&mut res, rd, ev.id);
                        add_opt(&mut res, rs, -ev.id);
                        let gs_total = ev.gm + ev.gds + ev.gmb;
                        for (row, sign) in [(rd, 1.0), (rs, -1.0)] {
                            let Some(r) = row else { continue };
                            if let Some(cg) = rg {
                                jac.add_at(r, cg, sign * ev.gm);
                            }
                            if let Some(cd) = rd {
                                jac.add_at(r, cd, sign * ev.gds);
                            }
                            if let Some(cb) = rb {
                                jac.add_at(r, cb, sign * ev.gmb);
                            }
                            if let Some(cs) = rs {
                                jac.add_at(r, cs, -sign * gs_total);
                            }
                        }
                    }
                }
            }
            let rhs: Vec<f64> = res.iter().map(|&r| -r).collect();
            let dx = jac
                .solve(&rhs)
                .map_err(|e| SpiceError::Singular(format!("t = {t:.3e}s: {e}")))?;
            let nv = map.node_count() - 1;
            let max_dv = dx[..nv].iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
            let alpha = if max_dv > 1.0 { 1.0 / max_dv } else { 1.0 };
            for (xi, di) in x.iter_mut().zip(dx.iter()) {
                *xi += alpha * di;
            }
            if max_dv * alpha < opts.vtol {
                converged = true;
                break;
            }
            // Same stall acceptance as `TranWorkspace::solve_point`, so the
            // oracle and the workspace walk identical Newton sequences.
            if max_dv < stall_ceiling(&x[..nv]) && max_dv > 0.5 * prev_dv {
                converged = true;
                break;
            }
            prev_dv = max_dv;
        }
        // Same noise-bound fallback as `TranWorkspace::solve_point`.
        if !converged && prev_dv < 100.0 * stall_ceiling(&x[..map.node_count() - 1]) {
            converged = true;
        }
        if !converged {
            return Err(SpiceError::DcConvergence {
                residual: f64::NAN,
                iterations: step,
            });
        }
        // Commit capacitor states.
        let mut cap_k = 0usize;
        for &i in &cap_elems {
            if let Element::Capacitor { a, b, farads, .. } = &circuit.elements()[i] {
                let st = &mut cap_states[cap_k];
                let v_new = volt_of(&x, *a) - volt_of(&x, *b);
                let geq = geq_of(*farads);
                let i_new = geq * (v_new - st.v_old) - st.i_old;
                st.v_old = v_new;
                st.i_old = i_new;
                cap_k += 1;
            }
        }
        out.stats.accepted += 1;
        out.push_sample(t, &x);
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::waveform::Waveform;

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        c.add_vsource("V1", n1, Circuit::GROUND, 1.0);
        let n2 = c.node("n2");
        c.add_resistor("R1", n1, n2, 1e3);
        c.add_capacitor("C1", n2, Circuit::GROUND, 1e-9);
        let opts = TranOptions {
            tstop: 1e-6,
            dt: 1e-9,
            deadline: Deadline::within(std::time::Duration::from_secs(0)),
            ..Default::default()
        };
        // Oracle, fixed-step workspace, and adaptive paths all report the
        // typed timeout.
        for result in [
            transient(&c, &opts),
            transient_with(&mut TranWorkspace::new(&c).unwrap(), &c, &opts),
            transient_adaptive(
                &mut TranWorkspace::new(&c).unwrap(),
                &c,
                &opts,
                &TimeStepConfig::default(),
            ),
        ] {
            match result {
                Err(SpiceError::Timeout {
                    analysis: "tran", ..
                }) => {}
                other => panic!("expected tran timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn rc_charging_curve() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let (r, cap) = (1e3, 1e-9);
        c.add_vsource_wave(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 1.0,
                period: 0.0,
            },
            0.0,
        );
        c.add_resistor("R1", vin, out, r);
        c.add_capacitor("C1", out, Circuit::GROUND, cap);
        let tau = r * cap;
        let result = transient(
            &c,
            &TranOptions {
                tstop: 5.0 * tau,
                dt: tau / 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        // At t = τ the output should be 1 − e⁻¹.
        let idx = 100;
        let v_tau = result.voltage_at(out, idx);
        let want = 1.0 - (-1.0f64).exp();
        assert!((v_tau - want).abs() < 5e-3, "v(τ) = {v_tau}, want {want}");
        assert!((result.final_voltage(out) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn sine_passthrough_amplitude() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.add_vsource_wave(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 0.5,
                freq: 1e6,
                delay: 0.0,
                phase: 0.0,
            },
            0.0,
        );
        c.add_resistor("R1", vin, Circuit::GROUND, 1e3);
        let result = transient(
            &c,
            &TranOptions {
                tstop: 1e-6,
                dt: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let w = result.waveform(vin);
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 0.5).abs() < 1e-3, "peak {max}");
    }

    fn sample_hold_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let cap_node = c.node("hold");
        c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
        c.add_switch("S1", vin, cap_node, 100.0, 1e12, ClockPhase::Phi1, false);
        c.add_capacitor("CH", cap_node, Circuit::GROUND, 1e-12);
        (c, cap_node)
    }

    #[test]
    fn clocked_switch_sample_and_hold() {
        let (c, cap_node) = sample_hold_circuit();
        let clk = Clock {
            freq: 1e6,
            nonoverlap: 10e-9,
        };
        let result = transient(
            &c,
            &TranOptions {
                tstop: 2e-6,
                dt: 1e-9,
                clock: Some(clk),
                ..Default::default()
            },
        )
        .unwrap();
        // After the first φ1 (track) the hold cap should be at 1 V and stay
        // there through φ2.
        let w = result.waveform(cap_node);
        let at = |time: f64| {
            let k = (time / 1e-9).round() as usize;
            w[k.min(w.len() - 1)]
        };
        assert!((at(0.45e-6) - 1.0).abs() < 1e-3, "tracked: {}", at(0.45e-6));
        assert!((at(0.9e-6) - 1.0).abs() < 1e-3, "held: {}", at(0.9e-6));
    }

    #[test]
    fn clock_phases() {
        let clk = Clock {
            freq: 1e6,
            nonoverlap: 50e-9,
        };
        assert_eq!(clk.active_phase(0.1e-6), Some(ClockPhase::Phi1));
        assert_eq!(clk.active_phase(0.47e-6), None); // non-overlap
        assert_eq!(clk.active_phase(0.6e-6), Some(ClockPhase::Phi2));
        assert_eq!(clk.active_phase(0.97e-6), None);
        assert_eq!(clk.active_phase(1.1e-6), Some(ClockPhase::Phi1)); // periodic
    }

    /// Boundary-exact phase windows: with `freq = 1` every time value is a
    /// plain double and the non-overlap boundaries land deterministically.
    #[test]
    fn clock_phase_boundaries_exact() {
        let clk = Clock {
            freq: 1.0,
            nonoverlap: 0.05,
        };
        // Interior of each window.
        assert_eq!(clk.active_phase(0.0), Some(ClockPhase::Phi1));
        assert_eq!(clk.active_phase(0.2), Some(ClockPhase::Phi1));
        assert_eq!(clk.active_phase(0.7), Some(ClockPhase::Phi2));
        // φ1 closes one non-overlap early; φ2 opens exactly at half-period.
        assert_eq!(clk.active_phase(0.45), None);
        assert_eq!(clk.active_phase(0.475), None);
        assert_eq!(clk.active_phase(0.5), Some(ClockPhase::Phi2));
        // φ2 closes one non-overlap early; the next period reopens φ1.
        assert_eq!(clk.active_phase(0.95), None);
        assert_eq!(clk.active_phase(0.99), None);
        assert_eq!(clk.active_phase(1.0), Some(ClockPhase::Phi1));
    }

    /// The rem_euclid formulation drifted at large `t`; the fractional-part
    /// formulation keeps windows aligned after a billion periods.
    #[test]
    fn clock_phase_stable_after_many_periods() {
        for freq in [1.0, 1e6, 40e6] {
            let clk = Clock {
                freq,
                nonoverlap: 0.05 / freq,
            };
            for k in [1u64, 1_000, 1_000_000, 1_000_000_000] {
                let base = k as f64;
                let at = |frac: f64| clk.active_phase((base + frac) / freq);
                assert_eq!(at(0.2), Some(ClockPhase::Phi1), "freq {freq} k {k}");
                assert_eq!(at(0.47), None, "freq {freq} k {k}");
                assert_eq!(at(0.7), Some(ClockPhase::Phi2), "freq {freq} k {k}");
                assert_eq!(at(0.97), None, "freq {freq} k {k}");
            }
        }
    }

    #[test]
    fn next_edge_walks_boundaries() {
        let clk = Clock {
            freq: 1.0,
            nonoverlap: 0.05,
        };
        let mut t = 0.0;
        let mut edges = Vec::new();
        for _ in 0..6 {
            t = clk.next_edge(t);
            edges.push(t);
        }
        let want = [0.45, 0.5, 0.95, 1.0, 1.45, 1.5];
        for (e, w) in edges.iter().zip(want.iter()) {
            assert!((e - w).abs() < 1e-9, "edges {edges:?}");
        }
    }

    #[test]
    fn phase_window_matches_active_phase() {
        let clk = Clock {
            freq: 40e6,
            nonoverlap: 1e-9,
        };
        for k in [0usize, 7, 1000] {
            for phase in [ClockPhase::Phi1, ClockPhase::Phi2] {
                let (s, e) = clk.phase_window(k, phase);
                assert!(e > s);
                assert_eq!(clk.active_phase(0.5 * (s + e)), Some(phase), "k {k}");
                // Just past the window end is non-overlap.
                assert_eq!(clk.active_phase(e + 0.1e-9), None, "k {k}");
            }
        }
    }

    #[test]
    fn ic_voltages_respected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-12);
        c.add_resistor("R1", a, Circuit::GROUND, 1e6);
        let mut v0 = vec![0.0; 2];
        v0[a.index()] = 2.0;
        let result = transient(
            &c,
            &TranOptions {
                tstop: 1e-8,
                dt: 1e-10,
                ic: InitialCondition::Voltages(v0),
                ..Default::default()
            },
        )
        .unwrap();
        // τ = 1 µs, simulate 10 ns → essentially unchanged.
        assert!((result.voltage_at(a, 0) - 2.0).abs() < 1e-9);
        assert!((result.final_voltage(a) - 2.0).abs() < 0.05);
    }

    #[test]
    fn ic_wrong_length_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-12);
        c.add_resistor("R1", a, Circuit::GROUND, 1e6);
        let opts = TranOptions {
            tstop: 1e-9,
            dt: 1e-10,
            ic: InitialCondition::Voltages(vec![0.0; 5]),
            ..Default::default()
        };
        let err = transient(&c, &opts).unwrap_err();
        assert!(matches!(err, SpiceError::BadNetlist(_)), "{err}");
        assert!(err.to_string().contains("5 voltages"), "{err}");
        let mut ws = TranWorkspace::new(&c).unwrap();
        let err = transient_with(&mut ws, &c, &opts).unwrap_err();
        assert!(matches!(err, SpiceError::BadNetlist(_)), "{err}");
        let err = transient_adaptive(&mut ws, &c, &opts, &TimeStepConfig::default()).unwrap_err();
        assert!(matches!(err, SpiceError::BadNetlist(_)), "{err}");
    }

    fn rc_fixture() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9);
        (c, out)
    }

    #[test]
    fn workspace_fixed_step_matches_oracle() {
        let (c, out) = rc_fixture();
        let opts = TranOptions {
            tstop: 5e-6,
            dt: 1e-8,
            ..Default::default()
        };
        let oracle = transient(&c, &opts).unwrap();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let mut ws = TranWorkspace::with_solver(&c, choice).unwrap();
            let got = transient_with(&mut ws, &c, &opts).unwrap();
            assert_eq!(got.len(), oracle.len());
            for k in 0..got.len() {
                let (a, b) = (got.voltage_at(out, k), oracle.voltage_at(out, k));
                assert!((a - b).abs() < 1e-9, "{choice:?} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn workspace_clocked_matches_oracle() {
        let (c, cap_node) = sample_hold_circuit();
        let opts = TranOptions {
            tstop: 2e-6,
            dt: 1e-9,
            clock: Some(Clock {
                freq: 1e6,
                nonoverlap: 10e-9,
            }),
            ..Default::default()
        };
        let oracle = transient(&c, &opts).unwrap();
        let mut ws = TranWorkspace::new(&c).unwrap();
        let got = transient_with(&mut ws, &c, &opts).unwrap();
        assert_eq!(got.len(), oracle.len());
        for k in 0..got.len() {
            let (a, b) = (got.voltage_at(cap_node, k), oracle.voltage_at(cap_node, k));
            assert!((a - b).abs() < 1e-9, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let (c, _) = rc_fixture();
        let opts = TranOptions {
            tstop: 2e-6,
            dt: 1e-8,
            ..Default::default()
        };
        let mut ws = TranWorkspace::new(&c).unwrap();
        let first = transient_with(&mut ws, &c, &opts).unwrap();
        let second = transient_with(&mut ws, &c, &opts).unwrap();
        let mut fresh = TranWorkspace::new(&c).unwrap();
        let third = transient_with(&mut fresh, &c, &opts).unwrap();
        assert_eq!(first.data, second.data);
        assert_eq!(first.data, third.data);
        let cfg = TimeStepConfig::default();
        let a1 = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        let a2 = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        assert_eq!(a1.data, a2.data);
        assert_eq!(a1.times, a2.times);
    }

    #[test]
    fn adaptive_rc_matches_analytic_with_fewer_steps() {
        let (c, out) = rc_fixture();
        let tau = 1e3 * 1e-9;
        let opts = TranOptions {
            tstop: 5.0 * tau,
            dt: tau / 1000.0,
            ..Default::default()
        };
        let mut ws = TranWorkspace::new(&c).unwrap();
        let fixed = transient_with(&mut ws, &c, &opts).unwrap();
        let cfg = TimeStepConfig {
            dt_init: tau / 1000.0,
            dt_min: tau / 100_000.0,
            dt_max: tau,
            ..Default::default()
        };
        let adaptive = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        for frac in [0.5, 1.0, 2.0, 5.0] {
            let t = frac * tau;
            let want = 1.0 - (-frac).exp();
            let got = adaptive.sample_at(out, t);
            assert!((got - want).abs() < 2e-3, "v({frac}τ) = {got}, want {want}");
        }
        let st = adaptive.stats();
        assert!(st.accepted > 0 && st.accepted < fixed.stats().accepted / 4);
        assert!(st.min_dt >= cfg.dt_min && st.min_dt <= cfg.dt_max);
        assert_eq!(fixed.stats().rejected, 0);
    }

    #[test]
    fn adaptive_clocked_sample_hold_hits_breakpoints() {
        let (c, cap_node) = sample_hold_circuit();
        let clk = Clock {
            freq: 1e6,
            nonoverlap: 10e-9,
        };
        let opts = TranOptions {
            tstop: 2e-6,
            dt: 1e-9,
            clock: Some(clk),
            ..Default::default()
        };
        let mut ws = TranWorkspace::new(&c).unwrap();
        let cfg = TimeStepConfig::for_clock(&clk);
        let result = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        // Every phase edge inside the run must be an exact sample time.
        let mut edge = 0.0;
        loop {
            edge = clk.next_edge(edge);
            if edge > opts.tstop * (1.0 + 1e-9) {
                break;
            }
            assert!(
                result
                    .times()
                    .iter()
                    .any(|&t| (t - edge).abs() < 1e-15 + edge * 1e-12),
                "no sample at edge {edge:e}"
            );
        }
        assert!((result.sample_at(cap_node, 0.4e-6) - 1.0).abs() < 1e-3);
        assert!((result.sample_at(cap_node, 0.9e-6) - 1.0).abs() < 1e-3);
        assert!((result.final_voltage(cap_node) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sample_at_interpolates() {
        let r = TranResult {
            times: vec![0.0, 1.0, 3.0],
            node_count: 2,
            data: vec![0.0, 0.0, 0.0, 2.0, 0.0, 6.0],
            stats: TranStats::default(),
        };
        let n = NodeId::from_index(1);
        assert_eq!(r.sample_at(n, -1.0), 0.0);
        assert_eq!(r.sample_at(n, 0.5), 1.0);
        assert_eq!(r.sample_at(n, 2.0), 4.0);
        assert_eq!(r.sample_at(n, 9.0), 6.0);
    }
}
