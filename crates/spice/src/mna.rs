//! Modified-nodal-analysis bookkeeping: mapping nodes and source branches
//! to rows of the linear system.
//!
//! Unknown ordering: non-ground node voltages first (node `k` → row `k−1`),
//! then one branch-current unknown per voltage source / VCVS in element
//! order.

use crate::netlist::{Circuit, Element, NodeId};

/// Index map from circuit entities to MNA matrix rows.
#[derive(Debug, Clone)]
pub struct MnaMap {
    node_count: usize,
    /// element index → branch row (absolute), for VSource/VCVS elements.
    branch_rows: Vec<Option<usize>>,
    dim: usize,
}

impl MnaMap {
    /// Builds the map for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let node_count = circuit.node_count();
        let mut branch_rows = vec![None; circuit.elements().len()];
        let mut next = node_count - 1;
        for (i, e) in circuit.elements().iter().enumerate() {
            if matches!(e, Element::VSource { .. } | Element::Vcvs { .. }) {
                branch_rows[i] = Some(next);
                next += 1;
            }
        }
        MnaMap {
            node_count,
            branch_rows,
            dim: next,
        }
    }

    /// Total system dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether this map is valid for `circuit`: same node count and the
    /// same branch-unknown pattern over the element list. Node rows are
    /// positional (`NodeId` order), so this is sufficient for reuse across
    /// value retuning — and it rejects a *different* circuit that merely
    /// has equal node/element counts (e.g. sources reordered).
    pub fn matches(&self, circuit: &Circuit) -> bool {
        self.node_count == circuit.node_count()
            && self.branch_rows.len() == circuit.elements().len()
            && circuit
                .elements()
                .iter()
                .zip(self.branch_rows.iter())
                .all(|(e, br)| {
                    matches!(e, Element::VSource { .. } | Element::Vcvs { .. }) == br.is_some()
                })
    }

    /// Number of circuit nodes (including ground).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Row of a node voltage unknown (`None` for ground).
    #[inline]
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        if node.index() == 0 {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Row of the branch-current unknown of element `elem_idx`.
    ///
    /// # Panics
    /// Panics if the element has no branch unknown (not a V-source/VCVS).
    pub fn branch_row(&self, elem_idx: usize) -> usize {
        self.branch_rows[elem_idx].expect("element has no branch-current unknown")
    }

    /// Reads a node voltage out of a solution vector (0 for ground).
    #[inline]
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_row(node) {
            Some(r) => x[r],
            None => 0.0,
        }
    }
}

/// Accumulates `v` into `vec[row]` when `row` is not ground.
#[inline]
pub fn add_opt(vec: &mut [f64], row: Option<usize>, v: f64) {
    if let Some(r) = row {
        vec[r] += v;
    }
}

/// Accumulates a 2×2 conductance stamp between rows `a` and `b`.
#[inline]
pub fn stamp_conductance(
    mat: &mut adc_numerics::Matrix,
    a: Option<usize>,
    b: Option<usize>,
    g: f64,
) {
    if let Some(i) = a {
        mat.add_at(i, i, g);
    }
    if let Some(j) = b {
        mat.add_at(j, j, g);
    }
    if let (Some(i), Some(j)) = (a, b) {
        mat.add_at(i, j, -g);
        mat.add_at(j, i, -g);
    }
}

/// Accumulates a transconductance stamp: current `gm·v(cp−cn)` leaving `p`
/// (entering `n`).
#[inline]
pub fn stamp_vccs(
    mat: &mut adc_numerics::Matrix,
    p: Option<usize>,
    n: Option<usize>,
    cp: Option<usize>,
    cn: Option<usize>,
    gm: f64,
) {
    for (out, sign_o) in [(p, 1.0), (n, -1.0)] {
        let Some(row) = out else { continue };
        for (ctrl, sign_c) in [(cp, 1.0), (cn, -1.0)] {
            if let Some(col) = ctrl {
                mat.add_at(row, col, sign_o * sign_c * gm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_numerics::Matrix;

    #[test]
    fn map_assigns_branches_after_nodes() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R", a, b, 1.0);
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        c.add_vsource("V2", b, Circuit::GROUND, 2.0);
        let map = MnaMap::new(&c);
        assert_eq!(map.dim(), 4);
        assert_eq!(map.node_row(Circuit::GROUND), None);
        assert_eq!(map.node_row(a), Some(0));
        assert_eq!(map.branch_row(1), 2);
        assert_eq!(map.branch_row(2), 3);
    }

    /// A different circuit with equal node/element counts but a reordered
    /// element list must not reuse a stale map.
    #[test]
    fn map_rejects_reordered_elements() {
        let mut a = Circuit::new();
        let n = a.node("n");
        a.add_resistor("R1", n, Circuit::GROUND, 1e3);
        a.add_vsource("V1", n, Circuit::GROUND, 1.0);
        let mut b = Circuit::new();
        let m = b.node("n");
        b.add_vsource("V1", m, Circuit::GROUND, 1.0);
        b.add_resistor("R1", m, Circuit::GROUND, 1e3);
        let map = MnaMap::new(&a);
        assert!(map.matches(&a));
        assert!(!map.matches(&b));
        // Value retuning keeps the map valid.
        let (rid, _) = a.find_element("R1").unwrap();
        a.set_value(rid, 2e3);
        assert!(map.matches(&a));
    }

    #[test]
    #[should_panic(expected = "no branch-current unknown")]
    fn branch_row_panics_for_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R", a, Circuit::GROUND, 1.0);
        let map = MnaMap::new(&c);
        map.branch_row(0);
    }

    #[test]
    fn conductance_stamp_symmetry() {
        let mut m = Matrix::zeros(2, 2);
        stamp_conductance(&mut m, Some(0), Some(1), 0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], -0.5);
        assert_eq!(m[(1, 0)], -0.5);
        // grounded side only touches the diagonal
        let mut m = Matrix::zeros(2, 2);
        stamp_conductance(&mut m, Some(1), None, 2.0);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn vccs_stamp_signs() {
        let mut m = Matrix::zeros(4, 4);
        stamp_vccs(&mut m, Some(0), Some(1), Some(2), Some(3), 1e-3);
        assert_eq!(m[(0, 2)], 1e-3);
        assert_eq!(m[(0, 3)], -1e-3);
        assert_eq!(m[(1, 2)], -1e-3);
        assert_eq!(m[(1, 3)], 1e-3);
    }
}
