//! Time-domain source waveforms for transient analysis.

/// A source waveform `v(t)` (or `i(t)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// `offset + ampl·sin(2πf·(t−delay) + phase)` for `t ≥ delay`, `offset`
    /// before.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, s.
        delay: f64,
        /// Phase at `t = delay`, rad.
        phase: f64,
    },
    /// SPICE-style periodic pulse.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// Fall time, s.
        fall: f64,
        /// Pulse width at `v1`, s.
        width: f64,
        /// Period, s (0 means single pulse).
        period: f64,
    },
    /// Piecewise linear: sorted `(t, v)` pairs, clamped outside.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Evaluates the waveform at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine {
                offset,
                ampl,
                freq,
                delay,
                phase,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay) + phase).sin()
                }
            }
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tl = t - delay;
                if *period > 0.0 {
                    tl %= period;
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tl < rise {
                    v0 + (v1 - v0) * tl / rise
                } else if tl < rise + width {
                    *v1
                } else if tl < rise + width + fall {
                    v1 + (v0 - v1) * (tl - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// DC (t = −∞ / initial) value used by the operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Sine { offset, .. } => *offset,
            Waveform::Pulse { v0, .. } => *v0,
            Waveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::Dc(0.0)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(2.5);
        assert_eq!(w.value(0.0), 2.5);
        assert_eq!(w.value(1e9), 2.5);
        assert_eq!(w.dc_value(), 2.5);
    }

    #[test]
    fn sine_phase_and_delay() {
        let w = Waveform::Sine {
            offset: 1.0,
            ampl: 2.0,
            freq: 1.0,
            delay: 0.5,
            phase: 0.0,
        };
        assert_eq!(w.value(0.0), 1.0);
        assert!((w.value(0.5) - 1.0).abs() < 1e-12);
        assert!((w.value(0.75) - 3.0).abs() < 1e-12); // quarter period after delay
    }

    #[test]
    fn pulse_edges() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 3.3,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-9,
            period: 10e-9,
        };
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1e-9 + 5e-11) - 1.65).abs() < 1e-9); // mid-rise
        assert_eq!(w.value(3e-9), 3.3);
        assert_eq!(w.value(8e-9), 0.0);
        // periodicity
        assert_eq!(w.value(13e-9), 3.3);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 10.0), (2.0, -10.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(0.5), 5.0);
        assert_eq!(w.value(1.5), 0.0);
        assert_eq!(w.value(5.0), -10.0);
    }

    #[test]
    fn from_f64() {
        let w: Waveform = 1.8.into();
        assert_eq!(w, Waveform::Dc(1.8));
    }
}
