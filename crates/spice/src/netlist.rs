//! Netlist representation: interned nodes and a flat element list.
//!
//! A [`Circuit`] is built programmatically (the design layers *generate*
//! netlists — there is no parser because nothing in the flow reads SPICE
//! decks). Node 0 is ground. Every element has a unique name used in
//! reports and operating-point lookups.

use crate::process::MosModel;
use crate::waveform::Waveform;
use std::collections::HashMap;

/// Interned circuit node identifier. `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 = ground); stable for the life of the circuit.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a `NodeId` from a raw index previously obtained from
    /// [`NodeId::index`]. The caller must ensure the index belongs to the
    /// circuit it will be used with.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i)
    }

    /// Whether this node is the ground reference.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an element within its circuit (insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// Two-phase clock assignment for switched-capacitor switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockPhase {
    /// Closed during φ1 (sampling).
    Phi1,
    /// Closed during φ2 (amplification).
    Phi2,
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance, Ω.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, F.
        farads: f64,
    },
    /// Independent voltage source from `p` (positive) to `n`.
    VSource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform (DC value used in operating-point analysis).
        wave: Waveform,
        /// Small-signal AC magnitude (used by AC analysis as the stimulus).
        ac_mag: f64,
    },
    /// Independent current source pushing current from `p` to `n`
    /// externally (i.e. current exits `p`... conventional SPICE: current
    /// flows from `p` through the source to `n`).
    ISource {
        /// Element name.
        name: String,
        /// Terminal the current flows out of (into the circuit).
        p: NodeId,
        /// Terminal the current returns to.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
        /// Small-signal AC magnitude.
        ac_mag: f64,
    },
    /// Voltage-controlled current source: `i(p→n) = gm · v(cp − cn)`.
    Vccs {
        /// Element name.
        name: String,
        /// Current exits this terminal into the circuit when gm·vc > 0
        /// (SPICE convention: current flows p→n inside the source).
        p: NodeId,
        /// Return terminal.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Transconductance, S.
        gm: f64,
    },
    /// Voltage-controlled voltage source: `v(p − n) = gain · v(cp − cn)`.
    Vcvs {
        /// Element name.
        name: String,
        /// Positive output terminal.
        p: NodeId,
        /// Negative output terminal.
        n: NodeId,
        /// Positive controlling node.
        cp: NodeId,
        /// Negative controlling node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// MOSFET with an inline model card.
    Mosfet {
        /// Element name.
        name: String,
        /// Drain.
        d: NodeId,
        /// Gate.
        g: NodeId,
        /// Source.
        s: NodeId,
        /// Body.
        b: NodeId,
        /// Model card (copied from the process).
        model: MosModel,
        /// Drawn width, m.
        w: f64,
        /// Drawn length, m.
        l: f64,
    },
    /// Two-phase clocked switch (transient analysis only; open in DC/AC
    /// unless `dc_closed`).
    Switch {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// On resistance, Ω.
        ron: f64,
        /// Off resistance, Ω.
        roff: f64,
        /// Phase during which the switch is closed.
        phase: ClockPhase,
        /// Treat as closed for DC/AC analyses.
        dc_closed: bool,
    },
}

impl Element {
    /// The element's unique name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::VSource { name, .. }
            | Element::ISource { name, .. }
            | Element::Vccs { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Switch { name, .. } => name,
        }
    }
}

/// A flat netlist with interned node names.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_map: HashMap<String, usize>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node, always present.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: Vec::new(),
            node_map: HashMap::new(),
            elements: Vec::new(),
        };
        c.node_names.push("0".to_string());
        c.node_map.insert("0".to_string(), 0);
        c.node_map.insert("gnd".to_string(), 0);
        c
    }

    /// Interns (or retrieves) a named node. `"0"` and `"gnd"` are ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&idx) = self.node_map.get(name) {
            return NodeId(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_string());
        self.node_map.insert(name.to_string(), idx);
        NodeId(idx)
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_map.get(name).map(|&i| NodeId(i))
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Element by id.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0]
    }

    /// Finds an element by name.
    pub fn find_element(&self, name: &str) -> Option<(ElementId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .find(|(_, e)| e.name() == name)
            .map(|(i, e)| (ElementId(i), e))
    }

    fn push(&mut self, e: Element) -> ElementId {
        debug_assert!(
            self.find_element(e.name()).is_none(),
            "duplicate element name {}",
            e.name()
        );
        let id = ElementId(self.elements.len());
        self.elements.push(e);
        id
    }

    /// Adds a resistor.
    pub fn add_resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        self.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        })
    }

    /// Adds a capacitor.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        })
    }

    /// Adds a DC voltage source (AC magnitude 0).
    pub fn add_vsource(&mut self, name: &str, p: NodeId, n: NodeId, volts: f64) -> ElementId {
        self.push(Element::VSource {
            name: name.to_string(),
            p,
            n,
            wave: Waveform::Dc(volts),
            ac_mag: 0.0,
        })
    }

    /// Adds a voltage source with an arbitrary waveform and AC magnitude.
    pub fn add_vsource_wave(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        ac_mag: f64,
    ) -> ElementId {
        self.push(Element::VSource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
        })
    }

    /// Adds a DC current source (current flows out of `p` into the circuit
    /// and back into `n` — i.e. it drives node `n` positive with respect to
    /// the external network; SPICE convention).
    pub fn add_isource(&mut self, name: &str, p: NodeId, n: NodeId, amps: f64) -> ElementId {
        self.push(Element::ISource {
            name: name.to_string(),
            p,
            n,
            wave: Waveform::Dc(amps),
            ac_mag: 0.0,
        })
    }

    /// Adds a current source with an arbitrary waveform and AC magnitude.
    pub fn add_isource_wave(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        wave: Waveform,
        ac_mag: f64,
    ) -> ElementId {
        self.push(Element::ISource {
            name: name.to_string(),
            p,
            n,
            wave,
            ac_mag,
        })
    }

    /// Adds a voltage-controlled current source.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> ElementId {
        self.push(Element::Vccs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gm,
        })
    }

    /// Adds a voltage-controlled voltage source.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> ElementId {
        self.push(Element::Vcvs {
            name: name.to_string(),
            p,
            n,
            cp,
            cn,
            gain,
        })
    }

    /// Adds a MOSFET.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> ElementId {
        self.push(Element::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            b,
            model,
            w,
            l,
        })
    }

    /// Adds a two-phase clocked switch.
    #[allow(clippy::too_many_arguments)]
    pub fn add_switch(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ron: f64,
        roff: f64,
        phase: ClockPhase,
        dc_closed: bool,
    ) -> ElementId {
        self.push(Element::Switch {
            name: name.to_string(),
            a,
            b,
            ron,
            roff,
            phase,
            dc_closed,
        })
    }

    /// Retunes an element's primary scalar value in place — the
    /// allocation-free alternative to rebuilding the netlist when only
    /// parameters change between evaluations (synthesis inner loop).
    ///
    /// Covers resistance (Ω), capacitance (F), V/I-source DC value (the AC
    /// magnitude is preserved; a non-DC waveform is replaced by a DC one),
    /// VCCS transconductance (S) and VCVS gain.
    ///
    /// # Panics
    /// Panics for MOSFETs (use [`Circuit::set_device_geometry`]) and
    /// switches (topology-level state, not a tuning value).
    pub fn set_value(&mut self, id: ElementId, value: f64) {
        match &mut self.elements[id.0] {
            Element::Resistor { ohms, .. } => *ohms = value,
            Element::Capacitor { farads, .. } => *farads = value,
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                *wave = Waveform::Dc(value)
            }
            Element::Vccs { gm, .. } => *gm = value,
            Element::Vcvs { gain, .. } => *gain = value,
            other => panic!("set_value: {} has no scalar tuning value", other.name()),
        }
    }

    /// Replaces an independent source's waveform (AC magnitude unchanged).
    /// Clocked testbenches use this to swap a DC drive for a hold/pulse
    /// waveform without rebuilding the netlist.
    ///
    /// # Panics
    /// Panics if the element is not a V-source or I-source.
    pub fn set_waveform(&mut self, id: ElementId, waveform: Waveform) {
        match &mut self.elements[id.0] {
            Element::VSource { wave, .. } | Element::ISource { wave, .. } => *wave = waveform,
            other => panic!(
                "set_waveform: {} is not an independent source",
                other.name()
            ),
        }
    }

    /// Retunes a MOSFET's drawn geometry in place (model card unchanged).
    ///
    /// # Panics
    /// Panics if the element is not a MOSFET.
    pub fn set_device_geometry(&mut self, id: ElementId, w: f64, l: f64) {
        match &mut self.elements[id.0] {
            Element::Mosfet {
                w: ref mut ew,
                l: ref mut el,
                ..
            } => {
                *ew = w;
                *el = l;
            }
            other => panic!("set_device_geometry: {} is not a MOSFET", other.name()),
        }
    }

    /// Structural fingerprint of the netlist: element kinds and terminal
    /// wiring, with all *values* (resistances, widths, waveforms…)
    /// excluded. Two circuits with equal fingerprints stamp the same
    /// matrix positions in the same order — the invariant the reusable
    /// workspaces' precomputed sparse slot maps rely on. Value retuning
    /// ([`Circuit::set_value`], [`Circuit::set_device_geometry`]) never
    /// changes the fingerprint; rewiring, reordering or swapping element
    /// kinds always does.
    pub fn topology_fingerprint(&self) -> u64 {
        // FNV-1a over (kind tag, terminal indices) per element.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.node_count() as u64);
        for e in &self.elements {
            let (tag, nodes): (u64, [usize; 4]) = match e {
                Element::Resistor { a, b, .. } => (1, [a.index(), b.index(), 0, 0]),
                Element::Capacitor { a, b, .. } => (2, [a.index(), b.index(), 0, 0]),
                Element::Switch { a, b, .. } => (3, [a.index(), b.index(), 0, 0]),
                Element::ISource { p, n, .. } => (4, [p.index(), n.index(), 0, 0]),
                Element::VSource { p, n, .. } => (5, [p.index(), n.index(), 0, 0]),
                Element::Vccs { p, n, cp, cn, .. } => {
                    (6, [p.index(), n.index(), cp.index(), cn.index()])
                }
                Element::Vcvs { p, n, cp, cn, .. } => {
                    (7, [p.index(), n.index(), cp.index(), cn.index()])
                }
                Element::Mosfet { d, g, s, b, .. } => {
                    (8, [d.index(), g.index(), s.index(), b.index()])
                }
            };
            mix(tag);
            for n in nodes {
                mix(n as u64 + 1);
            }
        }
        h
    }

    /// Number of extra MNA unknowns (branch currents of V-sources/VCVS).
    pub fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. } | Element::Vcvs { .. }))
            .count()
    }

    /// Total MNA system dimension: non-ground nodes + branch currents.
    pub fn mna_dim(&self) -> usize {
        (self.node_count() - 1) + self.branch_count()
    }

    /// Iterator over MOSFET elements (name, terminals, model, w, l).
    pub fn mosfets(&self) -> impl Iterator<Item = &Element> {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Mosfet { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert!(Circuit::GROUND.is_ground());
        assert!(!a.is_ground());
    }

    #[test]
    fn element_lookup() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        c.add_capacitor("C1", a, Circuit::GROUND, 1e-12);
        let (id, e) = c.find_element("C1").unwrap();
        assert_eq!(e.name(), "C1");
        assert_eq!(c.element(id).name(), "C1");
        assert!(c.find_element("Zz").is_none());
    }

    #[test]
    fn mna_dimension_counts_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, 1.0);
        c.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0);
        c.add_resistor("R1", a, b, 50.0);
        assert_eq!(c.branch_count(), 2);
        assert_eq!(c.mna_dim(), 2 + 2);
    }

    #[test]
    fn mosfet_iterator() {
        let p = Process::c025();
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            p.nmos,
            1e-6,
            0.25e-6,
        );
        c.add_resistor("R", d, g, 1.0);
        assert_eq!(c.mosfets().count(), 1);
    }
}
