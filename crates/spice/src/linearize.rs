//! Shared small-signal linearization and the complex MNA engine behind AC
//! analysis and numeric TF extraction.
//!
//! [`SmallSignal`] is the **single** linearizer both consumers stamp from:
//! `AcWorkspace` (adc-spice) and `NetTfWorkspace` (adc-sfg) used to carry
//! duplicate element loops that could silently diverge; both now bind the
//! same `(base, cap_entries, b)` triplet lists. The only per-consumer
//! choices left are the floating-node `g_min` (AC uses one, TF extraction
//! must not — it would perturb `det Y(s)`) and the complex frequency the
//! entries are replayed at (`jω` for sweeps, arbitrary `s` for TF
//! sampling).
//!
//! [`ComplexMnaWorkspace`] then assembles those entry lists into either a
//! dense [`CMatrix`] or a CSR matrix with a reusable symbolic factorization
//! ([`adc_numerics::sparse`]), selected automatically by structural fill
//! ratio. Entries are grouped by destination row (the CSR value array is
//! row-major — a struct-of-arrays layout), and every `factor_at` call only
//! memcpy's base values and replays the `s`-scaled capacitive slots before
//! an in-place refactorization.

use crate::mna::MnaMap;
use crate::netlist::{Circuit, Element, NodeId};
use crate::op::OperatingPoint;
use crate::{SpiceError, SpiceResult};
use adc_numerics::complex::Complex;
use adc_numerics::linalg::{CLu, CMatrix};
use adc_numerics::sparse::{
    prefer_sparse, CCsrMatrix, CSparseLu, CSparseLuBatch, CsrPattern, Symbolic,
};
use adc_numerics::NumericsError;
use std::sync::Arc;

/// Forces a solver engine for testing/diagnostics; production callers use
/// [`SolverChoice::Auto`] (structural fill ratio decides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Pick sparse or dense by [`prefer_sparse`] (the default).
    #[default]
    Auto,
    /// Always dense LU with partial pivoting (the oracle).
    Dense,
    /// Always sparse LU with the reusable symbolic factorization.
    Sparse,
}

/// Linearized small-signal system of a circuit at an operating point:
/// frequency-independent `base` stamps, `s`-scaled capacitive entries and
/// the stimulus vector, all as flat triplet lists so downstream engines
/// (dense or sparse, `jω` or general `s`) assemble without re-walking the
/// netlist.
///
/// Rebinding to a retuned circuit reuses every buffer; only a *topology*
/// change (node/element structure) rebuilds the index map.
#[derive(Debug, Clone, Default)]
pub struct SmallSignal {
    map: Option<MnaMap>,
    elem_count: usize,
    /// Wiring fingerprint ([`Circuit::topology_fingerprint`]) the entry
    /// lists were last stamped for — downstream slot maps must rebuild
    /// when a rewired circuit reuses the same node/element counts.
    fingerprint: u64,
    /// Frequency-independent stamps `(row, col, g)` — conductances, gm's,
    /// source incidence patterns, the optional floating-node g_min.
    pub base: Vec<(usize, usize, f64)>,
    /// `s`-dependent entries `(row, col, ±C)`, replayed per point as `s·C`.
    pub cap_entries: Vec<(usize, usize, f64)>,
    /// Stimulus vector (independent sources' `ac_mag`).
    pub b: Vec<Complex>,
}

impl SmallSignal {
    /// Creates an empty linearizer; buffers are sized on first bind.
    pub fn new() -> Self {
        SmallSignal::default()
    }

    /// The MNA index map.
    ///
    /// # Panics
    /// Panics if called before the first successful [`SmallSignal::bind`].
    pub fn map(&self) -> &MnaMap {
        self.map.as_ref().expect("SmallSignal not bound")
    }

    /// System dimension (0 before the first bind).
    pub fn dim(&self) -> usize {
        self.map.as_ref().map_or(0, MnaMap::dim)
    }

    /// (Re)linearizes `circuit` at `op`. `gmin` > 0 adds that conductance
    /// from every node to ground (AC analysis); pass 0.0 to leave the
    /// system untouched (TF extraction, where it would perturb the sampled
    /// determinant). Returns `true` when the topology changed and any
    /// downstream pattern/symbolic state must be rebuilt.
    ///
    /// # Errors
    /// [`SpiceError::NotFound`] if a MOSFET has no operating-point entry.
    pub fn bind(&mut self, circuit: &Circuit, op: &OperatingPoint, gmin: f64) -> SpiceResult<bool> {
        let fingerprint = circuit.topology_fingerprint();
        let topo_changed = match &self.map {
            Some(m) => {
                self.elem_count != circuit.elements().len()
                    || self.fingerprint != fingerprint
                    || !m.matches(circuit)
            }
            None => true,
        };
        if topo_changed {
            let map = MnaMap::new(circuit);
            self.b = vec![Complex::ZERO; map.dim()];
            self.elem_count = circuit.elements().len();
            self.fingerprint = fingerprint;
            self.map = Some(map);
        } else {
            self.b.fill(Complex::ZERO);
        }
        self.base.clear();
        self.cap_entries.clear();
        let map = self.map.as_ref().expect("map bound above");
        let base = &mut self.base;
        let caps = &mut self.cap_entries;
        let b = &mut self.b;

        let adm = |list: &mut Vec<(usize, usize, f64)>, a: NodeId, bn: NodeId, g: f64| {
            let (ra, rb) = (map.node_row(a), map.node_row(bn));
            if let Some(i) = ra {
                list.push((i, i, g));
            }
            if let Some(j) = rb {
                list.push((j, j, g));
            }
            if let (Some(i), Some(j)) = (ra, rb) {
                list.push((i, j, -g));
                list.push((j, i, -g));
            }
        };
        let gm_stamp = |list: &mut Vec<(usize, usize, f64)>,
                        p: NodeId,
                        n: NodeId,
                        cp: NodeId,
                        cn: NodeId,
                        gm: f64| {
            for (out, so) in [(map.node_row(p), 1.0), (map.node_row(n), -1.0)] {
                let Some(row) = out else { continue };
                for (ctrl, sc) in [(map.node_row(cp), 1.0), (map.node_row(cn), -1.0)] {
                    if let Some(col) = ctrl {
                        list.push((row, col, so * sc * gm));
                    }
                }
            }
        };

        for (idx, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b: bn, ohms, .. } => {
                    adm(base, *a, *bn, 1.0 / ohms);
                }
                Element::Capacitor {
                    a, b: bn, farads, ..
                } => {
                    adm(caps, *a, *bn, *farads);
                }
                Element::Switch {
                    a,
                    b: bn,
                    ron,
                    roff,
                    dc_closed,
                    ..
                } => {
                    let g = 1.0 / if *dc_closed { *ron } else { *roff };
                    adm(base, *a, *bn, g);
                }
                Element::ISource { p, n, ac_mag, .. } => {
                    if let Some(r) = map.node_row(*p) {
                        b[r] -= Complex::from_real(*ac_mag);
                    }
                    if let Some(r) = map.node_row(*n) {
                        b[r] += Complex::from_real(*ac_mag);
                    }
                }
                Element::VSource { p, n, ac_mag, .. } => {
                    let br = map.branch_row(idx);
                    if let Some(r) = map.node_row(*p) {
                        base.push((r, br, 1.0));
                        base.push((br, r, 1.0));
                    }
                    if let Some(r) = map.node_row(*n) {
                        base.push((r, br, -1.0));
                        base.push((br, r, -1.0));
                    }
                    b[br] = Complex::from_real(*ac_mag);
                }
                Element::Vcvs {
                    p, n, cp, cn, gain, ..
                } => {
                    let br = map.branch_row(idx);
                    if let Some(r) = map.node_row(*p) {
                        base.push((r, br, 1.0));
                        base.push((br, r, 1.0));
                    }
                    if let Some(r) = map.node_row(*n) {
                        base.push((r, br, -1.0));
                        base.push((br, r, -1.0));
                    }
                    if let Some(r) = map.node_row(*cp) {
                        base.push((br, r, -gain));
                    }
                    if let Some(r) = map.node_row(*cn) {
                        base.push((br, r, *gain));
                    }
                }
                Element::Vccs {
                    p, n, cp, cn, gm, ..
                } => {
                    gm_stamp(base, *p, *n, *cp, *cn, *gm);
                }
                Element::Mosfet {
                    name,
                    d,
                    g,
                    s: src,
                    b: bn,
                    ..
                } => {
                    let ev = op.mos_eval(name).ok_or_else(|| {
                        SpiceError::NotFound(format!("operating point for {name}"))
                    })?;
                    // id = gm·vgs + gds·vds + gmb·vbs, current d→s.
                    gm_stamp(base, *d, *src, *g, *src, ev.gm);
                    gm_stamp(base, *d, *src, *d, *src, ev.gds);
                    gm_stamp(base, *d, *src, *bn, *src, ev.gmb);
                    adm(caps, *g, *src, ev.cgs);
                    adm(caps, *g, *d, ev.cgd);
                    adm(caps, *g, *bn, ev.cgb);
                    adm(caps, *src, *bn, ev.csb);
                    adm(caps, *d, *bn, ev.cdb);
                }
            }
        }

        if gmin > 0.0 {
            for r in 0..(map.node_count() - 1) {
                base.push((r, r, gmin));
            }
        }
        Ok(topo_changed)
    }
}

/// Dense engine storage: `(base, scratch, factors)`.
fn make_dense(dim: usize) -> (CMatrix, CMatrix, CLu) {
    (
        CMatrix::zeros(dim, dim),
        CMatrix::zeros(dim, dim),
        CLu::with_dim(dim),
    )
}

/// Sparse half of [`ComplexMnaWorkspace`]: CSR values over a frozen
/// pattern, the symbolic factorization shared across every refactor, and
/// the slot indices the triplet lists write through.
#[derive(Debug)]
struct SparseEngine {
    y: CCsrMatrix,
    base_vals: Vec<Complex>,
    lu: CSparseLu,
    /// Slot per `SmallSignal::base` triplet, in list order.
    base_slots: Vec<usize>,
    /// Slot per `SmallSignal::cap_entries` triplet; the CSR value array is
    /// row-major, so replayed entries land grouped by destination row.
    cap_slots: Vec<usize>,
    /// Capacitance per `cap_entries` triplet, gathered per factorization so
    /// the `s·C` replay runs struct-of-arrays through the chunked
    /// [`CCsrMatrix::scatter_add_scaled`] kernel.
    cap_vals: Vec<f64>,
    /// Lane-batched factor/solve workspace over the same symbolic
    /// factorization, built lazily on the first batched call.
    batch: Option<CSparseLuBatch>,
}

/// Reusable complex MNA engine: assembles a [`SmallSignal`] into a dense or
/// sparse matrix (chosen by structural fill ratio, overridable for tests),
/// then factors `Y(s) = base + s·C` per sample point with zero steady-state
/// allocation. One factorization serves both the linear solve and the
/// determinant — exactly the pair TF extraction samples.
#[derive(Debug, Default)]
pub struct ComplexMnaWorkspace {
    dim: usize,
    choice: SolverChoice,
    /// Dense engine (also the fallback when sparse analysis/refactor
    /// fails).
    dense: Option<(CMatrix, CMatrix, CLu)>,
    sparse: Option<SparseEngine>,
    /// Times a symbolic analysis ran (test hook: retuning must not
    /// re-analyze).
    analyses: usize,
}

impl ComplexMnaWorkspace {
    /// Creates an empty engine; storage is built on first bind.
    pub fn new() -> Self {
        ComplexMnaWorkspace::default()
    }

    /// Overrides the automatic sparse/dense selection (takes effect at the
    /// next [`ComplexMnaWorkspace::bind`] with `topo_changed = true`).
    pub fn set_solver(&mut self, choice: SolverChoice) {
        self.choice = choice;
        // Force re-selection on the next bind.
        self.dense = None;
        self.sparse = None;
        self.dim = 0;
    }

    /// Whether the engine currently factors sparse.
    pub fn is_sparse(&self) -> bool {
        self.sparse.is_some()
    }

    /// Number of symbolic analyses performed so far (stays constant across
    /// value retuning of one topology).
    pub fn symbolic_analyses(&self) -> usize {
        self.analyses
    }

    /// Assembles `ss` into the engine. Pass the `topo_changed` flag from
    /// [`SmallSignal::bind`]; when `false`, the pattern, symbolic
    /// factorization and every buffer are reused and only values are
    /// rewritten.
    pub fn bind(&mut self, ss: &SmallSignal, topo_changed: bool) {
        let dim = ss.dim();
        let rebuild = topo_changed || (self.dense.is_none() && self.sparse.is_none());
        if rebuild {
            self.build_storage(ss, dim);
        }
        self.dim = dim;
        if let Some(sp) = self.sparse.as_mut() {
            // Refresh base values through the frozen slot map.
            sp.base_vals.fill(Complex::ZERO);
            debug_assert_eq!(sp.base_slots.len(), ss.base.len());
            for (&slot, &(_, _, g)) in sp.base_slots.iter().zip(ss.base.iter()) {
                sp.base_vals[slot] += Complex::from_real(g);
            }
            debug_assert_eq!(sp.cap_slots.len(), ss.cap_entries.len());
        } else if let Some((base, _, _)) = self.dense.as_mut() {
            base.clear();
            for &(r, c, g) in &ss.base {
                base.add_at(r, c, Complex::from_real(g));
            }
        }
    }

    /// Chooses the engine and builds pattern/symbolic/storage for a new
    /// topology. Falls back to dense when the sparse analysis finds the
    /// pattern structurally singular (the numeric path would too, but the
    /// dense factorization reports it per sample, preserving the oracle
    /// behaviour).
    fn build_storage(&mut self, ss: &SmallSignal, dim: usize) {
        self.dense = None;
        self.sparse = None;
        let mut entries: Vec<(usize, usize)> =
            Vec::with_capacity(ss.base.len() + ss.cap_entries.len());
        entries.extend(ss.base.iter().map(|&(r, c, _)| (r, c)));
        entries.extend(ss.cap_entries.iter().map(|&(r, c, _)| (r, c)));
        let (pattern, slots) = CsrPattern::from_entries(dim, &entries);
        let go_sparse = match self.choice {
            SolverChoice::Auto => prefer_sparse(dim, pattern.nnz()),
            SolverChoice::Dense => false,
            SolverChoice::Sparse => true,
        };
        if go_sparse {
            if let Ok(sym) = Symbolic::analyze(&pattern) {
                self.analyses += 1;
                let (base_slots, cap_slots) = slots.split_at(ss.base.len());
                self.sparse = Some(SparseEngine {
                    y: CCsrMatrix::zeros(Arc::clone(&pattern)),
                    base_vals: vec![Complex::ZERO; pattern.nnz()],
                    lu: CSparseLu::new(sym),
                    base_slots: base_slots.to_vec(),
                    cap_slots: cap_slots.to_vec(),
                    cap_vals: Vec::with_capacity(cap_slots.len()),
                    batch: None,
                });
                return;
            }
        }
        self.dense = Some(make_dense(dim));
    }

    /// Factors `Y(s) = base + s·C` in place at one complex frequency.
    ///
    /// # Errors
    /// [`NumericsError::SingularMatrix`] when the system is singular at
    /// `s` (dense), or when a pivot underflows under the static sparse
    /// ordering.
    pub fn factor_at(
        &mut self,
        s: Complex,
        caps: &[(usize, usize, f64)],
    ) -> Result<(), NumericsError> {
        if let Some(sp) = self.sparse.as_mut() {
            sp.y.values_mut().copy_from_slice(&sp.base_vals);
            // Hard check: a silently truncating zip would drop capacitive
            // admittances and return a plausible but wrong Y(s).
            assert_eq!(
                sp.cap_slots.len(),
                caps.len(),
                "cap entry list drifted from bind"
            );
            // Gather the capacitances into a flat array, then replay the
            // s-scaled slots through the fixed-width chunked kernel.
            sp.cap_vals.clear();
            sp.cap_vals.extend(caps.iter().map(|&(_, _, c)| c));
            sp.y.scatter_add_scaled(&sp.cap_slots, &sp.cap_vals, s);
            sp.lu.factor_into(&sp.y)
        } else {
            let (base, y, lu) = self.dense.as_mut().expect("engine bound");
            y.copy_from(base);
            for &(i, j, c) in caps {
                y.add_at(i, j, s * c);
            }
            lu.factor_into(y)
        }
    }

    /// Solves with the factors from the last [`ComplexMnaWorkspace::factor_at`].
    ///
    /// # Panics
    /// Panics on dimension mismatch or if nothing was factored yet.
    pub fn solve_into(&mut self, b: &[Complex], x: &mut [Complex]) {
        if let Some(sp) = self.sparse.as_mut() {
            sp.lu.solve_into(b, x);
        } else {
            let (_, _, lu) = self.dense.as_ref().expect("engine bound");
            lu.solve_into(b, x);
        }
    }

    /// Determinant from the factors of the last
    /// [`ComplexMnaWorkspace::factor_at`] (product of pivots).
    pub fn det(&self) -> Complex {
        if let Some(sp) = self.sparse.as_ref() {
            sp.lu.det()
        } else {
            let (_, _, lu) = self.dense.as_ref().expect("engine bound");
            lu.det()
        }
    }

    /// [`ComplexMnaWorkspace::factor_at`] with the engine's fallback policy
    /// applied: a sparse static-pivot underflow demotes the engine to the
    /// dense oracle in place and retries once, so callers never hard-fail
    /// on a numerically unlucky static ordering the dense path would
    /// survive.
    ///
    /// # Errors
    /// [`NumericsError::SingularMatrix`] when the (dense) system is
    /// genuinely singular at `s`.
    pub fn factor_at_or_demote(
        &mut self,
        s: Complex,
        ss: &SmallSignal,
    ) -> Result<(), NumericsError> {
        match self.factor_at(s, &ss.cap_entries) {
            Err(_) if self.is_sparse() => {
                self.demote_to_dense(ss);
                self.factor_at(s, &ss.cap_entries)
            }
            out => out,
        }
    }

    /// Demotes the engine to the dense oracle in place (sparse refactor hit
    /// a numerically unlucky static pivot), rebuilding dense storage from
    /// the bound `ss`.
    pub fn demote_to_dense(&mut self, ss: &SmallSignal) {
        self.sparse = None;
        let dim = ss.dim();
        self.dense = Some(make_dense(dim));
        self.bind(ss, false);
    }

    /// Factors, solves and takes determinants at every sample in `s_list`
    /// — the batched equivalent of a
    /// [`ComplexMnaWorkspace::factor_at_or_demote`] +
    /// [`ComplexMnaWorkspace::solve_into`] + [`ComplexMnaWorkspace::det`]
    /// loop, **bit-identical per sample** to that serial loop.
    ///
    /// On the sparse engine, samples run in chunks of up to
    /// [`adc_numerics::simd::MAX_LANES`] lanes through one SoA workspace
    /// (symbolic traversal amortized across the chunk). A chunk whose
    /// factorization underflows a pivot in any lane is discarded and redone
    /// serially with the usual demote-to-dense ladder, so per-sample
    /// outcomes — including a mid-stream engine demotion — reproduce the
    /// serial path exactly. The dense engine (pivot order is
    /// value-dependent, so lanes cannot share a traversal) runs serially.
    ///
    /// Sample `k`'s solution lands in `xs[k·dim .. (k+1)·dim]`, its
    /// determinant in `dets[k]`.
    ///
    /// # Errors
    /// The failing sample's index and the underlying
    /// [`NumericsError::SingularMatrix`], exactly as the serial loop would
    /// report it. Samples before the failing one hold valid results.
    ///
    /// # Panics
    /// Panics on output length mismatch, or if `ss`'s cap entry list
    /// drifted from the bound slot map.
    pub fn solve_det_batch(
        &mut self,
        s_list: &[Complex],
        ss: &SmallSignal,
        b: &[Complex],
        xs: &mut [Complex],
        dets: &mut [Complex],
    ) -> Result<(), (usize, NumericsError)> {
        let dim = self.dim;
        assert_eq!(xs.len(), s_list.len() * dim, "solution length mismatch");
        assert_eq!(dets.len(), s_list.len(), "determinant length mismatch");
        let mut k0 = 0;
        while k0 < s_list.len() {
            if self.sparse.is_none() {
                // Dense (or demoted) engine: serial, sample by sample.
                let s = s_list[k0];
                self.factor_at_or_demote(s, ss).map_err(|e| (k0, e))?;
                dets[k0] = self.det();
                self.solve_into(b, &mut xs[k0 * dim..(k0 + 1) * dim]);
                k0 += 1;
                continue;
            }
            let take = (s_list.len() - k0).min(adc_numerics::simd::MAX_LANES);
            let chunk = &s_list[k0..k0 + take];
            // Pad partial chunks (by duplicating the last sample) up to a
            // vector-friendly lane count so the batched kernels keep full
            // vector dispatch. Lanes compute independently, so the real
            // lanes' bits are unchanged, and a padding lane fails the
            // pivot check iff its duplicated real lane does — the serial
            // recovery below triggers in exactly the same cases.
            let lanes = adc_numerics::simd::padded_lanes(take);
            let mut sbuf = [Complex::ZERO; adc_numerics::simd::MAX_LANES];
            sbuf[..take].copy_from_slice(chunk);
            sbuf[take..lanes].fill(chunk[take - 1]);
            let factored = {
                let sp = self.sparse.as_mut().expect("checked above");
                assert_eq!(
                    sp.cap_slots.len(),
                    ss.cap_entries.len(),
                    "cap entry list drifted from bind"
                );
                sp.cap_vals.clear();
                sp.cap_vals
                    .extend(ss.cap_entries.iter().map(|&(_, _, c)| c));
                let batch = sp
                    .batch
                    .get_or_insert_with(|| CSparseLuBatch::new(Arc::clone(sp.lu.symbolic())));
                batch
                    .factor_scaled(&sp.base_vals, &sp.cap_slots, &sp.cap_vals, &sbuf[..lanes])
                    .is_ok()
            };
            if factored {
                let sp = self.sparse.as_mut().expect("checked above");
                let batch = sp.batch.as_mut().expect("built above");
                batch.det_into(&mut dets[k0..k0 + take]);
                batch.solve_into(b, &mut xs[k0 * dim..(k0 + take) * dim]);
            } else {
                // A lane underflowed: discard the chunk and redo it
                // serially so the per-sample recovery ladder (including
                // demote-to-dense) runs exactly as it would have serially.
                for (off, &s) in chunk.iter().enumerate() {
                    let k = k0 + off;
                    self.factor_at_or_demote(s, ss).map_err(|e| (k, e))?;
                    dets[k] = self.det();
                    self.solve_into(b, &mut xs[k * dim..(k + 1) * dim]);
                }
            }
            k0 += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use crate::netlist::Circuit;

    fn rc_divider() -> (Circuit, OperatingPoint, NodeId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, 1e3);
        c.add_capacitor("C1", out, Circuit::GROUND, 1e-9);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        (c, op, out)
    }

    #[test]
    fn bind_reports_topology_changes() {
        let (c, op, _) = rc_divider();
        let mut ss = SmallSignal::new();
        assert!(ss.bind(&c, &op, 1e-12).unwrap());
        assert!(
            !ss.bind(&c, &op, 1e-12).unwrap(),
            "same topology rebinds in place"
        );
        assert_eq!(ss.dim(), 3); // 2 nodes + 1 branch
        assert_eq!(
            ss.cap_entries.len(),
            1,
            "grounded cap stamps one diagonal entry"
        );
    }

    #[test]
    fn gmin_zero_leaves_base_untouched() {
        let (c, op, _) = rc_divider();
        let mut ss_ac = SmallSignal::new();
        let mut ss_tf = SmallSignal::new();
        ss_ac.bind(&c, &op, 1e-12).unwrap();
        ss_tf.bind(&c, &op, 0.0).unwrap();
        assert_eq!(
            ss_ac.base.len(),
            ss_tf.base.len() + 2,
            "gmin adds one diagonal per node"
        );
    }

    #[test]
    fn sparse_and_dense_engines_agree() {
        let (c, op, out) = rc_divider();
        let mut ss = SmallSignal::new();
        let topo = ss.bind(&c, &op, 1e-12).unwrap();
        let row = ss.map().node_row(out).unwrap();
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * 159e3);

        let mut results = Vec::new();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let mut eng = ComplexMnaWorkspace::new();
            eng.set_solver(choice);
            eng.bind(&ss, topo);
            assert_eq!(eng.is_sparse(), choice == SolverChoice::Sparse);
            eng.factor_at(s, &ss.cap_entries).unwrap();
            let mut x = vec![Complex::ZERO; ss.dim()];
            let b = ss.b.clone();
            eng.solve_into(&b, &mut x);
            results.push((x[row], eng.det()));
        }
        let (hd, dd) = results[0];
        let (hs, ds) = results[1];
        assert!(
            (hd - hs).norm() <= 1e-12 * hd.norm().max(1e-30),
            "{hd:?} vs {hs:?}"
        );
        assert!((dd - ds).norm() <= 1e-9 * dd.norm(), "{dd:?} vs {ds:?}");
    }

    #[test]
    fn demotion_to_dense_preserves_results() {
        let (c, op, out) = rc_divider();
        let mut ss = SmallSignal::new();
        let topo = ss.bind(&c, &op, 1e-12).unwrap();
        let row = ss.map().node_row(out).unwrap();
        let s = Complex::new(0.0, 1e6);
        let mut eng = ComplexMnaWorkspace::new();
        eng.set_solver(SolverChoice::Sparse);
        eng.bind(&ss, topo);
        eng.factor_at(s, &ss.cap_entries).unwrap();
        let mut xs = vec![Complex::ZERO; ss.dim()];
        let b = ss.b.clone();
        eng.solve_into(&b, &mut xs);
        // Demote in place: engine switches to the dense oracle and keeps
        // producing the same answers for the same bound system.
        eng.demote_to_dense(&ss);
        assert!(!eng.is_sparse());
        eng.factor_at(s, &ss.cap_entries).unwrap();
        let mut xd = vec![Complex::ZERO; ss.dim()];
        eng.solve_into(&b, &mut xd);
        assert!((xs[row] - xd[row]).norm() <= 1e-12 * xd[row].norm().max(1e-30));
    }

    /// The batched factor/solve/det must reproduce the serial
    /// `factor_at_or_demote` + `solve_into` + `det` loop bit for bit on
    /// both engines, including ragged final chunks.
    #[test]
    fn solve_det_batch_matches_serial_loop_bitwise() {
        let (c, op, _) = rc_divider();
        let mut ss = SmallSignal::new();
        let topo = ss.bind(&c, &op, 1e-12).unwrap();
        let dim = ss.dim();
        let b = ss.b.clone();
        let samples: Vec<Complex> = (0..11)
            .map(|k| Complex::from_polar(1e6, 0.2 + 0.5 * k as f64))
            .collect();
        for choice in [SolverChoice::Sparse, SolverChoice::Dense] {
            let mut serial = ComplexMnaWorkspace::new();
            serial.set_solver(choice);
            serial.bind(&ss, topo);
            let mut want_x = Vec::new();
            let mut want_d = Vec::new();
            for &s in &samples {
                serial.factor_at_or_demote(s, &ss).unwrap();
                want_d.push(serial.det());
                let mut x = vec![Complex::ZERO; dim];
                serial.solve_into(&b, &mut x);
                want_x.push(x);
            }

            let mut batched = ComplexMnaWorkspace::new();
            batched.set_solver(choice);
            batched.bind(&ss, topo);
            let mut xs = vec![Complex::ZERO; samples.len() * dim];
            let mut dets = vec![Complex::ZERO; samples.len()];
            batched
                .solve_det_batch(&samples, &ss, &b, &mut xs, &mut dets)
                .unwrap();
            for (k, (wd, wx)) in want_d.iter().zip(&want_x).enumerate() {
                assert_eq!(dets[k].re.to_bits(), wd.re.to_bits(), "{choice:?} k={k}");
                assert_eq!(dets[k].im.to_bits(), wd.im.to_bits(), "{choice:?} k={k}");
                for (xb, xw) in xs[k * dim..(k + 1) * dim].iter().zip(wx) {
                    assert_eq!(xb.re.to_bits(), xw.re.to_bits(), "{choice:?} k={k}");
                    assert_eq!(xb.im.to_bits(), xw.im.to_bits(), "{choice:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn rebinding_same_topology_reuses_symbolic() {
        let (mut c, op, _) = rc_divider();
        let mut ss = SmallSignal::new();
        let topo = ss.bind(&c, &op, 1e-12).unwrap();
        let mut eng = ComplexMnaWorkspace::new();
        eng.set_solver(SolverChoice::Sparse);
        eng.bind(&ss, topo);
        assert_eq!(eng.symbolic_analyses(), 1);
        // Retune and rebind: values change, pattern does not.
        let (rid, _) = c.find_element("R1").unwrap();
        c.set_value(rid, 2e3);
        let topo = ss.bind(&c, &op, 1e-12).unwrap();
        assert!(!topo);
        eng.bind(&ss, topo);
        assert_eq!(eng.symbolic_analyses(), 1, "retune must not re-analyze");
    }
}
