//! Property-based tests on the circuit simulator: conservation laws and
//! closed-form agreement over randomized networks.

use adc_spice::ac::{ac_sweep, ac_sweep_with, AcWorkspace};
use adc_spice::dc::{dc_operating_point, dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::mosfet::eval_mosfet;
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use proptest::prelude::*;

proptest! {
    /// A randomized resistor ladder matches the closed-form divider chain.
    #[test]
    fn resistor_ladder_matches_closed_form(
        rs in proptest::collection::vec(10.0f64..100e3, 2..6),
        v in 0.5f64..10.0,
    ) {
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.add_vsource("V1", top, Circuit::GROUND, v);
        let mut prev = top;
        let mut nodes = vec![top];
        for (i, &r) in rs.iter().enumerate() {
            let n = c.node(&format!("n{}", i + 1));
            c.add_resistor(&format!("R{i}"), prev, n, r);
            nodes.push(n);
            prev = n;
        }
        // Terminate to ground.
        c.add_resistor("RT", prev, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let total: f64 = rs.iter().sum::<f64>() + 1e3;
        let current = v / total;
        let mut expect = v;
        for (i, &r) in rs.iter().enumerate() {
            expect -= current * r;
            let got = op.voltage(nodes[i + 1]);
            prop_assert!((got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "node {}: {} vs {}", i + 1, got, expect);
        }
    }

    /// KCL: the supply current equals the sum of currents into every
    /// grounded branch (energy bookkeeping of the operating point).
    #[test]
    fn supply_power_is_positive_and_bounded(
        w in 2.0f64..100.0,
        vg in 0.6f64..1.4,
        rd in 1.0f64..50.0,
    ) {
        let p = Process::c025();
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_vsource("VG", g, Circuit::GROUND, vg);
        c.add_resistor("RD", vdd, d, rd * 1e3);
        c.add_mosfet("M1", d, g, Circuit::GROUND, Circuit::GROUND, p.nmos, w * 1e-6, 0.5e-6);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let pw = op.source_power(&c, "VDD").unwrap();
        prop_assert!(pw >= -1e-9, "supply absorbing power: {pw}");
        // Can never exceed VDD²/RD (the resistor fully on).
        prop_assert!(pw <= 3.3 * 3.3 / (rd * 1e3) * 1.001, "{pw}");
        // Drain voltage stays within the rails.
        let vd = op.voltage(d);
        prop_assert!((-0.001..=3.301).contains(&vd), "{vd}");
    }

    /// The MOSFET model's derivatives match finite differences at random
    /// bias points (all regions, both polarities).
    #[test]
    fn mosfet_derivatives_random_bias(
        vgs in -1.5f64..2.5,
        vds in -2.5f64..2.5,
        vbs in -1.0f64..0.0,
        w in 1.0f64..100.0,
        nmos in proptest::bool::ANY,
    ) {
        let p = Process::c025();
        let model = if nmos { p.nmos } else { p.pmos };
        let (vgs, vds, vbs) = if nmos { (vgs, vds, vbs) } else { (-vgs, -vds, -vbs) };
        let h = 1e-6;
        let e = eval_mosfet(&model, w * 1e-6, 0.5e-6, vgs, vds, vbs);
        let dg = (eval_mosfet(&model, w * 1e-6, 0.5e-6, vgs + h, vds, vbs).id
            - eval_mosfet(&model, w * 1e-6, 0.5e-6, vgs - h, vds, vbs).id) / (2.0 * h);
        let dd = (eval_mosfet(&model, w * 1e-6, 0.5e-6, vgs, vds + h, vbs).id
            - eval_mosfet(&model, w * 1e-6, 0.5e-6, vgs, vds - h, vbs).id) / (2.0 * h);
        let scale = 1e-9 + dg.abs().max(dd.abs());
        prop_assert!((e.gm - dg).abs() < 1e-3 * scale, "gm {} vs {}", e.gm, dg);
        prop_assert!((e.gds - dd).abs() < 1e-3 * scale, "gds {} vs {}", e.gds, dd);
    }

    /// Superposition: doubling every independent source doubles every node
    /// voltage in a linear (R-only) network.
    #[test]
    fn linear_network_superposition(
        r1 in 100.0f64..10e3,
        r2 in 100.0f64..10e3,
        r3 in 100.0f64..10e3,
        v in 0.1f64..5.0,
        i in 1e-6f64..1e-3,
    ) {
        let build = |vs: f64, is: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add_vsource("V1", a, Circuit::GROUND, vs);
            c.add_resistor("R1", a, b, r1);
            c.add_resistor("R2", b, Circuit::GROUND, r2);
            c.add_resistor("R3", b, Circuit::GROUND, r3);
            c.add_isource("I1", Circuit::GROUND, b, is);
            (c, b)
        };
        let (c1, b1) = build(v, i);
        let (c2, b2) = build(2.0 * v, 2.0 * i);
        let op1 = dc_operating_point(&c1, &DcOptions::default()).unwrap();
        let op2 = dc_operating_point(&c2, &DcOptions::default()).unwrap();
        let vb1 = op1.voltage(b1);
        let vb2 = op2.voltage(b2);
        prop_assert!((vb2 - 2.0 * vb1).abs() < 1e-6 * (1.0 + vb1.abs()), "{vb1} {vb2}");
    }

    /// A [`DcWorkspace`] reused across solves of different circuits (and
    /// circuit values) is **bit-identical** to the fresh-allocation path —
    /// no state may leak between solves.
    #[test]
    fn dc_workspace_reuse_bit_identical(
        w in 2.0f64..100.0,
        vg in 0.6f64..1.4,
        rds in proptest::collection::vec(1.0f64..50.0, 3..6),
    ) {
        let p = Process::c025();
        let build = |rd_kohm: f64, vg: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let g = c.node("g");
            let d = c.node("d");
            c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
            c.add_vsource("VG", g, Circuit::GROUND, vg);
            c.add_resistor("RD", vdd, d, rd_kohm * 1e3);
            c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
            c.add_mosfet("M1", d, g, Circuit::GROUND, Circuit::GROUND, p.nmos, w * 1e-6, 0.5e-6);
            c
        };
        let mut ws: Option<DcWorkspace> = None;
        for (k, rd) in rds.iter().enumerate() {
            let c = build(*rd, vg + 0.05 * k as f64);
            let fresh = dc_operating_point(&c, &DcOptions::default()).unwrap();
            if ws.is_none() {
                ws = Some(DcWorkspace::new(&c).unwrap());
            }
            let reused =
                dc_operating_point_with(ws.as_mut().unwrap(), &c, &DcOptions::default()).unwrap();
            prop_assert_eq!(fresh.voltages(), reused.voltages(), "solve {}", k);
        }
    }

    /// An [`AcWorkspace`] reused across repeated sweeps is bit-identical to
    /// the fresh-allocation [`ac_sweep`] path.
    #[test]
    fn ac_workspace_reuse_bit_identical(
        r in 100.0f64..100e3,
        cap_pf in 0.1f64..100.0,
        f1 in 1e3f64..1e6,
        f2 in 1e6f64..1e9,
    ) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource_wave("V1", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_resistor("R1", vin, out, r);
        c.add_capacitor("C1", out, Circuit::GROUND, cap_pf * 1e-12);
        let op = dc_operating_point(&c, &DcOptions::default()).unwrap();
        let freqs = [f1, f2, 10.0 * f2];
        let mut ws = AcWorkspace::new(&c, &op).unwrap();
        for _ in 0..3 {
            let fresh = ac_sweep(&c, &op, &freqs).unwrap();
            let reused = ac_sweep_with(&mut ws, &freqs).unwrap();
            for (k, _) in freqs.iter().enumerate() {
                for node in [vin, out] {
                    let a = fresh.voltage(node, k);
                    let b = reused.voltage(node, k);
                    prop_assert!(a == b, "node {node:?} @ {k}: {a} vs {b}");
                }
            }
        }
    }

    /// In-place retuning ([`Circuit::set_value`] /
    /// [`Circuit::set_device_geometry`]) followed by a re-solve on the same
    /// workspace is bit-identical to rebuilding the netlist and solving
    /// fresh.
    #[test]
    fn retune_resolve_matches_rebuild_solve(
        w1 in 2.0f64..100.0,
        w2 in 2.0f64..100.0,
        rd1 in 1.0f64..50.0,
        rd2 in 1.0f64..50.0,
        vg1 in 0.6f64..1.4,
        vg2 in 0.6f64..1.4,
    ) {
        let p = Process::c025();
        let build = |rd_kohm: f64, vg: f64, w_um: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let g = c.node("g");
            let d = c.node("d");
            c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
            c.add_vsource("VG", g, Circuit::GROUND, vg);
            c.add_resistor("RD", vdd, d, rd_kohm * 1e3);
            c.add_mosfet("M1", d, g, Circuit::GROUND, Circuit::GROUND, p.nmos, w_um * 1e-6, 0.5e-6);
            c
        };
        // Build at the first parameter set, solve, then retune in place.
        let mut c = build(rd1, vg1, w1);
        let mut ws = DcWorkspace::new(&c).unwrap();
        dc_operating_point_with(&mut ws, &c, &DcOptions::default()).unwrap();
        let (rd_id, _) = c.find_element("RD").unwrap();
        let (vg_id, _) = c.find_element("VG").unwrap();
        let (m_id, _) = c.find_element("M1").unwrap();
        c.set_value(rd_id, rd2 * 1e3);
        c.set_value(vg_id, vg2);
        c.set_device_geometry(m_id, w2 * 1e-6, 0.5e-6);
        let retuned = dc_operating_point_with(&mut ws, &c, &DcOptions::default()).unwrap();
        // Reference: rebuild the netlist at the second parameter set.
        let c_ref = build(rd2, vg2, w2);
        let rebuilt = dc_operating_point(&c_ref, &DcOptions::default()).unwrap();
        prop_assert_eq!(retuned.voltages(), rebuilt.voltages());
        prop_assert_eq!(c.elements(), c_ref.elements());
    }
}

/// Randomized cascode-OTA testbench, large enough (MNA dim ≥ 9) that the
/// automatic engine selection takes the sparse path.
fn random_ota(w1: f64, w2: f64, rl: f64, cl: f64, vb1: f64, vb2: f64) -> Circuit {
    let p = Process::c025();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let g = c.node("g");
    let mid = c.node("mid");
    let out = c.node("out");
    let np = c.node("np");
    let b1 = c.node("vb1");
    let b2 = c.node("vb2");
    c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
    c.add_vsource("VB1", b1, Circuit::GROUND, vb1);
    c.add_vsource("VB2", b2, Circuit::GROUND, vb2);
    c.add_vsource_wave("VG", g, Circuit::GROUND, 0.9.into(), 1.0);
    // NMOS input + cascode.
    c.add_mosfet(
        "M1",
        mid,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        p.nmos,
        w1 * 1e-6,
        0.5e-6,
    );
    c.add_mosfet(
        "M2",
        out,
        b2,
        mid,
        Circuit::GROUND,
        p.nmos,
        w1 * 1e-6,
        0.5e-6,
    );
    // PMOS load branch.
    c.add_mosfet("M3", out, b1, np, vdd, p.pmos, w2 * 1e-6, 0.5e-6);
    c.add_mosfet("M4", np, b1, vdd, vdd, p.pmos, w2 * 1e-6, 0.5e-6);
    c.add_resistor("RL", out, Circuit::GROUND, rl * 1e3);
    c.add_capacitor("CL", out, Circuit::GROUND, cl * 1e-12);
    c.add_capacitor("CM", mid, Circuit::GROUND, 0.2e-12);
    c
}

proptest! {
    /// Sparse and dense DC Newton engines land on the same operating point
    /// (≤ 1e-9 relative) across randomized OTA testbenches.
    #[test]
    fn dc_sparse_matches_dense_oracle(
        w1 in 2.0f64..40.0,
        w2 in 2.0f64..40.0,
        rl in 5.0f64..200.0,
        vb1 in 1.6f64..2.4,
        vb2 in 1.2f64..1.8,
    ) {
        use adc_spice::linearize::SolverChoice;
        let c = random_ota(w1, w2, rl, 1.0, vb1, vb2);
        // Converge well below the comparison tolerance so the two engines'
        // independent Newton paths cannot differ by more than rounding.
        let opts = DcOptions { vtol: 1e-12, itol: 1e-12, ..DcOptions::default() };
        let mut dense = DcWorkspace::with_solver(&c, SolverChoice::Dense).unwrap();
        let mut sparse = DcWorkspace::with_solver(&c, SolverChoice::Sparse).unwrap();
        prop_assert!(!dense.is_sparse() && sparse.is_sparse());
        let od = dc_operating_point_with(&mut dense, &c, &opts);
        let os = dc_operating_point_with(&mut sparse, &c, &opts);
        let (od, os) = match (od, os) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(_), Err(_)) => return Ok(()), // both reject: still agreeing
            (a, b) => {
                prop_assert!(false, "engines diverged: {:?} vs {:?}", a.is_ok(), b.is_ok());
                unreachable!()
            }
        };
        for node in 0..c.node_count() {
            let n = adc_spice::netlist::NodeId::from_index(node);
            let (vd, vs) = (od.voltage(n), os.voltage(n));
            prop_assert!((vd - vs).abs() <= 1e-9 * vd.abs().max(1.0),
                "node {node}: dense {vd} vs sparse {vs}");
        }
    }

    /// Sparse and dense AC engines produce the same phasors (≤ 1e-9
    /// relative) across randomized OTA testbenches and frequencies.
    #[test]
    fn ac_sparse_matches_dense_oracle(
        w1 in 2.0f64..40.0,
        w2 in 2.0f64..40.0,
        rl in 5.0f64..200.0,
        cl in 0.2f64..5.0,
        fdec in 3.0f64..9.0,
    ) {
        use adc_spice::linearize::SolverChoice;
        let c = random_ota(w1, w2, rl, cl, 2.0, 1.5);
        let op = match dc_operating_point(&c, &DcOptions::default()) {
            Ok(op) => op,
            Err(_) => return Ok(()),
        };
        let freqs = [10f64.powf(fdec) * 0.5, 10f64.powf(fdec)];
        let mut dense = AcWorkspace::with_solver(&c, &op, SolverChoice::Dense).unwrap();
        let mut sparse = AcWorkspace::with_solver(&c, &op, SolverChoice::Sparse).unwrap();
        prop_assert!(!dense.is_sparse() && sparse.is_sparse());
        let sd = ac_sweep_with(&mut dense, &freqs).unwrap();
        let ss = ac_sweep_with(&mut sparse, &freqs).unwrap();
        for node in 0..c.node_count() {
            let n = adc_spice::netlist::NodeId::from_index(node);
            for (k, f) in freqs.iter().enumerate() {
                let (vd, vs) = (sd.voltage(n, k), ss.voltage(n, k));
                prop_assert!((vd - vs).norm() <= 1e-9 * vd.norm().max(1e-12),
                    "node {node} @ {f} Hz: dense {vd:?} vs sparse {vs:?}");
            }
        }
    }
}

/// The automatic engine selection picks sparse for the OTA-sized
/// testbench, and retuning element values reuses the DC workspace without
/// rebuilding (the symbolic factorization lives as long as the topology).
#[test]
fn auto_selection_and_retune_reuse() {
    let mut c = random_ota(10.0, 20.0, 50.0, 1.0, 2.0, 1.5);
    let mut ws = DcWorkspace::new(&c).unwrap();
    assert!(ws.is_sparse(), "OTA testbench should auto-select sparse");
    let opts = DcOptions::default();
    let op1 = dc_operating_point_with(&mut ws, &c, &opts).unwrap();
    // Retune a value in place: same topology, same workspace.
    let (rid, _) = c.find_element("RL").unwrap();
    c.set_value(rid, 80e3);
    assert!(ws.matches(&c));
    let op2 = dc_operating_point_with(&mut ws, &c, &opts).unwrap();
    assert!(ws.is_sparse(), "retune keeps the sparse engine");
    let out = c.find_node("out").unwrap();
    assert!(op1.voltage(out).is_finite() && op2.voltage(out).is_finite());
    // A fresh workspace on the retuned circuit agrees with the reused one.
    let fresh = dc_operating_point(&c, &opts).unwrap();
    for node in 0..c.node_count() {
        let n = adc_spice::netlist::NodeId::from_index(node);
        assert!(
            (op2.voltage(n) - fresh.voltage(n)).abs() <= 1e-9 * fresh.voltage(n).abs().max(1.0),
            "node {node}"
        );
    }
}

/// Rewiring an element (same node/element counts, same branch pattern)
/// must rebuild a reused workspace — the sparse stamp slot maps are
/// wiring-specific, so a stale map would silently assemble a wrong
/// Jacobian. Regression test for the topology fingerprint.
#[test]
fn rewired_circuit_rebuilds_workspace() {
    let build = |wired_to_out: bool| {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("V1", vin, Circuit::GROUND, 3.0);
        c.add_resistor("R1", vin, mid, 1e3);
        // Same element list length and kinds; only R2's wiring differs.
        if wired_to_out {
            c.add_resistor("R2", mid, out, 1e3);
        } else {
            c.add_resistor("R2", mid, Circuit::GROUND, 1e3);
        }
        c.add_resistor("R3", out, Circuit::GROUND, 2e3);
        c.add_resistor("R4", mid, out, 4e3);
        c.add_resistor("R5", vin, out, 8e3);
        c.add_resistor("R6", mid, Circuit::GROUND, 16e3);
        c.add_resistor("R7", vin, mid, 32e3);
        c.add_resistor("R8", out, Circuit::GROUND, 64e3);
        c.add_resistor("R9", vin, out, 128e3);
        (c, out)
    };
    let (a, _) = build(true);
    let (b, out_b) = build(false);
    assert_ne!(a.topology_fingerprint(), b.topology_fingerprint());
    let mut ws = DcWorkspace::new(&a).unwrap();
    dc_operating_point_with(&mut ws, &a, &DcOptions::default()).unwrap();
    assert!(!ws.matches(&b), "rewired circuit must not reuse slot maps");
    // Solving the rewired circuit through the same workspace matches a
    // fresh solve.
    let reused = dc_operating_point_with(&mut ws, &b, &DcOptions::default()).unwrap();
    let fresh = dc_operating_point(&b, &DcOptions::default()).unwrap();
    assert!((reused.voltage(out_b) - fresh.voltage(out_b)).abs() < 1e-12);
    // Value retuning, by contrast, keeps the fingerprint stable.
    let (mut a2, _) = build(true);
    let (rid, _) = a2.find_element("R2").unwrap();
    a2.set_value(rid, 5e3);
    assert_eq!(a.topology_fingerprint(), a2.topology_fingerprint());
}
