//! Property-based tests on the transient engines: the adaptive stepper
//! against the fixed-step oracle, workspace-reuse determinism, and
//! sparse-vs-dense agreement on randomized OTA netlists.

use adc_spice::netlist::{Circuit, ClockPhase, NodeId};
use adc_spice::process::Process;
use adc_spice::tran::{
    transient, transient_adaptive, transient_with, Clock, TimeStepConfig, TranOptions,
    TranWorkspace,
};
use adc_spice::waveform::Waveform;
use adc_spice::SolverChoice;
use proptest::prelude::*;

/// RC low-pass driven by a voltage step.
fn rc_fixture(r: f64, c_f: f64) -> (Circuit, NodeId) {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let out = c.node("out");
    c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
    c.add_resistor("R1", vin, out, r);
    c.add_capacitor("C1", out, Circuit::GROUND, c_f);
    (c, out)
}

/// Switched-cap track-and-hold: φ1 tracks the source, φ2 floats the cap.
fn switched_cap_fixture(ron: f64, ch: f64) -> (Circuit, NodeId) {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let hold = c.node("hold");
    c.add_vsource("V1", vin, Circuit::GROUND, 1.0);
    c.add_switch("S1", vin, hold, ron, 1e12, ClockPhase::Phi1, false);
    c.add_capacitor("CH", hold, Circuit::GROUND, ch);
    (c, hold)
}

/// Single-ended common-source OTA stage with load cap and a sampling
/// switch — the smallest netlist exercising every transient stamp kind
/// (MOSFET, R, C, switch, sources).
fn ota_fixture(w_um: f64, rd_kohm: f64, cl_pf: f64) -> (Circuit, NodeId) {
    let p = Process::c025();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let g = c.node("g");
    let d = c.node("d");
    let out = c.node("out");
    c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
    c.add_vsource_wave(
        "VG",
        g,
        Circuit::GROUND,
        Waveform::Pulse {
            v0: 0.8,
            v1: 1.1,
            delay: 20e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 1.0,
            period: 0.0,
        },
        0.0,
    );
    c.add_resistor("RD", vdd, d, rd_kohm * 1e3);
    c.add_mosfet(
        "M1",
        d,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        p.nmos,
        w_um * 1e-6,
        0.5e-6,
    );
    c.add_switch("S1", d, out, 200.0, 1e12, ClockPhase::Phi1, true);
    c.add_capacitor("CL", out, Circuit::GROUND, cl_pf * 1e-12);
    (c, out)
}

proptest! {
    /// The adaptive stepper lands on the fixed-step oracle's trajectory
    /// within the LTE tolerance budget on randomized RC fixtures.
    #[test]
    fn adaptive_matches_fixed_oracle_on_rc(
        r in 1.0f64..100.0,
        cap in 0.1f64..10.0,
    ) {
        let (c, out) = rc_fixture(r * 1e3, cap * 1e-9);
        let tau = r * 1e3 * cap * 1e-9;
        let opts = TranOptions {
            tstop: 5.0 * tau,
            dt: tau / 500.0,
            ..Default::default()
        };
        let oracle = transient(&c, &opts).unwrap();
        let mut ws = TranWorkspace::new(&c).unwrap();
        let cfg = TimeStepConfig {
            dt_init: tau / 500.0,
            dt_min: tau / 50_000.0,
            dt_max: tau / 2.0,
            ..Default::default()
        };
        let adaptive = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        for frac in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let want = oracle.sample_at(out, t);
            let got = adaptive.sample_at(out, t);
            prop_assert!((got - want).abs() < 5e-3,
                "v({frac}τ): adaptive {got} vs oracle {want}");
        }
        prop_assert!(adaptive.stats().accepted < oracle.stats().accepted,
            "adaptive took {} steps, oracle {}",
            adaptive.stats().accepted, oracle.stats().accepted);
    }

    /// Same agreement on clocked switched-cap fixtures: the held voltage
    /// after each phase matches the oracle.
    #[test]
    fn adaptive_matches_fixed_oracle_on_switched_cap(
        ron in 50.0f64..500.0,
        ch in 0.5f64..5.0,
    ) {
        let (c, hold) = switched_cap_fixture(ron, ch * 1e-12);
        let clk = Clock { freq: 1e6, nonoverlap: 10e-9 };
        let opts = TranOptions {
            tstop: 2e-6,
            dt: 0.5e-9,
            clock: Some(clk),
            ..Default::default()
        };
        let oracle = transient(&c, &opts).unwrap();
        let mut ws = TranWorkspace::new(&c).unwrap();
        let cfg = TimeStepConfig::for_clock(&clk);
        let adaptive = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        for probe in [0.4e-6, 0.9e-6, 1.4e-6, 1.9e-6] {
            let want = oracle.sample_at(hold, probe);
            let got = adaptive.sample_at(hold, probe);
            prop_assert!((got - want).abs() < 5e-3,
                "v({probe:e}): adaptive {got} vs oracle {want}");
        }
    }

    /// Two runs through one reused workspace are bit-identical to runs
    /// through fresh workspaces — no state leaks between runs.
    #[test]
    fn workspace_reuse_bit_identity(
        r in 1.0f64..100.0,
        cap in 0.1f64..10.0,
    ) {
        let (c, _) = rc_fixture(r * 1e3, cap * 1e-9);
        let tau = r * 1e3 * cap * 1e-9;
        let opts = TranOptions {
            tstop: 3.0 * tau,
            dt: tau / 200.0,
            ..Default::default()
        };
        let cfg = TimeStepConfig {
            dt_init: tau / 200.0,
            dt_min: tau / 20_000.0,
            dt_max: tau / 2.0,
            ..Default::default()
        };
        let mut ws = TranWorkspace::new(&c).unwrap();
        let f1 = transient_with(&mut ws, &c, &opts).unwrap();
        let a1 = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        let f2 = transient_with(&mut ws, &c, &opts).unwrap();
        let a2 = transient_adaptive(&mut ws, &c, &opts, &cfg).unwrap();
        let mut fresh = TranWorkspace::new(&c).unwrap();
        let f3 = transient_with(&mut fresh, &c, &opts).unwrap();
        let mut fresh2 = TranWorkspace::new(&c).unwrap();
        let a3 = transient_adaptive(&mut fresh2, &c, &opts, &cfg).unwrap();
        prop_assert!(f1.times() == f2.times() && f1.times() == f3.times());
        prop_assert!(a1.times() == a2.times() && a1.times() == a3.times());
        let node = NodeId::from_index(1);
        for k in 0..f1.len() {
            prop_assert!(f1.voltage_at(node, k) == f2.voltage_at(node, k));
            prop_assert!(f1.voltage_at(node, k) == f3.voltage_at(node, k));
        }
        for k in 0..a1.len() {
            prop_assert!(a1.voltage_at(node, k) == a2.voltage_at(node, k));
            prop_assert!(a1.voltage_at(node, k) == a3.voltage_at(node, k));
        }
    }

    /// Forced-sparse and forced-dense workspace engines agree on
    /// randomized clocked OTA netlists, fixed-step and adaptive (the
    /// quantized LTE controller keeps the step sequences in lockstep).
    #[test]
    fn sparse_matches_dense_on_randomized_ota(
        w in 5.0f64..80.0,
        rd in 2.0f64..40.0,
        cl in 0.2f64..4.0,
    ) {
        let (c, out) = ota_fixture(w, rd, cl);
        let clk = Clock { freq: 5e6, nonoverlap: 4e-9 };
        let opts = TranOptions {
            tstop: 400e-9,
            dt: 0.5e-9,
            clock: Some(clk),
            ..Default::default()
        };
        let mut dense = TranWorkspace::with_solver(&c, SolverChoice::Dense).unwrap();
        let mut sparse = TranWorkspace::with_solver(&c, SolverChoice::Sparse).unwrap();
        prop_assert!(!dense.is_sparse());
        prop_assert!(sparse.is_sparse());
        let rd_fixed = transient_with(&mut dense, &c, &opts).unwrap();
        let rs_fixed = transient_with(&mut sparse, &c, &opts).unwrap();
        prop_assert!(rd_fixed.len() == rs_fixed.len());
        for k in 0..rd_fixed.len() {
            let (a, b) = (rd_fixed.voltage_at(out, k), rs_fixed.voltage_at(out, k));
            prop_assert!((a - b).abs() < 1e-6, "fixed k={k}: dense {a} vs sparse {b}");
        }
        let cfg = TimeStepConfig::for_clock(&clk);
        let ra = transient_adaptive(&mut dense, &c, &opts, &cfg).unwrap();
        let rb = transient_adaptive(&mut sparse, &c, &opts, &cfg).unwrap();
        prop_assert!(ra.len() == rb.len(),
            "step sequences diverged: dense {} samples, sparse {}", ra.len(), rb.len());
        for k in 0..ra.len() {
            prop_assert!(ra.times()[k] == rb.times()[k], "time axis diverged at {k}");
            let (a, b) = (ra.voltage_at(out, k), rb.voltage_at(out, k));
            prop_assert!((a - b).abs() < 1e-6, "adaptive k={k}: dense {a} vs sparse {b}");
        }
    }
}
