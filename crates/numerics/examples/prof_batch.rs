//! Micro-profile of the batched factor legs on a synthetic MNA-like
//! system sized to match the chain testbench (dim ~124, nnz ~480).
//!
//! Run with `cargo run --release -p adc-numerics --example prof_batch`.

use adc_numerics::complex::Complex;
use adc_numerics::sparse::{CSparseLuBatch, CsrPattern, Symbolic};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn time_us<F: FnMut()>(label: &str, reps: usize, mut f: F) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("{label:40} {us:10.2} us");
    us
}

fn main() {
    let n = 124usize;
    // Tridiagonal + a few long-range couplings: similar density to the
    // chain testbench MNA.
    let mut entries: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        entries.push((i, i));
        if i + 1 < n {
            entries.push((i, i + 1));
            entries.push((i + 1, i));
        }
        if i + 7 < n {
            entries.push((i, i + 7));
        }
        if i >= 11 {
            entries.push((i, i - 11));
        }
    }
    let (pattern, slots) = CsrPattern::from_entries(n, &entries);
    let sym = Symbolic::analyze(&pattern).unwrap();
    println!(
        "pattern nnz {} factor nnz {} dim {}",
        pattern.nnz(),
        sym.factor_nnz(),
        sym.dim()
    );
    let mut base = vec![Complex::ZERO; pattern.nnz()];
    for (k, &slot) in slots.iter().enumerate() {
        let (r, c) = entries[k];
        let v = if r == c {
            4.0
        } else {
            -0.8 - 0.01 * (k % 7) as f64
        };
        base[slot] += Complex::from_real(v);
    }
    // Caps on the diagonal slots.
    let cap_slots: Vec<usize> = (0..n)
        .map(|i| slots[entries.iter().position(|&(r, c)| r == i && c == i).unwrap()])
        .collect();
    let cap_vals: Vec<f64> = (0..n).map(|i| 1e-13 * (1.0 + (i % 5) as f64)).collect();
    let s8: Vec<Complex> = (0..8)
        .map(|i| Complex::from_polar(1e8, 0.1 + 0.3 * i as f64))
        .collect();
    let mut batch = CSparseLuBatch::new(Arc::clone(&sym));
    for k in [1usize, 2, 4, 8] {
        time_us(&format!("factor_scaled ({k} lanes)"), 5000, || {
            batch
                .factor_scaled(&base, &cap_slots, &cap_vals, black_box(&s8[..k]))
                .unwrap();
        });
    }
    let b: Vec<Complex> = (0..n)
        .map(|i| Complex::new(0.1 * i as f64, -0.05))
        .collect();
    let mut xs = vec![Complex::ZERO; 8 * n];
    let mut dets = vec![Complex::ZERO; 8];
    time_us("solve_into (8 lanes)", 5000, || {
        batch.solve_into(&b, &mut xs);
    });
    time_us("det_into (8 lanes)", 5000, || {
        batch.det_into(&mut dets);
    });
}
