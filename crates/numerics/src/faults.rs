//! Deterministic fault injection (compiled only with the `faults` feature).
//!
//! Chaos testing for the synthesis flow needs failures that are **exactly
//! reproducible**: the same [`FaultPlan`] must trip the same site, in the
//! same block, on the same attempt, regardless of thread count or timing.
//! To get that, injection is keyed by *logical* coordinates — a site name
//! (where in the stack) plus a scope string (which block/attempt is
//! currently executing) — never by wall-clock or global call order, which
//! would race across worker threads.
//!
//! Layers that host a site call [`check`] with their site constant; the
//! flow executor wraps each block attempt in [`with_scope`] so per-scope
//! occurrence counters are incremented single-threaded. When the feature is
//! off this module is absent and call sites compile to nothing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// DC operating-point solve (cold or warm) in `adc-spice`.
pub const SITE_DC_SOLVE: &str = "dc_solve";
/// Transient analysis (fixed or adaptive) in `adc-spice`.
pub const SITE_TRAN_SOLVE: &str = "tran_solve";
/// `Synthesizer::try_execute` entry in `adc-synth`.
pub const SITE_SYNTH_EXECUTE: &str = "synth_execute";
/// `BlockCache` commit in `adc-topopt` (corruption sentinel).
pub const SITE_CACHE_COMMIT: &str = "cache_commit";
/// Executor task body in `adc-topopt`.
pub const SITE_EXECUTOR_TASK: &str = "executor_task";

/// What a tripped fault site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Solver reports non-convergence (typed error, residual = ∞).
    FailConvergence,
    /// The site panics with a recognizable payload.
    Panic,
    /// The site reports an expired deadline (typed timeout).
    Timeout,
    /// The site corrupts the datum it was about to produce/commit.
    Corrupt,
}

/// One injection rule: trip `action` at `site`, the `nth` time that site is
/// reached within a scope containing `scope_contains` (or any scope when
/// `None`). Each rule fires exactly once.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Site constant (e.g. [`SITE_DC_SOLVE`]).
    pub site: &'static str,
    /// Substring the active scope must contain, `None` = any scope.
    pub scope_contains: Option<String>,
    /// 0-based occurrence index within the matching (site, scope) pair.
    pub nth: usize,
    /// What to do when the rule trips.
    pub action: FaultAction,
}

impl FaultRule {
    /// Rule tripping the first occurrence of `site` in any scope containing
    /// `scope` (the common single-fault chaos case).
    pub fn first(site: &'static str, scope: &str, action: FaultAction) -> Self {
        FaultRule {
            site,
            scope_contains: Some(scope.to_string()),
            nth: 0,
            action,
        }
    }

    /// Rule tripping the first occurrence of `site` regardless of scope.
    pub fn anywhere(site: &'static str, action: FaultAction) -> Self {
        FaultRule {
            site,
            scope_contains: None,
            nth: 0,
            action,
        }
    }
}

/// A reproducible chaos scenario: a seed (recorded for the experiment log;
/// rules are matched deterministically, the seed only names the scenario)
/// plus the rules to install.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scenario identifier, recorded in EXPERIMENTS.md §8 protocols.
    pub seed: u64,
    /// Injection rules; each fires at most once.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Plan with a single rule.
    pub fn single(seed: u64, rule: FaultRule) -> Self {
        FaultPlan {
            seed,
            rules: vec![rule],
        }
    }
}

struct ArmedRule {
    rule: FaultRule,
    fired: bool,
}

struct Registry {
    rules: Vec<ArmedRule>,
    /// Occurrence counters keyed by (site, scope).
    counts: std::collections::BTreeMap<(&'static str, String), usize>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

thread_local! {
    static SCOPE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Installs a plan, replacing any previous one and resetting all counters.
pub fn install(plan: FaultPlan) {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    *reg = Some(Registry {
        rules: plan
            .rules
            .into_iter()
            .map(|rule| ArmedRule { rule, fired: false })
            .collect(),
        counts: std::collections::BTreeMap::new(),
    });
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the installed plan; all subsequent [`check`] calls are no-ops.
pub fn clear() {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    *reg = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Runs `f` with `scope` pushed onto this thread's scope stack. The flow
/// executor wraps each block attempt in a scope like
/// `"m=3,a=2.0#attempt0"`, making per-scope counters deterministic: every
/// attempt runs single-threaded inside its own scope.
pub fn with_scope<T>(scope: &str, f: impl FnOnce() -> T) -> T {
    SCOPE.with(|s| s.borrow_mut().push(scope.to_string()));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

fn current_scope() -> String {
    SCOPE.with(|s| s.borrow().join("/"))
}

/// Called by instrumented layers: returns the action to take if an armed
/// rule trips at this site in the current scope. Fast path (no plan
/// installed) is a single relaxed atomic load.
pub fn check(site: &'static str) -> Option<FaultAction> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let scope = current_scope();
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let reg = guard.as_mut()?;
    let n = reg.counts.entry((site, scope.clone())).or_insert(0);
    let occurrence = *n;
    *n += 1;
    for armed in reg.rules.iter_mut() {
        if armed.fired || armed.rule.site != site || armed.rule.nth != occurrence {
            continue;
        }
        let scope_ok = match &armed.rule.scope_contains {
            None => true,
            Some(needle) => scope.contains(needle.as_str()),
        };
        if scope_ok {
            armed.fired = true;
            return Some(armed.rule.action);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that install plans must not
    /// interleave; serialize them with a lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn no_plan_means_no_faults() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert_eq!(check(SITE_DC_SOLVE), None);
    }

    #[test]
    fn rule_fires_once_at_matching_site_and_scope() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::single(
            1,
            FaultRule::first(SITE_DC_SOLVE, "m=3", FaultAction::FailConvergence),
        ));
        // Wrong scope: nothing.
        let miss = with_scope("m=2,a=2.0#attempt0", || check(SITE_DC_SOLVE));
        assert_eq!(miss, None);
        // Matching scope: fires exactly once.
        let (first, second) = with_scope("m=3,a=2.0#attempt0", || {
            (check(SITE_DC_SOLVE), check(SITE_DC_SOLVE))
        });
        assert_eq!(first, Some(FaultAction::FailConvergence));
        assert_eq!(second, None);
        clear();
    }

    #[test]
    fn nth_occurrence_counts_per_scope() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::single(
            2,
            FaultRule {
                site: SITE_TRAN_SOLVE,
                scope_contains: None,
                nth: 1,
                action: FaultAction::Timeout,
            },
        ));
        let hits = with_scope("blockA", || {
            (0..3).map(|_| check(SITE_TRAN_SOLVE)).collect::<Vec<_>>()
        });
        assert_eq!(hits, vec![None, Some(FaultAction::Timeout), None]);
        clear();
    }

    #[test]
    fn scopes_nest_and_pop() {
        let _g = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::single(
            3,
            FaultRule::first(SITE_SYNTH_EXECUTE, "outer/inner", FaultAction::Panic),
        ));
        let outer_only = with_scope("outer", || check(SITE_SYNTH_EXECUTE));
        assert_eq!(outer_only, None);
        let nested = with_scope("outer", || {
            with_scope("inner", || check(SITE_SYNTH_EXECUTE))
        });
        assert_eq!(nested, Some(FaultAction::Panic));
        clear();
    }
}
