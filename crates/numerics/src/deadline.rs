//! Cooperative wall-clock deadlines.
//!
//! A [`Deadline`] is a cheap, copyable "stop by this instant" token that the
//! iterative kernels (Newton loops, transient stepping, annealing) check at
//! iteration granularity. It is purely observational: a run that never
//! expires takes exactly the same path as one with no deadline at all, so
//! the determinism contract (bit-identical trajectories across thread
//! counts) is unaffected by merely *carrying* a deadline.
//!
//! The default is [`Deadline::none`] — unlimited — and checks against an
//! unlimited deadline are a single `Option` discriminant test, so hot loops
//! pay essentially nothing when no budget is configured.

use std::time::{Duration, Instant};

/// A cooperative wall-clock budget: either unlimited or "stop at instant".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: [`Deadline::expired`] is always `false`.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// Deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// Deadline at a specific instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// The tighter of two deadlines (used to combine a per-run budget with a
    /// per-block budget). Unlimited loses to any finite deadline.
    pub fn earliest(self, other: Deadline) -> Self {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }

    /// `true` when no finite budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.at.is_none()
    }

    /// Has the budget run out? Unlimited deadlines never expire.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.at {
            None => false,
            Some(at) => Instant::now() >= at,
        }
    }

    /// Remaining budget; `None` when unlimited, zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Remaining budget in seconds; `None` when unlimited. Expired
    /// deadlines report `0.0` rather than going negative so the value can
    /// be stored as slack without sign games.
    pub fn slack_seconds(&self) -> Option<f64> {
        self.remaining().map(|d| d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unlimited());
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.slack_seconds().is_none());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::within(Duration::from_secs(0));
        assert!(!d.is_unlimited());
        assert!(d.expired());
        assert_eq!(d.slack_seconds(), Some(0.0));
    }

    #[test]
    fn generous_budget_not_yet_expired() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.slack_seconds().unwrap() > 3000.0);
    }

    #[test]
    fn earliest_picks_the_tighter_deadline() {
        let soon = Deadline::within(Duration::from_millis(1));
        let late = Deadline::within(Duration::from_secs(3600));
        let combined = late.earliest(soon);
        assert!(combined.remaining().unwrap() <= Duration::from_millis(1));
        // Unlimited loses to any finite deadline, in either order.
        assert!(!Deadline::none().earliest(soon).is_unlimited());
        assert!(!soon.earliest(Deadline::none()).is_unlimited());
        assert!(Deadline::none().earliest(Deadline::none()).is_unlimited());
    }

    #[test]
    fn default_is_unlimited() {
        assert!(Deadline::default().is_unlimited());
    }
}
