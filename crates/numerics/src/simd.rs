//! Explicit SIMD kernels behind a single runtime-detected dispatch point.
//!
//! The evaluation hot path — stamp replay ([`crate::sparse::CsrMatrix::scatter_add`],
//! [`crate::sparse::CCsrMatrix::scatter_add_scaled`],
//! [`crate::linalg::Matrix::scatter_add`]) and the LU inner row updates
//! (dense [`crate::linalg::Lu`]/[`crate::linalg::CLu`], sparse
//! `factor_core`) — was deliberately shaped as fixed-width 4-lane chunks so
//! intrinsics could drop in without changing accumulation order. This module
//! is that drop-in: AVX2 kernels on `x86_64`, NEON on `aarch64`, and the
//! original scalar 4-lane loops everywhere else (and as the bit-compared
//! oracle under `ADC_FORCE_SCALAR=1`).
//!
//! # Bit-identity contract
//!
//! Optimizer trajectories must not fork between machines or backends, so
//! every kernel here produces **bit-identical** results to its scalar
//! counterpart:
//!
//! - No FMA anywhere. The scalar code rounds each multiply and each
//!   add/subtract separately; the SIMD kernels use elementwise
//!   multiply/add/subtract, which round identically per IEEE-754 lane.
//! - Complex products follow [`Complex`]'s exact expression order
//!   (`re·re − im·im`, `re·im + im·re`) using one rounding per `·`, `+`,
//!   `−` — `_mm256_addsub_pd` / a sign-flipped NEON add give the same
//!   single-rounded results as the scalar `−`/`+`.
//! - Scattered accumulation (`out[slot] += v` with possibly repeated
//!   slots) is **inherently order-dependent**, and no AVX2/NEON scatter
//!   instruction exists anyway, so the scattered adds always run in scalar
//!   program order on every backend; SIMD only prepares the products
//!   feeding them. `scatter_add`/`scatter_add_uniform` (pure `f64`
//!   scatters with no arithmetic to hoist) therefore use the shared scalar
//!   kernel on all backends by design.
//!
//! # Dispatch
//!
//! [`backend`] detects the instruction set once (`is_x86_feature_detected!`
//! cached in a [`OnceLock`]) and honours the `ADC_FORCE_SCALAR` environment
//! variable (any non-empty value other than `0` forces the scalar oracle) —
//! the CI leg that keeps the fallback path from rotting.

use crate::complex::Complex;
use std::sync::OnceLock;

/// Maximum lane count of the batched factor/solve workspaces
/// ([`crate::sparse::CSparseLuBatch`]): wide enough to fill an AVX2 vector
/// twice, small enough that a chain-sized factor batch stays cache-resident.
pub const MAX_LANES: usize = 8;

/// The instruction-set backend the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar 4-lane loops — the bit-compared oracle.
    Scalar,
    /// AVX2 256-bit kernels (x86_64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// NEON 128-bit kernels (aarch64 baseline).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

static BACKEND: OnceLock<Backend> = OnceLock::new();

fn detect() -> Backend {
    if std::env::var_os("ADC_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

/// The active backend, detected once per process (`ADC_FORCE_SCALAR`
/// respected at first use).
#[inline]
pub fn backend() -> Backend {
    *BACKEND.get_or_init(detect)
}

/// Human-readable backend name (benchmark/CI reporting).
pub fn backend_name() -> &'static str {
    match backend() {
        Backend::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => "avx2",
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => "neon",
    }
}

/// Lane count a `k`-sample batch should be padded to (by duplicating a
/// sample) so the batched row kernels dispatch to full vector groups
/// instead of the scalar fallback. Lanes compute independently, so
/// padding never changes a real lane's bits. Returns `k` unchanged when
/// padding would not pay: tiny batches (`k < 3`) are cheaper scalar, and
/// the scalar backend gains nothing from alignment.
pub fn padded_lanes(k: usize) -> usize {
    debug_assert!((1..=MAX_LANES).contains(&k));
    if k < 3 {
        return k;
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => k.next_multiple_of(4).min(MAX_LANES),
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => k.next_multiple_of(2).min(MAX_LANES),
        _ => k,
    }
}

// ---------------------------------------------------------------------------
// Scattered stamp replay.
// ---------------------------------------------------------------------------

/// Accumulates `vals[k]` into `out[slots[k]]` for every `k`, in order —
/// the one shared scatter kernel behind `Matrix::scatter_add`,
/// `CsrMatrix::scatter_add` and (product formation aside)
/// `CCsrMatrix::scatter_add_scaled`. Scattered `+=` with repeatable slots
/// is order-dependent and has no AVX2/NEON scatter instruction, so this
/// runs the scalar 4-lane loop on every backend; it exists here so the
/// replay shape lives in exactly one place.
///
/// # Panics
/// Panics if `slots` and `vals` differ in length or a slot is out of range.
pub fn scatter_add(out: &mut [f64], slots: &[usize], vals: &[f64]) {
    assert_eq!(slots.len(), vals.len(), "slot/value length mismatch");
    let mut s4 = slots.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    for (s, v) in (&mut s4).zip(&mut v4) {
        out[s[0]] += v[0];
        out[s[1]] += v[1];
        out[s[2]] += v[2];
        out[s[3]] += v[3];
    }
    for (&s, &v) in s4.remainder().iter().zip(v4.remainder()) {
        out[s] += v;
    }
}

/// Accumulates the constant `v` into every `out[slot]` (the g_min
/// node-diagonal replay), chunked like [`scatter_add`].
///
/// # Panics
/// Panics if a slot is out of range.
pub fn scatter_add_uniform(out: &mut [f64], slots: &[usize], v: f64) {
    let mut s4 = slots.chunks_exact(4);
    for s in &mut s4 {
        out[s[0]] += v;
        out[s[1]] += v;
        out[s[2]] += v;
        out[s[3]] += v;
    }
    for &s in s4.remainder() {
        out[s] += v;
    }
}

/// Accumulates `s · vals[k]` into `out[slots[k]]` for every `k` — the
/// per-sample replay of `s`-scaled capacitive entries. The complex products
/// (`s.re·v`, `s.im·v`) are formed SIMD-wide per 4-lane block; the scattered
/// accumulation stays in scalar program order (slots may repeat).
///
/// # Panics
/// Panics if `slots` and `vals` differ in length or a slot is out of range.
pub fn scatter_add_scaled(out: &mut [Complex], slots: &[usize], vals: &[f64], s: Complex) {
    assert_eq!(slots.len(), vals.len(), "slot/value length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::scatter_add_scaled(out, slots, vals, s) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::scatter_add_scaled(out, slots, vals, s),
        Backend::Scalar => scatter_add_scaled_scalar(out, slots, vals, s),
    }
}

/// Scalar oracle for [`scatter_add_scaled`] — the original 4-lane kernel,
/// kept verbatim.
pub fn scatter_add_scaled_scalar(out: &mut [Complex], slots: &[usize], vals: &[f64], s: Complex) {
    let mut s4 = slots.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    for (sl, v) in (&mut s4).zip(&mut v4) {
        let prod = [s * v[0], s * v[1], s * v[2], s * v[3]];
        out[sl[0]] += prod[0];
        out[sl[1]] += prod[1];
        out[sl[2]] += prod[2];
        out[sl[3]] += prod[3];
    }
    for (&sl, &v) in s4.remainder().iter().zip(v4.remainder()) {
        out[sl] += s * v;
    }
}

// ---------------------------------------------------------------------------
// Dense LU inner row updates.
// ---------------------------------------------------------------------------

/// `dst[j] -= f · src[j]` — the dense real LU row elimination.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_sub(dst: &mut [f64], src: &[f64], f: f64) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::axpy_sub(dst, src, f) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::axpy_sub(dst, src, f),
        Backend::Scalar => axpy_sub_scalar(dst, src, f),
    }
}

/// Scalar oracle for [`axpy_sub`].
pub fn axpy_sub_scalar(dst: &mut [f64], src: &[f64], f: f64) {
    for (d, &a) in dst.iter_mut().zip(src) {
        *d -= f * a;
    }
}

/// `dst[j] -= f · src[j]` (complex) — the dense complex LU row elimination.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn caxpy_sub(dst: &mut [Complex], src: &[Complex], f: Complex) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::caxpy_sub(dst, src, f) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::caxpy_sub(dst, src, f),
        Backend::Scalar => caxpy_sub_scalar(dst, src, f),
    }
}

/// Scalar oracle for [`caxpy_sub`].
pub fn caxpy_sub_scalar(dst: &mut [Complex], src: &[Complex], f: Complex) {
    for (d, &a) in dst.iter_mut().zip(src) {
        *d -= f * a;
    }
}

// ---------------------------------------------------------------------------
// Sparse LU inner row updates (scattered destination, contiguous factors).
// ---------------------------------------------------------------------------

/// `w[cols[q]] -= f · vals[q]` — the sparse real elimination update. The
/// products `f · vals` are formed SIMD-wide (contiguous), the scattered
/// subtractions run in scalar program order (`cols` within one factor row
/// are distinct, but order is kept anyway).
///
/// # Panics
/// Panics if `cols` and `vals` differ in length or a column is out of range.
pub fn scatter_axpy_sub(w: &mut [f64], cols: &[usize], vals: &[f64], f: f64) {
    assert_eq!(cols.len(), vals.len(), "length mismatch");
    // Real MNA factor rows are short (~4 entries on the pipeline chain);
    // there the product round-trip through a stack buffer costs more than
    // the three multiplies it saves, measurably slowing the DC Newton
    // loop. Every backend produces identical bits, so a length cutover
    // cannot fork trajectories.
    if cols.len() < 16 {
        return scatter_axpy_sub_scalar(w, cols, vals, f);
    }
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::scatter_axpy_sub(w, cols, vals, f) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::scatter_axpy_sub(w, cols, vals, f),
        Backend::Scalar => scatter_axpy_sub_scalar(w, cols, vals, f),
    }
}

/// Scalar oracle for [`scatter_axpy_sub`].
pub fn scatter_axpy_sub_scalar(w: &mut [f64], cols: &[usize], vals: &[f64], f: f64) {
    for (&c, &v) in cols.iter().zip(vals) {
        w[c] -= f * v;
    }
}

/// `w[cols[q]] -= f · vals[q]` (complex) — the sparse complex elimination
/// update, structured like [`scatter_axpy_sub`].
///
/// # Panics
/// Panics if `cols` and `vals` differ in length or a column is out of range.
pub fn scatter_caxpy_sub(w: &mut [Complex], cols: &[usize], vals: &[Complex], f: Complex) {
    assert_eq!(cols.len(), vals.len(), "length mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::scatter_caxpy_sub(w, cols, vals, f) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::scatter_caxpy_sub(w, cols, vals, f),
        Backend::Scalar => scatter_caxpy_sub_scalar(w, cols, vals, f),
    }
}

/// Scalar oracle for [`scatter_caxpy_sub`].
pub fn scatter_caxpy_sub_scalar(w: &mut [Complex], cols: &[usize], vals: &[Complex], f: Complex) {
    for (&c, &v) in cols.iter().zip(vals) {
        w[c] -= f * v;
    }
}

// ---------------------------------------------------------------------------
// Batched (struct-of-arrays) complex lanes.
// ---------------------------------------------------------------------------

/// Lane-wise complex multiply-subtract over split re/im arrays:
/// `d[l] -= a[l] · b[l]` with the product expression matching
/// [`Complex`]'s `Mul` exactly — the inner kernel of the batched sparse
/// complex factor/solve.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn lane_cmul_sub(
    dr: &mut [f64],
    di: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
) {
    let n = dr.len();
    assert!(
        di.len() == n && ar.len() == n && ai.len() == n && br.len() == n && bi.len() == n,
        "lane length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::lane_cmul_sub(dr, di, ar, ai, br, bi) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::lane_cmul_sub(dr, di, ar, ai, br, bi),
        Backend::Scalar => lane_cmul_sub_scalar(dr, di, ar, ai, br, bi),
    }
}

/// Scalar oracle for [`lane_cmul_sub`].
pub fn lane_cmul_sub_scalar(
    dr: &mut [f64],
    di: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
) {
    for l in 0..dr.len() {
        // Exactly Complex::mul then SubAssign: four rounded multiplies, one
        // rounded sub/add for each component, one rounded -= each.
        let pr = ar[l] * br[l] - ai[l] * bi[l];
        let pi = ar[l] * bi[l] + ai[l] * br[l];
        dr[l] -= pr;
        di[l] -= pi;
    }
}

/// Lane-wise complex division over split re/im arrays:
/// `q[l] = a[l] / b[l]` with results bit-identical to [`Complex`]'s `Div`
/// (Smith's algorithm) per lane — the multiplier/pivot division of the
/// batched sparse complex factor/solve, where per-lane scalar divides
/// otherwise dominate the factor cost.
///
/// The vector form evaluates **one** op sequence for both Smith branches by
/// blending *operands* instead of branching: with `mask = |br| ≥ |bi|`
/// (false on NaN, like the scalar `>=`), `r`'s numerator/denominator, `d`'s
/// addends, and the output numerators are per-lane operand selections such
/// that each lane performs exactly the rounded ops its scalar branch would
/// (using `x + y·r ≡ y·r + x` commutativity where the branches write the
/// sum in opposite order; the non-commutative imaginary-part subtraction is
/// computed both ways and result-blended). Exact-zero denominators
/// (`br == 0 && bi == 0`, where the scalar code divides by literal `+0.0`)
/// are patched per lane with the scalar expression.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn lane_cdiv(qr: &mut [f64], qi: &mut [f64], ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let n = qr.len();
    assert!(
        qi.len() == n && ar.len() == n && ai.len() == n && br.len() == n && bi.len() == n,
        "lane length mismatch"
    );
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::lane_cdiv(qr, qi, ar, ai, br, bi) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::lane_cdiv(qr, qi, ar, ai, br, bi),
        Backend::Scalar => lane_cdiv_scalar(qr, qi, ar, ai, br, bi),
    }
}

/// Scalar oracle for [`lane_cdiv`] — per-lane [`Complex`] division.
pub fn lane_cdiv_scalar(
    qr: &mut [f64],
    qi: &mut [f64],
    ar: &[f64],
    ai: &[f64],
    br: &[f64],
    bi: &[f64],
) {
    for l in 0..qr.len() {
        let q = Complex::new(ar[l], ai[l]) / Complex::new(br[l], bi[l]);
        qr[l] = q.re;
        qi[l] = q.im;
    }
}

// ---------------------------------------------------------------------------
// Batched sparse LU row kernels (one call per elimination/substitution row).
//
// The per-lane kernels above cost a dispatch + call per *nonzero*, which at
// 8 lanes × a handful of flops swamps the arithmetic. These fused kernels
// move the whole row loop (division included) behind one dispatch so the
// multiplier lanes stay in registers across the row.
//
// All offsets address the batch workspaces' position-major, lane-minor
// layout: lane `l` of factor position `p` lives at `p·lanes + l`.
// ---------------------------------------------------------------------------

/// One batched up-looking elimination step: forms the multiplier
/// `f = w[j] / U_jj` per lane (Smith division, bit-identical to
/// [`Complex`]'s `Div`), stores it back into `w[j]`, then applies
/// `w[c_q] -= f · U_j[c_q]` over row `j`'s upper entries.
///
/// `jm` is the multiplier offset (`j·lanes`) in `w`, `dp` the pivot offset
/// (`diag_j·lanes`) and `p0` the offset of `cols[0]`'s values in `f`.
/// The pivot must not be exactly `0 + 0i` in any lane (factored pivots
/// passed the singularity check, which excludes exact zeros — the scalar
/// short-circuit branch is therefore unreachable and the vector division
/// needs no patch).
///
/// # Panics
/// Panics (via slice indexing) if any offset or column is out of range.
#[allow(clippy::too_many_arguments)]
pub fn lane_eliminate_row(
    w_re: &mut [f64],
    w_im: &mut [f64],
    jm: usize,
    dp: usize,
    cols: &[usize],
    p0: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_eliminate_row(w_re, w_im, jm, dp, cols, p0, f_re, f_im, lanes)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => {
            neon::lane_eliminate_row(w_re, w_im, jm, dp, cols, p0, f_re, f_im, lanes)
        }
        _ => lane_eliminate_row_scalar(w_re, w_im, jm, dp, cols, p0, f_re, f_im, lanes),
    }
}

/// Scalar oracle for [`lane_eliminate_row`].
#[allow(clippy::too_many_arguments)]
pub fn lane_eliminate_row_scalar(
    w_re: &mut [f64],
    w_im: &mut [f64],
    jm: usize,
    dp: usize,
    cols: &[usize],
    p0: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    for l in 0..lanes {
        let f = Complex::new(w_re[jm + l], w_im[jm + l]) / Complex::new(f_re[dp + l], f_im[dp + l]);
        w_re[jm + l] = f.re;
        w_im[jm + l] = f.im;
    }
    for (q, &c) in cols.iter().enumerate() {
        let cm = c * lanes;
        let p = p0 + q * lanes;
        for l in 0..lanes {
            // Exactly Complex::mul then SubAssign, like lane_cmul_sub.
            let pr = w_re[jm + l] * f_re[p + l] - w_im[jm + l] * f_im[p + l];
            let pi = w_re[jm + l] * f_im[p + l] + w_im[jm + l] * f_re[p + l];
            w_re[cm + l] -= pr;
            w_im[cm + l] -= pi;
        }
    }
}

/// Shared pivot acceptance test of the batched factor: fails a lane iff
/// the serial check `pivot.norm() < tol` would, using the cheap component
/// screen first (a component beyond `2·tol` proves the norm ≥ `tol`
/// without the hypot). Returns the failing lane's exact pivot magnitude.
#[inline]
fn pivot_fail(f_re: &[f64], f_im: &[f64], dp: usize, lanes: usize, tol: f64) -> Option<f64> {
    for l in 0..lanes {
        let (re, im) = (f_re[dp + l], f_im[dp + l]);
        if !(re.abs() > 2.0 * tol || im.abs() > 2.0 * tol) {
            let m = re.hypot(im);
            if m < tol {
                return Some(m);
            }
        }
    }
    None
}

/// Batched assembly of `Y(s_l) = base + s_l·C` into lane-strided factor
/// storage: broadcast `0.0 + base[k]` at scattered base positions,
/// explicit zeros at the fill-in positions, then the `s`-scaled cap
/// entries accumulated per lane in entry order — exactly the serial
/// `fill(ZERO)` + `+=` + `scatter_add_scaled` result per lane.
///
/// # Panics
/// Panics (via slice indexing) if the scatter maps and lane storage are
/// inconsistent or `s_re`/`s_im` are shorter than `lanes`.
#[allow(clippy::too_many_arguments)]
pub fn lane_assemble(
    f_re: &mut [f64],
    f_im: &mut [f64],
    base: &[Complex],
    scatter: &[usize],
    fill_pos: &[usize],
    cap_slots: &[usize],
    cap_vals: &[f64],
    s_re: &[f64],
    s_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_assemble(
                f_re, f_im, base, scatter, fill_pos, cap_slots, cap_vals, s_re, s_im, lanes,
            )
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => neon::lane_assemble(
            f_re, f_im, base, scatter, fill_pos, cap_slots, cap_vals, s_re, s_im, lanes,
        ),
        _ => lane_assemble_scalar(
            f_re, f_im, base, scatter, fill_pos, cap_slots, cap_vals, s_re, s_im, lanes,
        ),
    }
}

/// Scalar oracle for [`lane_assemble`].
#[allow(clippy::too_many_arguments)]
pub fn lane_assemble_scalar(
    f_re: &mut [f64],
    f_im: &mut [f64],
    base: &[Complex],
    scatter: &[usize],
    fill_pos: &[usize],
    cap_slots: &[usize],
    cap_vals: &[f64],
    s_re: &[f64],
    s_im: &[f64],
    lanes: usize,
) {
    for (k, &v) in base.iter().enumerate() {
        let p = scatter[k] * lanes;
        f_re[p..p + lanes].fill(0.0 + v.re);
        f_im[p..p + lanes].fill(0.0 + v.im);
    }
    for &fp in fill_pos {
        let p = fp * lanes;
        f_re[p..p + lanes].fill(0.0);
        f_im[p..p + lanes].fill(0.0);
    }
    for (&slot, &c) in cap_slots.iter().zip(cap_vals) {
        let p = scatter[slot] * lanes;
        for (d, &sr) in f_re[p..p + lanes].iter_mut().zip(&s_re[..lanes]) {
            *d += sr * c;
        }
        for (d, &si) in f_im[p..p + lanes].iter_mut().zip(&s_im[..lanes]) {
            *d += si * c;
        }
    }
}

/// Batched magnitudes `|num(jω)/den(jω)|` of a real-coefficient rational
/// function at `s = j·2π·f` for each frequency in `freqs_hz`, written to
/// `out`. Each lane reproduces the serial Horner evaluation, Smith
/// division (exact-zero denominators included) and `hypot` bit-for-bit,
/// so log-grid magnitude scans can batch points without perturbing the
/// crossing they find.
///
/// # Panics
/// Panics if `out` is shorter than `freqs_hz`.
pub fn rational_mags(num: &[f64], den: &[f64], freqs_hz: &[f64], out: &mut [f64]) {
    assert!(out.len() >= freqs_hz.len(), "output shorter than input");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 => unsafe { avx2::rational_mags(num, den, freqs_hz, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => neon::rational_mags(num, den, freqs_hz, out),
        _ => rational_mags_scalar(num, den, freqs_hz, out),
    }
}

/// Scalar oracle for [`rational_mags`]: exactly the serial
/// `(num.eval_complex(jω) / den.eval_complex(jω)).norm()` per point.
pub fn rational_mags_scalar(num: &[f64], den: &[f64], freqs_hz: &[f64], out: &mut [f64]) {
    for (o, &f) in out.iter_mut().zip(freqs_hz) {
        let z = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
        let n = num.iter().rev().fold(Complex::ZERO, |acc, &c| acc * z + c);
        let d = den.iter().rev().fold(Complex::ZERO, |acc, &c| acc * z + c);
        *o = (n / d).norm();
    }
}

/// The complete batched up-looking elimination over every row, in place
/// in the factor storage via the precomputed elimination schedule
/// (`e_target` maps each update entry of an eliminating row `j` to its
/// position within the row being built — no scatter workspace, no copy
/// in/out), behind **one** dispatch. Returns the first `(step, pivot
/// magnitude)` failing the tolerance, deciding exactly as the serial
/// per-lane `norm() < tol` check would.
///
/// # Panics
/// Panics (via slice indexing) if the symbolic arrays and lane storage
/// are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn lane_factor_rows(
    f_re: &mut [f64],
    f_im: &mut [f64],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    e_target: &[usize],
    lanes: usize,
    tol: f64,
) -> Option<(usize, f64)> {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_factor_rows(f_re, f_im, f_row_ptr, f_col, f_diag, e_target, lanes, tol)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => {
            neon::lane_factor_rows(f_re, f_im, f_row_ptr, f_col, f_diag, e_target, lanes, tol)
        }
        _ => lane_factor_rows_scalar(f_re, f_im, f_row_ptr, f_col, f_diag, e_target, lanes, tol),
    }
}

/// Scalar oracle for [`lane_factor_rows`].
#[allow(clippy::too_many_arguments)]
// `pos` walks a CSR span and is also needed as `pos * lanes`; an
// enumerate rewrite would obscure the indexing contract.
#[allow(clippy::needless_range_loop)]
pub fn lane_factor_rows_scalar(
    f_re: &mut [f64],
    f_im: &mut [f64],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    e_target: &[usize],
    lanes: usize,
    tol: f64,
) -> Option<(usize, f64)> {
    let n = f_diag.len();
    let mut cur = 0usize;
    for i in 0..n {
        for pos in f_row_ptr[i]..f_diag[i] {
            let j = f_col[pos];
            let (d, e) = (f_diag[j] + 1, f_row_ptr[j + 1]);
            let pm = pos * lanes;
            let dpm = f_diag[j] * lanes;
            // Multiplier lanes in place: exactly the scalar operator's
            // Smith division, stored where the L value lives.
            for l in 0..lanes {
                let q = Complex::new(f_re[pm + l], f_im[pm + l])
                    / Complex::new(f_re[dpm + l], f_im[dpm + l]);
                f_re[pm + l] = q.re;
                f_im[pm + l] = q.im;
            }
            for (q, &t) in (d..e).zip(&e_target[cur..cur + (e - d)]) {
                let qm = q * lanes;
                let tm = t * lanes;
                for l in 0..lanes {
                    let pr = f_re[pm + l] * f_re[qm + l] - f_im[pm + l] * f_im[qm + l];
                    let pi = f_re[pm + l] * f_im[qm + l] + f_im[pm + l] * f_re[qm + l];
                    f_re[tm + l] -= pr;
                    f_im[tm + l] -= pi;
                }
            }
            cur += e - d;
        }
        if let Some(pm) = pivot_fail(f_re, f_im, f_diag[i] * lanes, lanes, tol) {
            return Some((i, pm));
        }
    }
    None
}

/// The complete batched forward substitution (`L y = P_r b`, unit
/// diagonal) behind one dispatch — [`lane_fwd_row`] per row, inlined.
///
/// # Panics
/// Panics (via slice indexing) if the symbolic arrays and lane storage
/// are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn lane_fwd_all(
    y_re: &mut [f64],
    y_im: &mut [f64],
    b: &[Complex],
    row_perm: &[usize],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_fwd_all(
                y_re, y_im, b, row_perm, f_row_ptr, f_col, f_diag, f_re, f_im, lanes,
            )
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => neon::lane_fwd_all(
            y_re, y_im, b, row_perm, f_row_ptr, f_col, f_diag, f_re, f_im, lanes,
        ),
        _ => lane_fwd_all_scalar(
            y_re, y_im, b, row_perm, f_row_ptr, f_col, f_diag, f_re, f_im, lanes,
        ),
    }
}

/// Scalar oracle for [`lane_fwd_all`].
#[allow(clippy::too_many_arguments)]
pub fn lane_fwd_all_scalar(
    y_re: &mut [f64],
    y_im: &mut [f64],
    b: &[Complex],
    row_perm: &[usize],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    for i in 0..f_diag.len() {
        let bv = b[row_perm[i]];
        let (start, d) = (f_row_ptr[i], f_diag[i]);
        lane_fwd_row_scalar(
            y_re,
            y_im,
            i * lanes,
            bv.re,
            bv.im,
            &f_col[start..d],
            start * lanes,
            f_re,
            f_im,
            lanes,
        );
    }
}

/// The complete batched back substitution (`U x' = y`, pivot division per
/// row) behind one dispatch — [`lane_bwd_row`] per row, inlined. Pivots
/// passed the factor's singularity check, so exact-zero divisors are
/// unreachable.
///
/// # Panics
/// Panics (via slice indexing) if the symbolic arrays and lane storage
/// are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn lane_bwd_all(
    y_re: &mut [f64],
    y_im: &mut [f64],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_bwd_all(y_re, y_im, f_row_ptr, f_col, f_diag, f_re, f_im, lanes)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => {
            neon::lane_bwd_all(y_re, y_im, f_row_ptr, f_col, f_diag, f_re, f_im, lanes)
        }
        _ => lane_bwd_all_scalar(y_re, y_im, f_row_ptr, f_col, f_diag, f_re, f_im, lanes),
    }
}

/// Scalar oracle for [`lane_bwd_all`].
#[allow(clippy::too_many_arguments)]
pub fn lane_bwd_all_scalar(
    y_re: &mut [f64],
    y_im: &mut [f64],
    f_row_ptr: &[usize],
    f_col: &[usize],
    f_diag: &[usize],
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    for i in (0..f_diag.len()).rev() {
        let (d, e) = (f_diag[i], f_row_ptr[i + 1]);
        lane_bwd_row_scalar(
            y_re,
            y_im,
            i * lanes,
            &f_col[d + 1..e],
            (d + 1) * lanes,
            d * lanes,
            f_re,
            f_im,
            lanes,
        );
    }
}

/// One batched forward-substitution row: initializes `y[i]` to the
/// broadcast right-hand side, then applies `y[i] -= L_i[c_q] · y[c_q]`
/// over row `i`'s lower entries (`c_q < i`), accumulator lanes held in
/// registers. `im` is `i·lanes` in `y`; `p0` the offset of `cols[0]`'s
/// values in `f`.
///
/// # Panics
/// Panics (via slice indexing) if any offset or column is out of range.
#[allow(clippy::too_many_arguments)]
pub fn lane_fwd_row(
    y_re: &mut [f64],
    y_im: &mut [f64],
    im: usize,
    b_re: f64,
    b_im: f64,
    cols: &[usize],
    p0: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_fwd_row(y_re, y_im, im, b_re, b_im, cols, p0, f_re, f_im, lanes)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => {
            neon::lane_fwd_row(y_re, y_im, im, b_re, b_im, cols, p0, f_re, f_im, lanes)
        }
        _ => lane_fwd_row_scalar(y_re, y_im, im, b_re, b_im, cols, p0, f_re, f_im, lanes),
    }
}

/// Scalar oracle for [`lane_fwd_row`].
#[allow(clippy::too_many_arguments)]
pub fn lane_fwd_row_scalar(
    y_re: &mut [f64],
    y_im: &mut [f64],
    im: usize,
    b_re: f64,
    b_im: f64,
    cols: &[usize],
    p0: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    for l in 0..lanes {
        y_re[im + l] = b_re;
        y_im[im + l] = b_im;
    }
    for (q, &c) in cols.iter().enumerate() {
        let cm = c * lanes;
        let p = p0 + q * lanes;
        for l in 0..lanes {
            let pr = f_re[p + l] * y_re[cm + l] - f_im[p + l] * y_im[cm + l];
            let pi = f_re[p + l] * y_im[cm + l] + f_im[p + l] * y_re[cm + l];
            y_re[im + l] -= pr;
            y_im[im + l] -= pi;
        }
    }
}

/// One batched back-substitution row: applies
/// `y[i] -= U_i[c_q] · y[c_q]` over row `i`'s upper entries (`c_q > i`),
/// then divides by the pivot `U_ii` per lane (Smith division). `im` is
/// `i·lanes` in `y`, `p0` the offset of `cols[0]`'s values and `dp` the
/// pivot offset in `f`. Pivots passed the singularity check, so exact-zero
/// divisors are unreachable (see [`lane_eliminate_row`]).
///
/// # Panics
/// Panics (via slice indexing) if any offset or column is out of range.
#[allow(clippy::too_many_arguments)]
pub fn lane_bwd_row(
    y_re: &mut [f64],
    y_im: &mut [f64],
    im: usize,
    cols: &[usize],
    p0: usize,
    dp: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Backend::Avx2` is only returned when AVX2 was detected.
        Backend::Avx2 if lanes % 4 == 0 => unsafe {
            avx2::lane_bwd_row(y_re, y_im, im, cols, p0, dp, f_re, f_im, lanes)
        },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if lanes % 2 == 0 => {
            neon::lane_bwd_row(y_re, y_im, im, cols, p0, dp, f_re, f_im, lanes)
        }
        _ => lane_bwd_row_scalar(y_re, y_im, im, cols, p0, dp, f_re, f_im, lanes),
    }
}

/// Scalar oracle for [`lane_bwd_row`].
#[allow(clippy::too_many_arguments)]
pub fn lane_bwd_row_scalar(
    y_re: &mut [f64],
    y_im: &mut [f64],
    im: usize,
    cols: &[usize],
    p0: usize,
    dp: usize,
    f_re: &[f64],
    f_im: &[f64],
    lanes: usize,
) {
    for (q, &c) in cols.iter().enumerate() {
        let cm = c * lanes;
        let p = p0 + q * lanes;
        for l in 0..lanes {
            let pr = f_re[p + l] * y_re[cm + l] - f_im[p + l] * y_im[cm + l];
            let pi = f_re[p + l] * y_im[cm + l] + f_im[p + l] * y_re[cm + l];
            y_re[im + l] -= pr;
            y_im[im + l] -= pi;
        }
    }
    for l in 0..lanes {
        let q = Complex::new(y_re[im + l], y_im[im + l]) / Complex::new(f_re[dp + l], f_im[dp + l]);
        y_re[im + l] = q.re;
        y_im[im + l] = q.im;
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use crate::complex::Complex;
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_sub(dst: &mut [f64], src: &[f64], f: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let fv = _mm256_set1_pd(f);
        let mut i = 0usize;
        while i + 4 <= n {
            let s = _mm256_loadu_pd(sp.add(i));
            let d = _mm256_loadu_pd(dp.add(i));
            let p = _mm256_mul_pd(fv, s);
            _mm256_storeu_pd(dp.add(i), _mm256_sub_pd(d, p));
            i += 4;
        }
        while i < n {
            *dp.add(i) -= f * *sp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn caxpy_sub(dst: &mut [Complex], src: &[Complex], f: Complex) {
        let n = dst.len();
        // Complex is #[repr(C)] { re, im }: interleaved [re, im, re, im].
        let dp = dst.as_mut_ptr().cast::<f64>();
        let sp = src.as_ptr().cast::<f64>();
        let fre = _mm256_set1_pd(f.re);
        let fim = _mm256_set1_pd(f.im);
        let mut i = 0usize;
        while i + 2 <= n {
            let v = _mm256_loadu_pd(sp.add(2 * i)); // [r0, i0, r1, i1]
            let t1 = _mm256_mul_pd(fre, v); // [fre·r0, fre·i0, ...]
            let vs = _mm256_permute_pd(v, 0b0101); // [i0, r0, i1, r1]
            let t2 = _mm256_mul_pd(fim, vs); // [fim·i0, fim·r0, ...]
                                             // [t1₀−t2₀, t1₁+t2₁, ...] = [fre·r−fim·i, fre·i+fim·r, ...]:
                                             // single-rounded, exactly Complex::mul.
            let prod = _mm256_addsub_pd(t1, t2);
            let d = _mm256_loadu_pd(dp.add(2 * i));
            _mm256_storeu_pd(dp.add(2 * i), _mm256_sub_pd(d, prod));
            i += 2;
        }
        while i < n {
            let d = &mut *dst.as_mut_ptr().add(i);
            *d -= f * *src.as_ptr().add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter_add_scaled(
        out: &mut [Complex],
        slots: &[usize],
        vals: &[f64],
        s: Complex,
    ) {
        let n = vals.len();
        let sre = _mm256_set1_pd(s.re);
        let sim = _mm256_set1_pd(s.im);
        let mut pre = [0.0f64; 4];
        let mut pim = [0.0f64; 4];
        let mut k = 0usize;
        while k + 4 <= n {
            let v = _mm256_loadu_pd(vals.as_ptr().add(k));
            _mm256_storeu_pd(pre.as_mut_ptr(), _mm256_mul_pd(sre, v));
            _mm256_storeu_pd(pim.as_mut_ptr(), _mm256_mul_pd(sim, v));
            // Scattered accumulation in program order (slots may repeat).
            for lane in 0..4 {
                let o = out.get_unchecked_mut(*slots.get_unchecked(k + lane));
                o.re += pre[lane];
                o.im += pim[lane];
            }
            k += 4;
        }
        while k < n {
            let v = *vals.get_unchecked(k);
            let o = out.get_unchecked_mut(*slots.get_unchecked(k));
            *o += s * v;
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter_axpy_sub(w: &mut [f64], cols: &[usize], vals: &[f64], f: f64) {
        let n = vals.len();
        let fv = _mm256_set1_pd(f);
        let mut prod = [0.0f64; 4];
        let mut q = 0usize;
        while q + 4 <= n {
            let v = _mm256_loadu_pd(vals.as_ptr().add(q));
            _mm256_storeu_pd(prod.as_mut_ptr(), _mm256_mul_pd(fv, v));
            for (lane, &p) in prod.iter().enumerate() {
                *w.get_unchecked_mut(*cols.get_unchecked(q + lane)) -= p;
            }
            q += 4;
        }
        while q < n {
            *w.get_unchecked_mut(*cols.get_unchecked(q)) -= f * *vals.get_unchecked(q);
            q += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter_caxpy_sub(
        w: &mut [Complex],
        cols: &[usize],
        vals: &[Complex],
        f: Complex,
    ) {
        let n = vals.len();
        let vp = vals.as_ptr().cast::<f64>();
        let fre = _mm256_set1_pd(f.re);
        let fim = _mm256_set1_pd(f.im);
        let mut prod = [0.0f64; 4]; // two products, interleaved [r0, i0, r1, i1]
        let mut q = 0usize;
        while q + 2 <= n {
            let v = _mm256_loadu_pd(vp.add(2 * q));
            let t1 = _mm256_mul_pd(fre, v);
            let vs = _mm256_permute_pd(v, 0b0101);
            let t2 = _mm256_mul_pd(fim, vs);
            _mm256_storeu_pd(prod.as_mut_ptr(), _mm256_addsub_pd(t1, t2));
            for lane in 0..2 {
                let o = w.get_unchecked_mut(*cols.get_unchecked(q + lane));
                o.re -= prod[2 * lane];
                o.im -= prod[2 * lane + 1];
            }
            q += 2;
        }
        while q < n {
            let o = w.get_unchecked_mut(*cols.get_unchecked(q));
            *o -= f * *vals.get_unchecked(q);
            q += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn lane_cmul_sub(
        dr: &mut [f64],
        di: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
    ) {
        let n = dr.len();
        let mut l = 0usize;
        while l + 4 <= n {
            let var = _mm256_loadu_pd(ar.as_ptr().add(l));
            let vai = _mm256_loadu_pd(ai.as_ptr().add(l));
            let vbr = _mm256_loadu_pd(br.as_ptr().add(l));
            let vbi = _mm256_loadu_pd(bi.as_ptr().add(l));
            let pr = _mm256_sub_pd(_mm256_mul_pd(var, vbr), _mm256_mul_pd(vai, vbi));
            let pi = _mm256_add_pd(_mm256_mul_pd(var, vbi), _mm256_mul_pd(vai, vbr));
            let vdr = _mm256_loadu_pd(dr.as_ptr().add(l));
            let vdi = _mm256_loadu_pd(di.as_ptr().add(l));
            _mm256_storeu_pd(dr.as_mut_ptr().add(l), _mm256_sub_pd(vdr, pr));
            _mm256_storeu_pd(di.as_mut_ptr().add(l), _mm256_sub_pd(vdi, pi));
            l += 4;
        }
        while l < n {
            let pr = ar[l] * br[l] - ai[l] * bi[l];
            let pi = ar[l] * bi[l] + ai[l] * br[l];
            dr[l] -= pr;
            di[l] -= pi;
            l += 1;
        }
    }

    /// Four-lane Smith division `(ar + i·ai) / (br + i·bi)`, bit-identical
    /// per lane to `Complex::div`'s branchy scalar code by blending
    /// *operands* on the branch predicate `|br| ≥ |bi|` (one rounded op
    /// sequence serves both branches; addition operand order commutes
    /// bitwise, the non-commutative imaginary subtraction is computed both
    /// ways and result-blended). Does **not** reproduce the exact-zero
    /// short-circuit — callers either exclude exact-zero denominators
    /// (factored pivots) or patch those lanes afterwards.
    #[inline(always)]
    unsafe fn smith4(ar: __m256d, ai: __m256d, br: __m256d, bi: __m256d) -> (__m256d, __m256d) {
        let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        // Ordered ≥: false on NaN, exactly like the scalar `>=`; all-ones
        // selects the "A" (|br| ≥ |bi|) operands in the blends below.
        let mask =
            _mm256_cmp_pd::<_CMP_GE_OQ>(_mm256_and_pd(br, abs_mask), _mm256_and_pd(bi, abs_mask));
        // r = (A: bi/br, B: br/bi)
        let num = _mm256_blendv_pd(br, bi, mask);
        let den = _mm256_blendv_pd(bi, br, mask);
        let r = _mm256_div_pd(num, den);
        // d = (A: br + bi·r, B: br·r + bi ≡ bi + br·r)
        let d = _mm256_add_pd(den, _mm256_mul_pd(num, r));
        // sel_a = (A: ar, B: ai), sel_b = (A: ai, B: ar)
        let sel_a = _mm256_blendv_pd(ai, ar, mask);
        let sel_b = _mm256_blendv_pd(ar, ai, mask);
        // num_re = (A: ar + ai·r, B: ar·r + ai ≡ ai + ar·r)
        let num_re = _mm256_add_pd(sel_a, _mm256_mul_pd(sel_b, r));
        // num_im = (A: ai − ar·r, B: ai·r − ar), result-blended.
        let t = _mm256_mul_pd(sel_a, r);
        let u = _mm256_sub_pd(ai, t);
        let v = _mm256_sub_pd(t, ar);
        let num_im = _mm256_blendv_pd(v, u, mask);
        (_mm256_div_pd(num_re, d), _mm256_div_pd(num_im, d))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn lane_cdiv(
        qr: &mut [f64],
        qi: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
    ) {
        let n = qr.len();
        let zero = _mm256_setzero_pd();
        let mut l = 0usize;
        while l + 4 <= n {
            let var = _mm256_loadu_pd(ar.as_ptr().add(l));
            let vai = _mm256_loadu_pd(ai.as_ptr().add(l));
            let vbr = _mm256_loadu_pd(br.as_ptr().add(l));
            let vbi = _mm256_loadu_pd(bi.as_ptr().add(l));
            let (q_re, q_im) = smith4(var, vai, vbr, vbi);
            _mm256_storeu_pd(qr.as_mut_ptr().add(l), q_re);
            _mm256_storeu_pd(qi.as_mut_ptr().add(l), q_im);
            // Exact-zero denominators short-circuit in the scalar code
            // (divide by literal +0.0); patch those lanes to match.
            let zmask = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_EQ_OQ>(vbr, zero),
                _mm256_cmp_pd::<_CMP_EQ_OQ>(vbi, zero),
            );
            let zm = _mm256_movemask_pd(zmask);
            if zm != 0 {
                for lane in 0..4 {
                    if zm & (1 << lane) != 0 {
                        qr[l + lane] = ar[l + lane] / 0.0;
                        qi[l + lane] = ai[l + lane] / 0.0;
                    }
                }
            }
            l += 4;
        }
        while l < n {
            let q = Complex::new(ar[l], ai[l]) / Complex::new(br[l], bi[l]);
            qr[l] = q.re;
            qi[l] = q.im;
            l += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_eliminate_row(
        w_re: &mut [f64],
        w_im: &mut [f64],
        jm: usize,
        dp: usize,
        cols: &[usize],
        p0: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 4 == 0 && lanes <= super::MAX_LANES);
        // Multiplier lanes: f = w[j] / pivot, kept in registers across the
        // row (≤ 2 register pairs at MAX_LANES = 8). Pivots exclude exact
        // zero, so smith4 needs no patch.
        let groups = lanes / 4;
        let mut fr = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        let mut fi = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        for g in 0..groups {
            let o = 4 * g;
            let wr = _mm256_loadu_pd(w_re[jm + o..jm + o + 4].as_ptr());
            let wi = _mm256_loadu_pd(w_im[jm + o..jm + o + 4].as_ptr());
            let pr = _mm256_loadu_pd(f_re[dp + o..dp + o + 4].as_ptr());
            let pi = _mm256_loadu_pd(f_im[dp + o..dp + o + 4].as_ptr());
            let (qr, qi) = smith4(wr, wi, pr, pi);
            _mm256_storeu_pd(w_re[jm + o..jm + o + 4].as_mut_ptr(), qr);
            _mm256_storeu_pd(w_im[jm + o..jm + o + 4].as_mut_ptr(), qi);
            fr[g] = qr;
            fi[g] = qi;
        }
        for (q, &c) in cols.iter().enumerate() {
            let cm = c * lanes;
            let p = p0 + q * lanes;
            for g in 0..groups {
                let o = 4 * g;
                let br = _mm256_loadu_pd(f_re[p + o..p + o + 4].as_ptr());
                let bi = _mm256_loadu_pd(f_im[p + o..p + o + 4].as_ptr());
                let pr = _mm256_sub_pd(_mm256_mul_pd(fr[g], br), _mm256_mul_pd(fi[g], bi));
                let pi = _mm256_add_pd(_mm256_mul_pd(fr[g], bi), _mm256_mul_pd(fi[g], br));
                let dr = _mm256_loadu_pd(w_re[cm + o..cm + o + 4].as_ptr());
                let di = _mm256_loadu_pd(w_im[cm + o..cm + o + 4].as_ptr());
                _mm256_storeu_pd(w_re[cm + o..cm + o + 4].as_mut_ptr(), _mm256_sub_pd(dr, pr));
                _mm256_storeu_pd(w_im[cm + o..cm + o + 4].as_mut_ptr(), _mm256_sub_pd(di, pi));
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_fwd_row(
        y_re: &mut [f64],
        y_im: &mut [f64],
        im: usize,
        b_re: f64,
        b_im: f64,
        cols: &[usize],
        p0: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 4 == 0 && lanes <= super::MAX_LANES);
        let groups = lanes / 4;
        let mut accr = [_mm256_set1_pd(b_re); super::MAX_LANES / 4];
        let mut acci = [_mm256_set1_pd(b_im); super::MAX_LANES / 4];
        for (q, &c) in cols.iter().enumerate() {
            let cm = c * lanes;
            let p = p0 + q * lanes;
            for g in 0..groups {
                let o = 4 * g;
                let ar = _mm256_loadu_pd(f_re[p + o..p + o + 4].as_ptr());
                let ai = _mm256_loadu_pd(f_im[p + o..p + o + 4].as_ptr());
                let br = _mm256_loadu_pd(y_re[cm + o..cm + o + 4].as_ptr());
                let bi = _mm256_loadu_pd(y_im[cm + o..cm + o + 4].as_ptr());
                let pr = _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi));
                let pi = _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br));
                accr[g] = _mm256_sub_pd(accr[g], pr);
                acci[g] = _mm256_sub_pd(acci[g], pi);
            }
        }
        for g in 0..groups {
            let o = 4 * g;
            _mm256_storeu_pd(y_re[im + o..im + o + 4].as_mut_ptr(), accr[g]);
            _mm256_storeu_pd(y_im[im + o..im + o + 4].as_mut_ptr(), acci[g]);
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_bwd_row(
        y_re: &mut [f64],
        y_im: &mut [f64],
        im: usize,
        cols: &[usize],
        p0: usize,
        dp: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 4 == 0 && lanes <= super::MAX_LANES);
        let groups = lanes / 4;
        let mut accr = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        let mut acci = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        for g in 0..groups {
            let o = 4 * g;
            accr[g] = _mm256_loadu_pd(y_re[im + o..im + o + 4].as_ptr());
            acci[g] = _mm256_loadu_pd(y_im[im + o..im + o + 4].as_ptr());
        }
        for (q, &c) in cols.iter().enumerate() {
            let cm = c * lanes;
            let p = p0 + q * lanes;
            for g in 0..groups {
                let o = 4 * g;
                let ar = _mm256_loadu_pd(f_re[p + o..p + o + 4].as_ptr());
                let ai = _mm256_loadu_pd(f_im[p + o..p + o + 4].as_ptr());
                let br = _mm256_loadu_pd(y_re[cm + o..cm + o + 4].as_ptr());
                let bi = _mm256_loadu_pd(y_im[cm + o..cm + o + 4].as_ptr());
                let pr = _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi));
                let pi = _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br));
                accr[g] = _mm256_sub_pd(accr[g], pr);
                acci[g] = _mm256_sub_pd(acci[g], pi);
            }
        }
        // Divide by the pivot (excludes exact zero — no patch needed).
        for g in 0..groups {
            let o = 4 * g;
            let pr = _mm256_loadu_pd(f_re[dp + o..dp + o + 4].as_ptr());
            let pi = _mm256_loadu_pd(f_im[dp + o..dp + o + 4].as_ptr());
            let (qr, qi) = smith4(accr[g], acci[g], pr, pi);
            _mm256_storeu_pd(y_re[im + o..im + o + 4].as_mut_ptr(), qr);
            _mm256_storeu_pd(y_im[im + o..im + o + 4].as_mut_ptr(), qi);
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)]
    pub unsafe fn lane_factor_rows(
        f_re: &mut [f64],
        f_im: &mut [f64],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        e_target: &[usize],
        lanes: usize,
        tol: f64,
    ) -> Option<(usize, f64)> {
        let n = f_diag.len();
        let groups = lanes / 4;
        let mut cur = 0usize;
        for i in 0..n {
            for pos in f_row_ptr[i]..f_diag[i] {
                let j = f_col[pos];
                let (d, e) = (f_diag[j] + 1, f_row_ptr[j + 1]);
                let pm = pos * lanes;
                let dpm = f_diag[j] * lanes;
                // Multiplier lanes in place (≤ 2 register pairs at
                // MAX_LANES = 8). Pivots exclude exact zero, so smith4
                // needs no patch.
                let mut fr = [_mm256_setzero_pd(); super::MAX_LANES / 4];
                let mut fi = [_mm256_setzero_pd(); super::MAX_LANES / 4];
                for g in 0..groups {
                    let o = 4 * g;
                    let wr = _mm256_loadu_pd(f_re[pm + o..pm + o + 4].as_ptr());
                    let wi = _mm256_loadu_pd(f_im[pm + o..pm + o + 4].as_ptr());
                    let pr = _mm256_loadu_pd(f_re[dpm + o..dpm + o + 4].as_ptr());
                    let pi = _mm256_loadu_pd(f_im[dpm + o..dpm + o + 4].as_ptr());
                    let (qr, qi) = smith4(wr, wi, pr, pi);
                    _mm256_storeu_pd(f_re[pm + o..pm + o + 4].as_mut_ptr(), qr);
                    _mm256_storeu_pd(f_im[pm + o..pm + o + 4].as_mut_ptr(), qi);
                    fr[g] = qr;
                    fi[g] = qi;
                }
                for (q, &t) in (d..e).zip(&e_target[cur..cur + (e - d)]) {
                    let qm = q * lanes;
                    let tm = t * lanes;
                    for g in 0..groups {
                        let o = 4 * g;
                        let br = _mm256_loadu_pd(f_re[qm + o..qm + o + 4].as_ptr());
                        let bi = _mm256_loadu_pd(f_im[qm + o..qm + o + 4].as_ptr());
                        let pr = _mm256_sub_pd(_mm256_mul_pd(fr[g], br), _mm256_mul_pd(fi[g], bi));
                        let pi = _mm256_add_pd(_mm256_mul_pd(fr[g], bi), _mm256_mul_pd(fi[g], br));
                        let dr = _mm256_loadu_pd(f_re[tm + o..tm + o + 4].as_ptr());
                        let di = _mm256_loadu_pd(f_im[tm + o..tm + o + 4].as_ptr());
                        _mm256_storeu_pd(
                            f_re[tm + o..tm + o + 4].as_mut_ptr(),
                            _mm256_sub_pd(dr, pr),
                        );
                        _mm256_storeu_pd(
                            f_im[tm + o..tm + o + 4].as_mut_ptr(),
                            _mm256_sub_pd(di, pi),
                        );
                    }
                }
                cur += e - d;
            }
            // Vector screen first: a lane whose |re| or |im| already
            // exceeds 2·tol cannot fail the |pivot| < tol test, so the
            // scalar per-lane check (hypot included) only runs when some
            // lane slips past — which decides exactly as it always does.
            let dp = f_diag[i] * lanes;
            let t2 = _mm256_set1_pd(2.0 * tol);
            let sign = _mm256_set1_pd(-0.0);
            let mut need = 0u32;
            for g in 0..groups {
                let o = 4 * g;
                let ar = _mm256_andnot_pd(sign, _mm256_loadu_pd(f_re[dp + o..dp + o + 4].as_ptr()));
                let ai = _mm256_andnot_pd(sign, _mm256_loadu_pd(f_im[dp + o..dp + o + 4].as_ptr()));
                let pass = _mm256_or_pd(
                    _mm256_cmp_pd::<_CMP_GT_OQ>(ar, t2),
                    _mm256_cmp_pd::<_CMP_GT_OQ>(ai, t2),
                );
                need |= ((!_mm256_movemask_pd(pass) as u32) & 0xF) << (4 * g);
            }
            if need != 0 {
                if let Some(pm) = super::pivot_fail(f_re, f_im, dp, lanes, tol) {
                    return Some((i, pm));
                }
            }
        }
        None
    }

    /// Batched `Y(s) = base + s·C` assembly into lane-strided storage:
    /// broadcast stores at base positions, zero stores at fill-ins, then
    /// the cap accumulation with the lane `s` vectors held in registers.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_assemble(
        f_re: &mut [f64],
        f_im: &mut [f64],
        base: &[Complex],
        scatter: &[usize],
        fill_pos: &[usize],
        cap_slots: &[usize],
        cap_vals: &[f64],
        s_re: &[f64],
        s_im: &[f64],
        lanes: usize,
    ) {
        let groups = lanes / 4;
        for (k, &v) in base.iter().enumerate() {
            let p = scatter[k] * lanes;
            // `0.0 + v` in scalar first, so signed zeros match the
            // serial `fill(ZERO)` + `+=` result exactly.
            let vr = _mm256_set1_pd(0.0 + v.re);
            let vi = _mm256_set1_pd(0.0 + v.im);
            for g in 0..groups {
                let o = 4 * g;
                _mm256_storeu_pd(f_re[p + o..p + o + 4].as_mut_ptr(), vr);
                _mm256_storeu_pd(f_im[p + o..p + o + 4].as_mut_ptr(), vi);
            }
        }
        let z = _mm256_setzero_pd();
        for &fp in fill_pos {
            let p = fp * lanes;
            for g in 0..groups {
                let o = 4 * g;
                _mm256_storeu_pd(f_re[p + o..p + o + 4].as_mut_ptr(), z);
                _mm256_storeu_pd(f_im[p + o..p + o + 4].as_mut_ptr(), z);
            }
        }
        let mut sr = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        let mut si = [_mm256_setzero_pd(); super::MAX_LANES / 4];
        for g in 0..groups {
            let o = 4 * g;
            sr[g] = _mm256_loadu_pd(s_re[o..o + 4].as_ptr());
            si[g] = _mm256_loadu_pd(s_im[o..o + 4].as_ptr());
        }
        for (&slot, &c) in cap_slots.iter().zip(cap_vals) {
            let p = scatter[slot] * lanes;
            let cv = _mm256_set1_pd(c);
            for g in 0..groups {
                let o = 4 * g;
                let dr = _mm256_loadu_pd(f_re[p + o..p + o + 4].as_ptr());
                let di = _mm256_loadu_pd(f_im[p + o..p + o + 4].as_ptr());
                // mul-then-add, never fused: identical to `d + s·c`.
                _mm256_storeu_pd(
                    f_re[p + o..p + o + 4].as_mut_ptr(),
                    _mm256_add_pd(dr, _mm256_mul_pd(sr[g], cv)),
                );
                _mm256_storeu_pd(
                    f_im[p + o..p + o + 4].as_mut_ptr(),
                    _mm256_add_pd(di, _mm256_mul_pd(si[g], cv)),
                );
            }
        }
    }

    /// Four-wide real-coefficient Horner at `z = jω`, kept as the explicit
    /// `(0, ω)` complex multiply (no algebraic simplification, so lane
    /// rounding matches the scalar fold).
    #[inline(always)]
    unsafe fn horner_jw4(coeffs: &[f64], zr: __m256d, zi: __m256d) -> (__m256d, __m256d) {
        let mut ar = _mm256_setzero_pd();
        let mut ai = _mm256_setzero_pd();
        for &c in coeffs.iter().rev() {
            let tr = _mm256_sub_pd(_mm256_mul_pd(ar, zr), _mm256_mul_pd(ai, zi));
            let ti = _mm256_add_pd(_mm256_mul_pd(ar, zi), _mm256_mul_pd(ai, zr));
            ar = _mm256_add_pd(tr, _mm256_set1_pd(c));
            ai = ti;
        }
        (ar, ai)
    }

    /// Four-wide rational magnitudes: Horner via [`horner_jw4`], Smith
    /// division, then per-lane scalar `hypot`. Exact-zero denominators
    /// are redone with the scalar `Complex` divide, which short-circuits
    /// them.
    #[target_feature(enable = "avx2")]
    pub unsafe fn rational_mags(num: &[f64], den: &[f64], freqs_hz: &[f64], out: &mut [f64]) {
        let n = freqs_hz.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let mut w = [0.0f64; 4];
            for (wl, &f) in w.iter_mut().zip(&freqs_hz[i..i + 4]) {
                *wl = 2.0 * std::f64::consts::PI * f;
            }
            let zi = _mm256_loadu_pd(w.as_ptr());
            let zr = _mm256_setzero_pd();
            let (nr, ni) = horner_jw4(num, zr, zi);
            let (dr, di) = horner_jw4(den, zr, zi);
            let (qr, qi) = smith4(nr, ni, dr, di);
            let (mut drb, mut dib, mut qrb, mut qib) =
                ([0.0f64; 4], [0.0f64; 4], [0.0f64; 4], [0.0f64; 4]);
            _mm256_storeu_pd(drb.as_mut_ptr(), dr);
            _mm256_storeu_pd(dib.as_mut_ptr(), di);
            _mm256_storeu_pd(qrb.as_mut_ptr(), qr);
            _mm256_storeu_pd(qib.as_mut_ptr(), qi);
            let (mut nrb, mut nib) = ([0.0f64; 4], [0.0f64; 4]);
            _mm256_storeu_pd(nrb.as_mut_ptr(), nr);
            _mm256_storeu_pd(nib.as_mut_ptr(), ni);
            for l in 0..4 {
                let q = if drb[l] == 0.0 && dib[l] == 0.0 {
                    Complex::new(nrb[l], nib[l]) / Complex::new(drb[l], dib[l])
                } else {
                    Complex::new(qrb[l], qib[l])
                };
                out[i + l] = q.norm();
            }
            i += 4;
        }
        super::rational_mags_scalar(num, den, &freqs_hz[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_fwd_all(
        y_re: &mut [f64],
        y_im: &mut [f64],
        b: &[Complex],
        row_perm: &[usize],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        for i in 0..f_diag.len() {
            let bv = b[row_perm[i]];
            let (start, d) = (f_row_ptr[i], f_diag[i]);
            lane_fwd_row(
                y_re,
                y_im,
                i * lanes,
                bv.re,
                bv.im,
                &f_col[start..d],
                start * lanes,
                f_re,
                f_im,
                lanes,
            );
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn lane_bwd_all(
        y_re: &mut [f64],
        y_im: &mut [f64],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        for i in (0..f_diag.len()).rev() {
            let (d, e) = (f_diag[i], f_row_ptr[i + 1]);
            lane_bwd_row(
                y_re,
                y_im,
                i * lanes,
                &f_col[d + 1..e],
                (d + 1) * lanes,
                d * lanes,
                f_re,
                f_im,
                lanes,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::complex::Complex;
    use core::arch::aarch64::*;

    pub fn axpy_sub(dst: &mut [f64], src: &[f64], f: f64) {
        let n = dst.len();
        // SAFETY: NEON is mandatory on aarch64; loads/stores stay in-bounds.
        unsafe {
            let dp = dst.as_mut_ptr();
            let sp = src.as_ptr();
            let fv = vdupq_n_f64(f);
            let mut i = 0usize;
            while i + 2 <= n {
                let s = vld1q_f64(sp.add(i));
                let d = vld1q_f64(dp.add(i));
                let p = vmulq_f64(fv, s);
                vst1q_f64(dp.add(i), vsubq_f64(d, p));
                i += 2;
            }
            while i < n {
                *dp.add(i) -= f * *sp.add(i);
                i += 1;
            }
        }
    }

    pub fn caxpy_sub(dst: &mut [Complex], src: &[Complex], f: Complex) {
        let n = dst.len();
        // SAFETY: Complex is #[repr(C)] { re, im }; one 128-bit vector holds
        // one complex value.
        unsafe {
            let dp = dst.as_mut_ptr().cast::<f64>();
            let sp = src.as_ptr().cast::<f64>();
            let fre = vdupq_n_f64(f.re);
            let fim = vdupq_n_f64(f.im);
            // Sign mask flipping lane 0 only: t1 + (−t2₀, +t2₁) ≡
            // (t1₀ − t2₀, t1₁ + t2₁), bit-identical to sub/add.
            let signmask = vreinterpretq_f64_u64(vcombine_u64(
                vcreate_u64(0x8000_0000_0000_0000),
                vcreate_u64(0),
            ));
            for i in 0..n {
                let v = vld1q_f64(sp.add(2 * i)); // [re, im]
                let t1 = vmulq_f64(fre, v); // [fre·re, fre·im]
                let vs = vextq_f64(v, v, 1); // [im, re]
                let t2 = vmulq_f64(fim, vs); // [fim·im, fim·re]
                let t2s = vreinterpretq_f64_u64(veorq_u64(
                    vreinterpretq_u64_f64(t2),
                    vreinterpretq_u64_f64(signmask),
                ));
                let prod = vaddq_f64(t1, t2s);
                let d = vld1q_f64(dp.add(2 * i));
                vst1q_f64(dp.add(2 * i), vsubq_f64(d, prod));
            }
        }
    }

    pub fn scatter_add_scaled(out: &mut [Complex], slots: &[usize], vals: &[f64], s: Complex) {
        let n = vals.len();
        // SAFETY: slot bounds are checked by the indexed accumulation below.
        unsafe {
            let sre = vdupq_n_f64(s.re);
            let sim = vdupq_n_f64(s.im);
            let mut pre = [0.0f64; 2];
            let mut pim = [0.0f64; 2];
            let mut k = 0usize;
            while k + 2 <= n {
                let v = vld1q_f64(vals.as_ptr().add(k));
                vst1q_f64(pre.as_mut_ptr(), vmulq_f64(sre, v));
                vst1q_f64(pim.as_mut_ptr(), vmulq_f64(sim, v));
                for lane in 0..2 {
                    let o = &mut out[slots[k + lane]];
                    o.re += pre[lane];
                    o.im += pim[lane];
                }
                k += 2;
            }
            while k < n {
                out[slots[k]] += s * vals[k];
                k += 1;
            }
        }
    }

    pub fn scatter_axpy_sub(w: &mut [f64], cols: &[usize], vals: &[f64], f: f64) {
        let n = vals.len();
        // SAFETY: column bounds are checked by the indexed subtraction below.
        unsafe {
            let fv = vdupq_n_f64(f);
            let mut prod = [0.0f64; 2];
            let mut q = 0usize;
            while q + 2 <= n {
                let v = vld1q_f64(vals.as_ptr().add(q));
                vst1q_f64(prod.as_mut_ptr(), vmulq_f64(fv, v));
                for lane in 0..2 {
                    w[cols[q + lane]] -= prod[lane];
                }
                q += 2;
            }
            while q < n {
                w[cols[q]] -= f * vals[q];
                q += 1;
            }
        }
    }

    pub fn scatter_caxpy_sub(w: &mut [Complex], cols: &[usize], vals: &[Complex], f: Complex) {
        // One 128-bit vector per complex product; the scattered subtraction
        // is scalar either way, so reuse the caxpy product path per entry.
        for (&c, &v) in cols.iter().zip(vals) {
            w[c] -= f * v;
        }
    }

    pub fn lane_cmul_sub(
        dr: &mut [f64],
        di: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
    ) {
        let n = dr.len();
        // SAFETY: all six slices share length n (asserted by the caller).
        unsafe {
            let mut l = 0usize;
            while l + 2 <= n {
                let var = vld1q_f64(ar.as_ptr().add(l));
                let vai = vld1q_f64(ai.as_ptr().add(l));
                let vbr = vld1q_f64(br.as_ptr().add(l));
                let vbi = vld1q_f64(bi.as_ptr().add(l));
                let pr = vsubq_f64(vmulq_f64(var, vbr), vmulq_f64(vai, vbi));
                let pi = vaddq_f64(vmulq_f64(var, vbi), vmulq_f64(vai, vbr));
                let vdr = vld1q_f64(dr.as_ptr().add(l));
                let vdi = vld1q_f64(di.as_ptr().add(l));
                vst1q_f64(dr.as_mut_ptr().add(l), vsubq_f64(vdr, pr));
                vst1q_f64(di.as_mut_ptr().add(l), vsubq_f64(vdi, pi));
                l += 2;
            }
            while l < n {
                let pr = ar[l] * br[l] - ai[l] * bi[l];
                let pi = ar[l] * bi[l] + ai[l] * br[l];
                dr[l] -= pr;
                di[l] -= pi;
                l += 1;
            }
        }
    }

    /// Two-lane Smith division, bit-identical per lane to `Complex::div`'s
    /// branchy scalar code via operand blends on `|br| ≥ |bi|` (see the
    /// AVX2 `smith4` notes). Does **not** reproduce the exact-zero
    /// short-circuit — callers exclude or patch those lanes.
    #[inline(always)]
    unsafe fn smith2(
        ar: float64x2_t,
        ai: float64x2_t,
        br: float64x2_t,
        bi: float64x2_t,
    ) -> (float64x2_t, float64x2_t) {
        // Branch predicate |br| ≥ |bi| (false on NaN, like scalar).
        let mask = vcgeq_f64(vabsq_f64(br), vabsq_f64(bi));
        // r = (A: bi/br, B: br/bi); d = (A: br + bi·r, B: bi + br·r).
        let num = vbslq_f64(mask, bi, br);
        let den = vbslq_f64(mask, br, bi);
        let r = vdivq_f64(num, den);
        let d = vaddq_f64(den, vmulq_f64(num, r));
        let sel_a = vbslq_f64(mask, ar, ai);
        let sel_b = vbslq_f64(mask, ai, ar);
        let num_re = vaddq_f64(sel_a, vmulq_f64(sel_b, r));
        // Non-commutative imaginary part: compute both branch results,
        // blend the results.
        let t = vmulq_f64(sel_a, r);
        let u = vsubq_f64(ai, t);
        let v = vsubq_f64(t, ar);
        let num_im = vbslq_f64(mask, u, v);
        (vdivq_f64(num_re, d), vdivq_f64(num_im, d))
    }

    pub fn lane_cdiv(
        qr: &mut [f64],
        qi: &mut [f64],
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
    ) {
        let n = qr.len();
        // SAFETY: all six slices share length n (asserted by the caller).
        unsafe {
            let zero = vdupq_n_f64(0.0);
            let mut l = 0usize;
            while l + 2 <= n {
                let var = vld1q_f64(ar.as_ptr().add(l));
                let vai = vld1q_f64(ai.as_ptr().add(l));
                let vbr = vld1q_f64(br.as_ptr().add(l));
                let vbi = vld1q_f64(bi.as_ptr().add(l));
                let (q_re, q_im) = smith2(var, vai, vbr, vbi);
                vst1q_f64(qr.as_mut_ptr().add(l), q_re);
                vst1q_f64(qi.as_mut_ptr().add(l), q_im);
                // Exact-zero denominators: patch to the scalar short-circuit
                // (divide by literal +0.0).
                let zmask = vandq_u64(vceqq_f64(vbr, zero), vceqq_f64(vbi, zero));
                if vgetq_lane_u64(zmask, 0) != 0 {
                    qr[l] = ar[l] / 0.0;
                    qi[l] = ai[l] / 0.0;
                }
                if vgetq_lane_u64(zmask, 1) != 0 {
                    qr[l + 1] = ar[l + 1] / 0.0;
                    qi[l + 1] = ai[l + 1] / 0.0;
                }
                l += 2;
            }
            while l < n {
                let q = Complex::new(ar[l], ai[l]) / Complex::new(br[l], bi[l]);
                qr[l] = q.re;
                qi[l] = q.im;
                l += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_eliminate_row(
        w_re: &mut [f64],
        w_im: &mut [f64],
        jm: usize,
        dp: usize,
        cols: &[usize],
        p0: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 2 == 0 && lanes <= super::MAX_LANES);
        let groups = lanes / 2;
        // SAFETY: slice indexing bounds-checks every vector load/store span.
        unsafe {
            let mut fr = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            let mut fi = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            for g in 0..groups {
                let o = 2 * g;
                let wr = vld1q_f64(w_re[jm + o..jm + o + 2].as_ptr());
                let wi = vld1q_f64(w_im[jm + o..jm + o + 2].as_ptr());
                let pr = vld1q_f64(f_re[dp + o..dp + o + 2].as_ptr());
                let pi = vld1q_f64(f_im[dp + o..dp + o + 2].as_ptr());
                let (qr, qi) = smith2(wr, wi, pr, pi);
                vst1q_f64(w_re[jm + o..jm + o + 2].as_mut_ptr(), qr);
                vst1q_f64(w_im[jm + o..jm + o + 2].as_mut_ptr(), qi);
                fr[g] = qr;
                fi[g] = qi;
            }
            for (q, &c) in cols.iter().enumerate() {
                let cm = c * lanes;
                let p = p0 + q * lanes;
                for g in 0..groups {
                    let o = 2 * g;
                    let br = vld1q_f64(f_re[p + o..p + o + 2].as_ptr());
                    let bi = vld1q_f64(f_im[p + o..p + o + 2].as_ptr());
                    let pr = vsubq_f64(vmulq_f64(fr[g], br), vmulq_f64(fi[g], bi));
                    let pi = vaddq_f64(vmulq_f64(fr[g], bi), vmulq_f64(fi[g], br));
                    let dr = vld1q_f64(w_re[cm + o..cm + o + 2].as_ptr());
                    let di = vld1q_f64(w_im[cm + o..cm + o + 2].as_ptr());
                    vst1q_f64(w_re[cm + o..cm + o + 2].as_mut_ptr(), vsubq_f64(dr, pr));
                    vst1q_f64(w_im[cm + o..cm + o + 2].as_mut_ptr(), vsubq_f64(di, pi));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_fwd_row(
        y_re: &mut [f64],
        y_im: &mut [f64],
        im: usize,
        b_re: f64,
        b_im: f64,
        cols: &[usize],
        p0: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 2 == 0 && lanes <= super::MAX_LANES);
        let groups = lanes / 2;
        // SAFETY: slice indexing bounds-checks every vector load/store span.
        unsafe {
            let mut accr = [vdupq_n_f64(b_re); super::MAX_LANES / 2];
            let mut acci = [vdupq_n_f64(b_im); super::MAX_LANES / 2];
            for (q, &c) in cols.iter().enumerate() {
                let cm = c * lanes;
                let p = p0 + q * lanes;
                for g in 0..groups {
                    let o = 2 * g;
                    let ar = vld1q_f64(f_re[p + o..p + o + 2].as_ptr());
                    let ai = vld1q_f64(f_im[p + o..p + o + 2].as_ptr());
                    let br = vld1q_f64(y_re[cm + o..cm + o + 2].as_ptr());
                    let bi = vld1q_f64(y_im[cm + o..cm + o + 2].as_ptr());
                    let pr = vsubq_f64(vmulq_f64(ar, br), vmulq_f64(ai, bi));
                    let pi = vaddq_f64(vmulq_f64(ar, bi), vmulq_f64(ai, br));
                    accr[g] = vsubq_f64(accr[g], pr);
                    acci[g] = vsubq_f64(acci[g], pi);
                }
            }
            for g in 0..groups {
                let o = 2 * g;
                vst1q_f64(y_re[im + o..im + o + 2].as_mut_ptr(), accr[g]);
                vst1q_f64(y_im[im + o..im + o + 2].as_mut_ptr(), acci[g]);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_bwd_row(
        y_re: &mut [f64],
        y_im: &mut [f64],
        im: usize,
        cols: &[usize],
        p0: usize,
        dp: usize,
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        debug_assert!(lanes % 2 == 0 && lanes <= super::MAX_LANES);
        let groups = lanes / 2;
        // SAFETY: slice indexing bounds-checks every vector load/store span.
        unsafe {
            let mut accr = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            let mut acci = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            for g in 0..groups {
                let o = 2 * g;
                accr[g] = vld1q_f64(y_re[im + o..im + o + 2].as_ptr());
                acci[g] = vld1q_f64(y_im[im + o..im + o + 2].as_ptr());
            }
            for (q, &c) in cols.iter().enumerate() {
                let cm = c * lanes;
                let p = p0 + q * lanes;
                for g in 0..groups {
                    let o = 2 * g;
                    let ar = vld1q_f64(f_re[p + o..p + o + 2].as_ptr());
                    let ai = vld1q_f64(f_im[p + o..p + o + 2].as_ptr());
                    let br = vld1q_f64(y_re[cm + o..cm + o + 2].as_ptr());
                    let bi = vld1q_f64(y_im[cm + o..cm + o + 2].as_ptr());
                    let pr = vsubq_f64(vmulq_f64(ar, br), vmulq_f64(ai, bi));
                    let pi = vaddq_f64(vmulq_f64(ar, bi), vmulq_f64(ai, br));
                    accr[g] = vsubq_f64(accr[g], pr);
                    acci[g] = vsubq_f64(acci[g], pi);
                }
            }
            for g in 0..groups {
                let o = 2 * g;
                let pr = vld1q_f64(f_re[dp + o..dp + o + 2].as_ptr());
                let pi = vld1q_f64(f_im[dp + o..dp + o + 2].as_ptr());
                let (qr, qi) = smith2(accr[g], acci[g], pr, pi);
                vst1q_f64(y_re[im + o..im + o + 2].as_mut_ptr(), qr);
                vst1q_f64(y_im[im + o..im + o + 2].as_mut_ptr(), qi);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_factor_rows(
        f_re: &mut [f64],
        f_im: &mut [f64],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        e_target: &[usize],
        lanes: usize,
        tol: f64,
    ) -> Option<(usize, f64)> {
        let n = f_diag.len();
        let groups = lanes / 2;
        let mut cur = 0usize;
        for i in 0..n {
            for pos in f_row_ptr[i]..f_diag[i] {
                let j = f_col[pos];
                let (d, e) = (f_diag[j] + 1, f_row_ptr[j + 1]);
                let pm = pos * lanes;
                let dpm = f_diag[j] * lanes;
                // SAFETY: NEON is mandatory on aarch64; slice indexing
                // bounds-checks every load/store span.
                unsafe {
                    // Multiplier lanes in place. Pivots exclude exact
                    // zero, so smith2 needs no patch.
                    let mut fr = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
                    let mut fi = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
                    for g in 0..groups {
                        let o = 2 * g;
                        let wr = vld1q_f64(f_re[pm + o..pm + o + 2].as_ptr());
                        let wi = vld1q_f64(f_im[pm + o..pm + o + 2].as_ptr());
                        let pr = vld1q_f64(f_re[dpm + o..dpm + o + 2].as_ptr());
                        let pi = vld1q_f64(f_im[dpm + o..dpm + o + 2].as_ptr());
                        let (qr, qi) = smith2(wr, wi, pr, pi);
                        vst1q_f64(f_re[pm + o..pm + o + 2].as_mut_ptr(), qr);
                        vst1q_f64(f_im[pm + o..pm + o + 2].as_mut_ptr(), qi);
                        fr[g] = qr;
                        fi[g] = qi;
                    }
                    for (q, &t) in (d..e).zip(&e_target[cur..cur + (e - d)]) {
                        let qm = q * lanes;
                        let tm = t * lanes;
                        for g in 0..groups {
                            let o = 2 * g;
                            let br = vld1q_f64(f_re[qm + o..qm + o + 2].as_ptr());
                            let bi = vld1q_f64(f_im[qm + o..qm + o + 2].as_ptr());
                            let pr = vsubq_f64(vmulq_f64(fr[g], br), vmulq_f64(fi[g], bi));
                            let pi = vaddq_f64(vmulq_f64(fr[g], bi), vmulq_f64(fi[g], br));
                            let dr = vld1q_f64(f_re[tm + o..tm + o + 2].as_ptr());
                            let di = vld1q_f64(f_im[tm + o..tm + o + 2].as_ptr());
                            vst1q_f64(f_re[tm + o..tm + o + 2].as_mut_ptr(), vsubq_f64(dr, pr));
                            vst1q_f64(f_im[tm + o..tm + o + 2].as_mut_ptr(), vsubq_f64(di, pi));
                        }
                    }
                }
                cur += e - d;
            }
            if let Some(pm) = super::pivot_fail(f_re, f_im, f_diag[i] * lanes, lanes, tol) {
                return Some((i, pm));
            }
        }
        None
    }

    /// Batched `Y(s) = base + s·C` assembly into lane-strided storage:
    /// broadcast stores at base positions, zero stores at fill-ins, then
    /// the cap accumulation with the lane `s` vectors held in registers.
    #[allow(clippy::too_many_arguments)]
    pub fn lane_assemble(
        f_re: &mut [f64],
        f_im: &mut [f64],
        base: &[Complex],
        scatter: &[usize],
        fill_pos: &[usize],
        cap_slots: &[usize],
        cap_vals: &[f64],
        s_re: &[f64],
        s_im: &[f64],
        lanes: usize,
    ) {
        let groups = lanes / 2;
        // SAFETY: NEON is mandatory on aarch64; slice indexing
        // bounds-checks every load/store span.
        unsafe {
            for (k, &v) in base.iter().enumerate() {
                let p = scatter[k] * lanes;
                // `0.0 + v` in scalar first, so signed zeros match the
                // serial `fill(ZERO)` + `+=` result exactly.
                let vr = vdupq_n_f64(0.0 + v.re);
                let vi = vdupq_n_f64(0.0 + v.im);
                for g in 0..groups {
                    let o = 2 * g;
                    vst1q_f64(f_re[p + o..p + o + 2].as_mut_ptr(), vr);
                    vst1q_f64(f_im[p + o..p + o + 2].as_mut_ptr(), vi);
                }
            }
            let z = vdupq_n_f64(0.0);
            for &fp in fill_pos {
                let p = fp * lanes;
                for g in 0..groups {
                    let o = 2 * g;
                    vst1q_f64(f_re[p + o..p + o + 2].as_mut_ptr(), z);
                    vst1q_f64(f_im[p + o..p + o + 2].as_mut_ptr(), z);
                }
            }
            let mut sr = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            let mut si = [vdupq_n_f64(0.0); super::MAX_LANES / 2];
            for g in 0..groups {
                let o = 2 * g;
                sr[g] = vld1q_f64(s_re[o..o + 2].as_ptr());
                si[g] = vld1q_f64(s_im[o..o + 2].as_ptr());
            }
            for (&slot, &c) in cap_slots.iter().zip(cap_vals) {
                let p = scatter[slot] * lanes;
                let cv = vdupq_n_f64(c);
                for g in 0..groups {
                    let o = 2 * g;
                    let dr = vld1q_f64(f_re[p + o..p + o + 2].as_ptr());
                    let di = vld1q_f64(f_im[p + o..p + o + 2].as_ptr());
                    // mul-then-add, never fused: identical to `d + s·c`.
                    vst1q_f64(
                        f_re[p + o..p + o + 2].as_mut_ptr(),
                        vaddq_f64(dr, vmulq_f64(sr[g], cv)),
                    );
                    vst1q_f64(
                        f_im[p + o..p + o + 2].as_mut_ptr(),
                        vaddq_f64(di, vmulq_f64(si[g], cv)),
                    );
                }
            }
        }
    }

    /// Two-wide real-coefficient Horner at `z = jω`, kept as the explicit
    /// `(0, ω)` complex multiply (no algebraic simplification, so lane
    /// rounding matches the scalar fold).
    #[inline(always)]
    unsafe fn horner_jw2(
        coeffs: &[f64],
        zr: float64x2_t,
        zi: float64x2_t,
    ) -> (float64x2_t, float64x2_t) {
        let mut ar = vdupq_n_f64(0.0);
        let mut ai = vdupq_n_f64(0.0);
        for &c in coeffs.iter().rev() {
            let tr = vsubq_f64(vmulq_f64(ar, zr), vmulq_f64(ai, zi));
            let ti = vaddq_f64(vmulq_f64(ar, zi), vmulq_f64(ai, zr));
            ar = vaddq_f64(tr, vdupq_n_f64(c));
            ai = ti;
        }
        (ar, ai)
    }

    /// Two-wide rational magnitudes: Horner via [`horner_jw2`], Smith
    /// division, then per-lane scalar `hypot`. Exact-zero denominators
    /// are redone with the scalar `Complex` divide, which short-circuits
    /// them.
    pub fn rational_mags(num: &[f64], den: &[f64], freqs_hz: &[f64], out: &mut [f64]) {
        let n = freqs_hz.len();
        let mut i = 0usize;
        // SAFETY: NEON is mandatory on aarch64; loads/stores go through
        // fixed-size stack buffers.
        unsafe {
            let zr = vdupq_n_f64(0.0);
            while i + 2 <= n {
                let mut w = [0.0f64; 2];
                for (wl, &f) in w.iter_mut().zip(&freqs_hz[i..i + 2]) {
                    *wl = 2.0 * std::f64::consts::PI * f;
                }
                let zi = vld1q_f64(w.as_ptr());
                let (nr, ni) = horner_jw2(num, zr, zi);
                let (dr, di) = horner_jw2(den, zr, zi);
                let (qr, qi) = smith2(nr, ni, dr, di);
                let (mut drb, mut dib, mut qrb, mut qib) =
                    ([0.0f64; 2], [0.0f64; 2], [0.0f64; 2], [0.0f64; 2]);
                vst1q_f64(drb.as_mut_ptr(), dr);
                vst1q_f64(dib.as_mut_ptr(), di);
                vst1q_f64(qrb.as_mut_ptr(), qr);
                vst1q_f64(qib.as_mut_ptr(), qi);
                let (mut nrb, mut nib) = ([0.0f64; 2], [0.0f64; 2]);
                vst1q_f64(nrb.as_mut_ptr(), nr);
                vst1q_f64(nib.as_mut_ptr(), ni);
                for l in 0..2 {
                    let q = if drb[l] == 0.0 && dib[l] == 0.0 {
                        Complex::new(nrb[l], nib[l]) / Complex::new(drb[l], dib[l])
                    } else {
                        Complex::new(qrb[l], qib[l])
                    };
                    out[i + l] = q.norm();
                }
                i += 2;
            }
        }
        super::rational_mags_scalar(num, den, &freqs_hz[i..], &mut out[i..]);
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_fwd_all(
        y_re: &mut [f64],
        y_im: &mut [f64],
        b: &[Complex],
        row_perm: &[usize],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        for i in 0..f_diag.len() {
            let bv = b[row_perm[i]];
            let (start, d) = (f_row_ptr[i], f_diag[i]);
            lane_fwd_row(
                y_re,
                y_im,
                i * lanes,
                bv.re,
                bv.im,
                &f_col[start..d],
                start * lanes,
                f_re,
                f_im,
                lanes,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn lane_bwd_all(
        y_re: &mut [f64],
        y_im: &mut [f64],
        f_row_ptr: &[usize],
        f_col: &[usize],
        f_diag: &[usize],
        f_re: &[f64],
        f_im: &[f64],
        lanes: usize,
    ) {
        for i in (0..f_diag.len()).rev() {
            let (d, e) = (f_diag[i], f_row_ptr[i + 1]);
            lane_bwd_row(
                y_re,
                y_im,
                i * lanes,
                &f_col[d + 1..e],
                (d + 1) * lanes,
                d * lanes,
                f_re,
                f_im,
                lanes,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: f64) -> u64 {
        v.to_bits()
    }

    #[test]
    fn backend_name_is_consistent() {
        let b = backend();
        let name = backend_name();
        match b {
            Backend::Scalar => assert_eq!(name, "scalar"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => assert_eq!(name, "avx2"),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => assert_eq!(name, "neon"),
        }
        assert_eq!(backend(), b, "detection is cached");
    }

    #[test]
    fn axpy_sub_matches_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 7, 16, 33] {
            let src: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() * 1e3).collect();
            let mut a: Vec<f64> = (0..n).map(|i| (i as f64 * 1.37).cos()).collect();
            let mut b = a.clone();
            let f = -0.62591;
            axpy_sub(&mut a, &src, f);
            axpy_sub_scalar(&mut b, &src, f);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(bits(*x), bits(*y), "n={n}");
            }
        }
    }

    #[test]
    fn caxpy_sub_matches_scalar_bitwise() {
        for n in [0usize, 1, 2, 3, 5, 8, 17] {
            let src: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos() * 1e-4))
                .collect();
            let mut a: Vec<Complex> = (0..n)
                .map(|i| Complex::new(1.0 + i as f64, -0.25 * i as f64))
                .collect();
            let mut b = a.clone();
            let f = Complex::new(0.37, -1.85);
            caxpy_sub(&mut a, &src, f);
            caxpy_sub_scalar(&mut b, &src, f);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(bits(x.re), bits(y.re), "n={n}");
                assert_eq!(bits(x.im), bits(y.im), "n={n}");
            }
        }
    }

    #[test]
    fn scatter_kernels_match_scalar_bitwise() {
        let slots: Vec<usize> = vec![0, 3, 1, 3, 2, 0, 4, 4, 1, 0, 2];
        let vals: Vec<f64> = (0..slots.len()).map(|k| 0.1 + k as f64 * 0.37).collect();
        let s = Complex::new(0.25, -1.5);

        let mut a = vec![Complex::ZERO; 5];
        let mut b = vec![Complex::ZERO; 5];
        scatter_add_scaled(&mut a, &slots, &vals, s);
        scatter_add_scaled_scalar(&mut b, &slots, &vals, s);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(bits(x.re), bits(y.re));
            assert_eq!(bits(x.im), bits(y.im));
        }

        let mut wa: Vec<f64> = (0..6).map(|i| i as f64 * 0.5).collect();
        let mut wb = wa.clone();
        let cols = [5usize, 1, 4, 0, 2, 3, 1];
        let fv: Vec<f64> = (0..cols.len()).map(|k| (k as f64 + 0.5) * -0.3).collect();
        scatter_axpy_sub(&mut wa, &cols, &fv, 1.75);
        scatter_axpy_sub_scalar(&mut wb, &cols, &fv, 1.75);
        for (x, y) in wa.iter().zip(&wb) {
            assert_eq!(bits(*x), bits(*y));
        }

        let mut ca: Vec<Complex> = (0..6)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut cb = ca.clone();
        let cvals: Vec<Complex> = (0..cols.len())
            .map(|k| Complex::new(0.2 * k as f64, 1.0 - 0.1 * k as f64))
            .collect();
        let f = Complex::new(-0.8, 0.45);
        scatter_caxpy_sub(&mut ca, &cols, &cvals, f);
        scatter_caxpy_sub_scalar(&mut cb, &cols, &cvals, f);
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(bits(x.re), bits(y.re));
            assert_eq!(bits(x.im), bits(y.im));
        }
    }

    #[test]
    fn lane_cdiv_matches_scalar_bitwise() {
        // Mixed magnitudes exercise both Smith branches; lanes with exact
        // zero (±0), negative-zero and NaN denominators exercise the
        // short-circuit/unordered paths; 1e-310 exercises subnormals.
        let ar = [1.5, -2.0, 0.3, 1e120, -1e-310, 7.0, 0.0, 3.25, -0.5];
        let ai = [-0.25, 4.0, -1e-310, 2.5, 1e100, -0.125, 1.0, 0.0, 2.0];
        let br = [3.0, 1e-3, 0.0, -0.0, 1e-310, f64::NAN, 2.0, -4.0, 0.5];
        let bi = [0.5, -2e3, 0.0, 0.0, -2e-310, 1.0, f64::NAN, 1e-300, -0.5];
        let n = ar.len();
        for len in [0usize, 1, 2, 3, 4, 5, 7, n] {
            let mut qr1 = vec![0.0f64; len];
            let mut qi1 = vec![0.0f64; len];
            let mut qr2 = vec![0.0f64; len];
            let mut qi2 = vec![0.0f64; len];
            lane_cdiv(
                &mut qr1,
                &mut qi1,
                &ar[..len],
                &ai[..len],
                &br[..len],
                &bi[..len],
            );
            lane_cdiv_scalar(
                &mut qr2,
                &mut qi2,
                &ar[..len],
                &ai[..len],
                &br[..len],
                &bi[..len],
            );
            for l in 0..len {
                assert_eq!(bits(qr1[l]), bits(qr2[l]), "len={len} l={l} re");
                assert_eq!(bits(qi1[l]), bits(qi2[l]), "len={len} l={l} im");
            }
        }
        // And against the Complex operator directly.
        let mut qr = vec![0.0f64; n];
        let mut qi = vec![0.0f64; n];
        lane_cdiv(&mut qr, &mut qi, &ar, &ai, &br, &bi);
        for l in 0..n {
            let q = Complex::new(ar[l], ai[l]) / Complex::new(br[l], bi[l]);
            assert_eq!(bits(qr[l]), bits(q.re), "l={l} re");
            assert_eq!(bits(qi[l]), bits(q.im), "l={l} im");
        }
    }

    #[test]
    fn lane_cmul_sub_matches_scalar_bitwise() {
        for n in [1usize, 2, 3, 4, 5, 8] {
            let ar: Vec<f64> = (0..n).map(|l| 0.3 + l as f64).collect();
            let ai: Vec<f64> = (0..n).map(|l| -1.2 * l as f64).collect();
            let br: Vec<f64> = (0..n).map(|l| (l as f64).cos()).collect();
            let bi: Vec<f64> = (0..n).map(|l| (l as f64 * 2.0).sin()).collect();
            let mut dr1: Vec<f64> = (0..n).map(|l| l as f64 * 0.7).collect();
            let mut di1: Vec<f64> = (0..n).map(|l| 1.0 - l as f64).collect();
            let mut dr2 = dr1.clone();
            let mut di2 = di1.clone();
            lane_cmul_sub(&mut dr1, &mut di1, &ar, &ai, &br, &bi);
            lane_cmul_sub_scalar(&mut dr2, &mut di2, &ar, &ai, &br, &bi);
            for l in 0..n {
                assert_eq!(bits(dr1[l]), bits(dr2[l]), "n={n} l={l}");
                assert_eq!(bits(di1[l]), bits(di2[l]), "n={n} l={l}");
            }
        }
    }
}
