//! Polynomial root finding.
//!
//! The primary entry point is [`poly_roots`], an Aberth–Ehrlich simultaneous
//! iteration with a Cauchy-bound initial circle. Degrees 1 and 2 are solved
//! in closed form (with the numerically stable quadratic formula); the
//! iteration is used from degree 3 upward. Transfer functions arising from
//! the DPI/SFG analysis have modest degree (≤ ~10) but widely spread root
//! magnitudes (circuit poles span MHz–GHz), so the implementation scales
//! coefficients and polishes results with a few Newton steps.

use crate::complex::Complex;

/// Maximum Aberth iterations before declaring non-convergence (the best
/// iterate so far is still returned; circuit analysis treats this as a
/// degraded-accuracy result rather than a hard failure).
const MAX_ITER: usize = 200;

/// Convergence tolerance on the relative correction size.
const TOL: f64 = 1e-13;

/// Computes all complex roots of the polynomial with ascending real
/// coefficients `coeffs` (`coeffs[k]` multiplies `x^k`).
///
/// Leading and trailing zero coefficients are handled: trailing structural
/// zeros become roots at the origin; a (near-)zero leading coefficient
/// reduces the effective degree.
///
/// Returns an empty vector for constant or zero polynomials.
///
/// # Example
/// ```
/// use adc_numerics::roots::poly_roots;
/// let r = poly_roots(&[2.0, -3.0, 1.0]); // (x-1)(x-2)
/// assert_eq!(r.len(), 2);
/// ```
pub fn poly_roots(coeffs: &[f64]) -> Vec<Complex> {
    // Strip high-order zeros.
    let mut hi = coeffs.len();
    while hi > 0 && coeffs[hi - 1] == 0.0 {
        hi -= 1;
    }
    if hi <= 1 {
        return Vec::new();
    }
    // Roots at the origin from trailing (low-order) zeros.
    let mut lo = 0;
    while lo < hi && coeffs[lo] == 0.0 {
        lo += 1;
    }
    let mut out = vec![Complex::ZERO; lo];
    let work: Vec<f64> = coeffs[lo..hi].to_vec();
    if work.len() <= 1 {
        return out;
    }
    out.extend(roots_nonzero(&work));
    out
}

/// Roots of a polynomial with nonzero constant and leading coefficients.
fn roots_nonzero(coeffs: &[f64]) -> Vec<Complex> {
    let n = coeffs.len() - 1;
    match n {
        1 => vec![Complex::from_real(-coeffs[0] / coeffs[1])],
        2 => quadratic_roots(coeffs[0], coeffs[1], coeffs[2]),
        _ => aberth(coeffs),
    }
}

/// Numerically stable quadratic formula for `c + b x + a x²`.
pub fn quadratic_roots(c: f64, b: f64, a: f64) -> Vec<Complex> {
    debug_assert!(a != 0.0);
    let disc = b * b - 4.0 * a * c;
    if disc >= 0.0 {
        let sq = disc.sqrt();
        // q = -(b + sign(b)·sqrt(disc))/2 avoids cancellation.
        let q = -0.5 * (b + sq.copysign(if b == 0.0 { 1.0 } else { b }));
        if q == 0.0 {
            // b == 0 and c == 0: double root at origin.
            return vec![Complex::ZERO, Complex::ZERO];
        }
        vec![Complex::from_real(q / a), Complex::from_real(c / q)]
    } else {
        let re = -b / (2.0 * a);
        let im = (-disc).sqrt() / (2.0 * a);
        vec![Complex::new(re, im), Complex::new(re, -im)]
    }
}

/// Evaluates p and p' at `z` via one Horner pass.
fn eval_with_derivative(coeffs: &[f64], z: Complex) -> (Complex, Complex) {
    let mut p = Complex::ZERO;
    let mut dp = Complex::ZERO;
    for &c in coeffs.iter().rev() {
        dp = dp * z + p;
        p = p * z + c;
    }
    (p, dp)
}

/// Aberth–Ehrlich simultaneous root refinement.
fn aberth(coeffs: &[f64]) -> Vec<Complex> {
    let n = coeffs.len() - 1;
    // Scale to monic for bound computation (work on original for evaluation
    // to avoid altering conditioning).
    let lead = coeffs[n];
    // Cauchy-style radius bounds: all roots lie in r_low <= |z| <= r_high.
    let r_high = 1.0
        + coeffs[..n]
            .iter()
            .map(|&c| (c / lead).abs())
            .fold(0.0_f64, f64::max);
    let c0 = coeffs[0];
    let r_low = (c0.abs()
        / (c0.abs() + coeffs[1..].iter().map(|&c| c.abs()).fold(0.0_f64, f64::max)))
    .max(1e-30);
    let r0 = (r_high * r_low).sqrt().clamp(1e-30, 1e30);

    // Initial guesses on a circle, slightly perturbed off the real axis and
    // with an irrational angular offset so symmetric configurations do not
    // stall the iteration.
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64 + 0.354) / n as f64 + 0.5;
            Complex::from_polar(r0 * (1.0 + 0.05 * (k as f64 / n as f64)), theta)
        })
        .collect();

    for _ in 0..MAX_ITER {
        let mut max_step = 0.0_f64;
        for i in 0..n {
            let (p, dp) = eval_with_derivative(coeffs, z[i]);
            if p.norm() == 0.0 {
                continue;
            }
            let newton = if dp.norm() > 0.0 {
                p / dp
            } else {
                Complex::new(TOL, TOL)
            };
            // Aberth correction: subtract the repulsion of the other roots.
            let mut sum = Complex::ZERO;
            for (j, &zj) in z.iter().enumerate() {
                if j != i {
                    let d = z[i] - zj;
                    if d.norm_sqr() > 0.0 {
                        sum += d.inv();
                    }
                }
            }
            let denom = Complex::ONE - newton * sum;
            let step = if denom.norm() > 1e-300 {
                newton / denom
            } else {
                newton
            };
            z[i] -= step;
            let rel = step.norm() / (1.0 + z[i].norm());
            if rel > max_step {
                max_step = rel;
            }
        }
        if max_step < TOL {
            break;
        }
    }

    // Newton polish (helps multiple-ish roots settle).
    for zi in z.iter_mut() {
        for _ in 0..3 {
            let (p, dp) = eval_with_derivative(coeffs, *zi);
            if dp.norm() == 0.0 {
                break;
            }
            let step = p / dp;
            if !step.is_finite() || step.norm() < 1e-16 * (1.0 + zi.norm()) {
                break;
            }
            *zi -= step;
        }
    }

    // Conjugate pairing cleanup: real-coefficient polynomials have conjugate
    // root sets; snap tiny imaginary parts to zero.
    for zi in z.iter_mut() {
        if zi.im.abs() < 1e-9 * (1.0 + zi.re.abs()) {
            zi.im = 0.0;
        }
    }
    z
}

/// Sorts roots by (real part, imaginary part) — handy for deterministic
/// comparisons in tests and reports.
pub fn sort_roots(mut roots: Vec<Complex>) -> Vec<Complex> {
    roots.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
    });
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::Poly;

    fn assert_root_set(coeffs: &[f64], expected: &[Complex], tol: f64) {
        let got = sort_roots(poly_roots(coeffs));
        let want = sort_roots(expected.to_vec());
        assert_eq!(
            got.len(),
            want.len(),
            "root count mismatch: {got:?} vs {want:?}"
        );
        for (g, w) in got.iter().zip(want.iter()) {
            assert!(
                (*g - *w).norm() < tol * (1.0 + w.norm()),
                "root {g} != expected {w} (all: {got:?})"
            );
        }
    }

    #[test]
    fn linear_and_constant() {
        assert!(poly_roots(&[5.0]).is_empty());
        assert!(poly_roots(&[]).is_empty());
        assert_root_set(&[2.0, 4.0], &[Complex::from_real(-0.5)], 1e-14);
    }

    #[test]
    fn quadratic_real_and_complex() {
        assert_root_set(
            &[2.0, -3.0, 1.0],
            &[Complex::from_real(1.0), Complex::from_real(2.0)],
            1e-12,
        );
        assert_root_set(
            &[5.0, 2.0, 1.0],
            &[Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)],
            1e-12,
        );
    }

    #[test]
    fn quadratic_cancellation_resistant() {
        // x^2 - 1e8 x + 1 : roots ~1e8 and ~1e-8
        let r = sort_roots(poly_roots(&[1.0, -1e8, 1.0]));
        assert!((r[0].re - 1e-8).abs() < 1e-14);
        assert!((r[1].re - 1e8).abs() < 1.0);
    }

    #[test]
    fn cubic_known() {
        // (x-1)(x-2)(x-3) = -6 + 11x - 6x^2 + x^3
        assert_root_set(
            &[-6.0, 11.0, -6.0, 1.0],
            &[
                Complex::from_real(1.0),
                Complex::from_real(2.0),
                Complex::from_real(3.0),
            ],
            1e-9,
        );
    }

    #[test]
    fn widely_spread_circuit_poles() {
        // Poles at -1e4, -1e7, -1e9 (rad/s): typical OTA pole spread.
        let p = Poly::from_roots(&[-1e4, -1e7, -1e9]);
        let r = sort_roots(p.roots());
        let want = [-1e9, -1e7, -1e4];
        for (g, w) in r.iter().zip(want.iter()) {
            assert!((g.re - w).abs() < 1e-4 * w.abs(), "{} vs {}", g.re, w);
            assert!(g.im.abs() < 1e-3 * w.abs());
        }
    }

    #[test]
    fn roots_at_origin() {
        // x^2 (x+3)
        let r = sort_roots(poly_roots(&[0.0, 0.0, 3.0, 1.0]));
        assert_eq!(r.len(), 3);
        assert!((r[0].re + 3.0).abs() < 1e-9);
        assert!(r[1].norm() < 1e-12 && r[2].norm() < 1e-12);
    }

    #[test]
    fn conjugate_pair_with_real_root() {
        // (x+2)(x^2 + 2x + 10): roots -2, -1±3i
        let p = &Poly::from_roots(&[-2.0]) * &Poly::new(vec![10.0, 2.0, 1.0]);
        assert_root_set(
            p.coeffs(),
            &[
                Complex::from_real(-2.0),
                Complex::new(-1.0, 3.0),
                Complex::new(-1.0, -3.0),
            ],
            1e-8,
        );
    }

    #[test]
    fn degree_six_random_reconstruction() {
        let true_roots = [-0.5, -1.5, -2.5, 3.0, 4.5, -6.0];
        let p = Poly::from_roots(&true_roots);
        let got = sort_roots(p.roots());
        let mut want: Vec<f64> = true_roots.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.re - w).abs() < 1e-6, "{} vs {}", g.re, w);
        }
    }

    #[test]
    fn double_root_is_found_approximately() {
        // (x+1)^2 (x+5)
        let p = Poly::from_roots(&[-1.0, -1.0, -5.0]);
        let r = sort_roots(p.roots());
        assert_eq!(r.len(), 3);
        assert!((r[0].re + 5.0).abs() < 1e-6);
        // Double roots converge with ~sqrt(eps) accuracy; accept 1e-5.
        assert!((r[1].re + 1.0).abs() < 1e-4);
        assert!((r[2].re + 1.0).abs() < 1e-4);
    }
}
