//! Dense linear algebra: row-major matrices and LU factorization with
//! partial pivoting, in both real and complex flavors.
//!
//! The circuit simulator builds modified-nodal-analysis (MNA) systems of
//! modest size (tens of unknowns); dense LU with partial pivoting is the
//! appropriate tool. The API is **reuse-oriented**: a factorization object
//! ([`Lu`], [`CLu`]) owns its pivot and factor buffers and can be refilled
//! in place via [`Lu::factor_into`] / [`CLu::factor_into`], and solves write
//! into caller-owned slices via [`Lu::solve_into`] / [`CLu::solve_into`] —
//! so a Newton loop or an AC sweep refactors and resolves every iteration
//! without touching the allocator. The allocating entry points
//! ([`Matrix::solve`], [`CMatrix::solve`], [`Matrix::lu`]) remain as thin
//! wrappers over the in-place core.

use crate::complex::Complex;
use crate::{NumResult, NumericsError};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Pivot magnitude below which a matrix is declared numerically singular.
const SINGULAR_TOL: f64 = 1e-300;

/// Dense row-major `f64` matrix.
///
/// # Example
/// ```
/// use adc_numerics::Matrix;
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Resets all entries to zero (reuse storage across Newton iterations).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Adds `v` to entry `(i, j)` — the MNA "stamp" primitive.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        let c = self.cols;
        self.data[i * c + j] += v;
    }

    /// Flat storage index of entry `(i, j)` — a precomputable "slot" for
    /// [`Matrix::scatter_add`], mirroring the CSR slot maps so dense and
    /// sparse stamp replays share the same shape.
    #[inline]
    pub fn slot(&self, i: usize, j: usize) -> usize {
        i * self.cols + j
    }

    /// Accumulates `vals[k]` into flat slot `slots[k]` for every `k`, in
    /// order, through the same shared [`crate::simd::scatter_add`] kernel
    /// as `CsrMatrix::scatter_add` — the dense twin of the sparse stamp
    /// replay. Accumulation order matches a scalar [`Matrix::add_at`] loop,
    /// so results are bit-identical even when slots repeat.
    ///
    /// # Panics
    /// Panics if `slots` and `vals` differ in length or a slot is out of
    /// range.
    pub fn scatter_add(&mut self, slots: &[usize], vals: &[f64]) {
        crate::simd::scatter_add(&mut self.data, slots, vals);
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-owned buffer (no allocation).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Copies another matrix's entries into this one (reuse storage).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "dimension mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// LU factorization with partial pivoting (allocates a fresh [`Lu`];
    /// reuse-oriented callers should keep one [`Lu`] and call
    /// [`Lu::factor_into`] instead).
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot underflows.
    pub fn lu(&self) -> NumResult<Lu> {
        assert_eq!(self.rows, self.cols, "LU requires a square matrix");
        let mut f = Lu::with_dim(self.rows);
        f.factor_into(self)?;
        Ok(f)
    }

    /// Solves `A x = b`, allocating a fresh factorization and solution —
    /// a thin wrapper over [`Lu::factor_into`] + [`Lu::solve_into`]. Hot
    /// loops (Newton iterations, AC sweeps) should hold a [`Lu`] workspace
    /// and use the in-place pair directly.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] for singular systems.
    pub fn solve(&self, b: &[f64]) -> NumResult<Vec<f64>> {
        Ok(self.lu()?.solve(b))
    }

    /// Determinant via LU (0 for singular matrices).
    pub fn det(&self) -> f64 {
        match self.lu() {
            Ok(lu) => lu.det(),
            Err(_) => 0.0,
        }
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// LU factorization of a real matrix (P·A = L·U), doubling as a reusable
/// factorization workspace: [`Lu::factor_into`] refills the pivot and
/// factor buffers in place, [`Lu::solve_into`] writes the solution into a
/// caller-owned slice — neither allocates after construction.
///
/// # Example
/// ```
/// use adc_numerics::linalg::{Lu, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
/// let mut lu = Lu::with_dim(2);
/// let mut x = [0.0; 2];
/// for b in [[10.0, 12.0], [7.0, 9.0]] {
///     lu.factor_into(&a).unwrap(); // reuses the same buffers
///     lu.solve_into(&b, &mut x);
///     let back = a.mul_vec(&x);
///     assert!((back[0] - b[0]).abs() < 1e-12);
///     assert!((back[1] - b[1]).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl Default for Lu {
    fn default() -> Self {
        Lu::with_dim(0)
    }
}

impl Lu {
    /// Creates an empty factorization workspace for `n × n` systems.
    /// [`Lu::factor_into`] must succeed before the first solve.
    pub fn with_dim(n: usize) -> Self {
        Lu {
            n,
            lu: vec![0.0; n * n],
            perm: (0..n).collect(),
            sign: 1.0,
        }
    }

    /// System dimension this workspace is sized for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Refactors `a` into this workspace's buffers (no allocation when the
    /// dimension is unchanged; resizes once when it grows).
    ///
    /// On error the stored factors are invalid — call again with a
    /// non-singular matrix before solving.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot underflows.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor_into(&mut self, a: &Matrix) -> NumResult<()> {
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        if self.n != n {
            self.n = n;
            self.lu.resize(n * n, 0.0);
            self.perm.resize(n, 0);
        }
        self.lu.copy_from_slice(&a.data);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.sign = 1.0;
        let lu = &mut self.lu;
        for k in 0..n {
            // Partial pivot: find the largest magnitude in column k.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < SINGULAR_TOL {
                return Err(NumericsError::SingularMatrix {
                    step: k,
                    pivot: max,
                });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                self.perm.swap(k, p);
                self.sign = -self.sign;
            }
            let pivot = lu[k * n + k];
            // Row updates through the SIMD axpy kernel: split below the
            // pivot row so the eliminator row and its targets can be
            // borrowed together.
            let (top, rest) = lu.split_at_mut((k + 1) * n);
            let krow = &top[k * n + k + 1..(k + 1) * n];
            for irow in rest.chunks_exact_mut(n) {
                let f = irow[k] / pivot;
                irow[k] = f;
                if f != 0.0 {
                    crate::simd::axpy_sub(&mut irow[k + 1..n], krow, f);
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` into a caller-owned buffer using the stored
    /// factors (no allocation).
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differs from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let n = self.n;
        // Apply permutation, forward substitution (L has unit diagonal).
        for (xi, &p) in x.iter_mut().zip(self.perm.iter()) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                s -= self.lu[i * n + j] * xj;
            }
            x[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[i * n + j] * xj;
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// Solves `A x = b` using the stored factors (allocating wrapper over
    /// [`Lu::solve_into`]).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Determinant from the product of pivots.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

/// Dense row-major complex matrix (for AC small-signal analysis).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a zero-filled complex matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds `v` at `(i, j)` — complex MNA stamp.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: Complex) {
        let c = self.cols;
        self.data[i * c + j] += v;
    }

    /// Resets all entries to zero (reuse storage across sweep points).
    pub fn clear(&mut self) {
        self.data.fill(Complex::ZERO);
    }

    /// Copies another matrix's entries into this one (reuse storage).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn copy_from(&mut self, src: &CMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows, src.cols),
            "dimension mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Determinant via LU with partial pivoting (0 for singular) — an
    /// allocating wrapper over [`CLu::factor_into`] + [`CLu::det`].
    pub fn det(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "square matrix required");
        let mut f = CLu::with_dim(self.rows);
        match f.factor_into(self) {
            Ok(()) => f.det(),
            Err(_) => Complex::ZERO,
        }
    }

    /// Solves `A x = b`, allocating a fresh factorization and solution — a
    /// thin wrapper over [`CLu::factor_into`] + [`CLu::solve_into`]. Hot
    /// loops (AC sweeps, TF sampling) should hold a [`CLu`] workspace and
    /// use the in-place pair directly.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot magnitude
    /// underflows.
    pub fn solve(&self, b: &[Complex]) -> NumResult<Vec<Complex>> {
        assert_eq!(self.rows, self.cols, "square system required");
        let mut f = CLu::with_dim(self.rows);
        f.factor_into(self)?;
        let mut x = vec![Complex::ZERO; self.rows];
        f.solve_into(b, &mut x);
        Ok(x)
    }
}

/// LU factorization of a complex matrix (P·A = L·U) with partial pivoting
/// by magnitude — the complex sibling of [`Lu`], reusable in the same way.
///
/// One factorization serves both the determinant (product of pivots, used
/// by the numeric TF extraction) and any number of in-place solves.
///
/// # Example
/// ```
/// use adc_numerics::complex::Complex;
/// use adc_numerics::linalg::{CLu, CMatrix};
/// // (1+i)·x = 2i  ⇒  x = 1+i
/// let mut a = CMatrix::zeros(1, 1);
/// a[(0, 0)] = Complex::new(1.0, 1.0);
/// let mut lu = CLu::with_dim(1);
/// lu.factor_into(&a).unwrap();
/// let mut x = [Complex::ZERO];
/// lu.solve_into(&[Complex::new(0.0, 2.0)], &mut x);
/// assert!((x[0] - Complex::new(1.0, 1.0)).norm() < 1e-14);
/// assert!((lu.det() - Complex::new(1.0, 1.0)).norm() < 1e-14);
/// ```
#[derive(Debug, Clone)]
pub struct CLu {
    n: usize,
    lu: Vec<Complex>,
    perm: Vec<usize>,
    sign: f64,
}

impl Default for CLu {
    fn default() -> Self {
        CLu::with_dim(0)
    }
}

impl CLu {
    /// Creates an empty factorization workspace for `n × n` systems.
    /// [`CLu::factor_into`] must succeed before the first solve.
    pub fn with_dim(n: usize) -> Self {
        CLu {
            n,
            lu: vec![Complex::ZERO; n * n],
            perm: (0..n).collect(),
            sign: 1.0,
        }
    }

    /// System dimension this workspace is sized for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Refactors `a` into this workspace's buffers (no allocation when the
    /// dimension is unchanged; resizes once when it grows).
    ///
    /// On error the stored factors are invalid — call again with a
    /// non-singular matrix before solving.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot magnitude
    /// underflows.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor_into(&mut self, a: &CMatrix) -> NumResult<()> {
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        if self.n != n {
            self.n = n;
            self.lu.resize(n * n, Complex::ZERO);
            self.perm.resize(n, 0);
        }
        self.lu.copy_from_slice(&a.data);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.sign = 1.0;
        let lu = &mut self.lu;
        for k in 0..n {
            let mut p = k;
            let mut max = lu[k * n + k].norm();
            for i in (k + 1)..n {
                let v = lu[i * n + k].norm();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < SINGULAR_TOL {
                return Err(NumericsError::SingularMatrix {
                    step: k,
                    pivot: max,
                });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                self.perm.swap(k, p);
                self.sign = -self.sign;
            }
            let pivot = lu[k * n + k];
            // Complex row updates through the SIMD caxpy kernel (same split
            // shape as the real factorization).
            let (top, rest) = lu.split_at_mut((k + 1) * n);
            let krow = &top[k * n + k + 1..(k + 1) * n];
            for irow in rest.chunks_exact_mut(n) {
                let f = irow[k] / pivot;
                irow[k] = f;
                if f.norm() != 0.0 {
                    crate::simd::caxpy_sub(&mut irow[k + 1..n], krow, f);
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` into a caller-owned buffer using the stored
    /// factors (no allocation).
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differs from the matrix dimension.
    pub fn solve_into(&self, b: &[Complex], x: &mut [Complex]) {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let n = self.n;
        for (xi, &p) in x.iter_mut().zip(self.perm.iter()) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                s -= self.lu[i * n + j] * *xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[i * n + j] * *xj;
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// Determinant from the product of pivots (permutation sign included).
    pub fn det(&self) -> Complex {
        let mut d = Complex::from_real(self.sign);
        for i in 0..self.n {
            d *= self.lu[i * self.n + i];
        }
        d
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_add_matches_scalar_stamps() {
        // Repeated slots must accumulate in traversal order, bit-identical
        // to the scalar add_at loop — including the 4-lane chunk boundary.
        let entries: Vec<(usize, usize, f64)> = vec![
            (0, 0, 1.25),
            (1, 2, -3.5),
            (0, 0, 0.0625),
            (2, 1, 7.0),
            (2, 2, -0.125),
            (1, 2, 2.75),
            (0, 1, 9.5),
        ];
        let mut scalar = Matrix::zeros(3, 3);
        for &(i, j, v) in &entries {
            scalar.add_at(i, j, v);
        }
        let mut chunked = Matrix::zeros(3, 3);
        let slots: Vec<usize> = entries
            .iter()
            .map(|&(i, j, _)| chunked.slot(i, j))
            .collect();
        let vals: Vec<f64> = entries.iter().map(|&(_, _, v)| v).collect();
        chunked.scatter_add(&slots, &vals);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(scalar[(i, j)].to_bits(), chunked[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-15);
        }
    }

    #[test]
    fn solve_3x3_known() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let want = [2.0, 3.0, -1.0];
        for (xi, wi) in x.iter().zip(want.iter()) {
            assert!((xi - wi).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.solve(&[1.0, 2.0]) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
        assert_eq!(a.det(), 0.0);
    }

    #[test]
    fn det_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 5.0, 1.0], &[0.0, 3.0, 7.0], &[0.0, 0.0, -4.0]]);
        assert!((a.det() + 24.0).abs() < 1e-10);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((a.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_and_mat() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let lu = a.lu().unwrap();
        for b in [[7.0, 9.0], [1.0, 0.0], [0.0, 1.0]] {
            let x = lu.solve(&b);
            let back = a.mul_vec(&x);
            for (bi, wi) in back.iter().zip(b.iter()) {
                assert!((bi - wi).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn complex_solve_known() {
        // (1+i) x = 2i  =>  x = 2i/(1+i) = 1 + i
        let mut a = CMatrix::zeros(1, 1);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        let x = a.solve(&[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, 1.0)).norm() < 1e-14);
    }

    #[test]
    fn complex_solve_2x2_residual() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(2.0, 1.0);
        a[(0, 1)] = Complex::new(0.0, -1.0);
        a[(1, 0)] = Complex::new(1.0, 0.0);
        a[(1, 1)] = Complex::new(3.0, 2.0);
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let x = a.solve(&b).unwrap();
        // residual check
        for i in 0..2 {
            let mut r = -b[i];
            for j in 0..2 {
                r += a[(i, j)] * x[j];
            }
            assert!(r.norm() < 1e-13);
        }
    }

    #[test]
    fn complex_det_known() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::new(1.0, 1.0);
        a[(1, 1)] = Complex::new(2.0, 0.0);
        a[(0, 1)] = Complex::new(0.0, 3.0);
        // triangular: det = (1+i)·2
        assert!((a.det() - Complex::new(2.0, 2.0)).norm() < 1e-14);
        // permuted rows flip sign
        let mut b = CMatrix::zeros(2, 2);
        b[(0, 1)] = Complex::ONE;
        b[(1, 0)] = Complex::ONE;
        assert!((b.det() + Complex::ONE).norm() < 1e-14);
        assert_eq!(CMatrix::zeros(2, 2).det(), Complex::ZERO);
    }

    #[test]
    fn complex_singular_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(a.solve(&[Complex::ONE, Complex::ONE]).is_err());
    }

    #[test]
    fn norm_inf_rowsums() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        assert!((a.norm_inf() - 3.5).abs() < 1e-15);
    }
}
