//! Sparse linear algebra for MNA systems: compressed-sparse-row storage and
//! LU factorization with a **reusable symbolic factorization**.
//!
//! OTA testbench matrices are ~90 % structural zeros, and the synthesis
//! inner loop refactors the *same sparsity pattern* thousands of times (per
//! Newton iteration, per TF sample). The work is therefore split the way
//! production sparse SPICE engines split it:
//!
//! 1. [`Symbolic::analyze`] — once per circuit topology: a Markowitz
//!    (minimum local fill) pivot ordering is chosen from the structure
//!    alone, the elimination is simulated to predict all fill-in, and the
//!    resulting factor pattern plus scatter maps are frozen.
//! 2. [`SparseLu::factor_into`] / [`CSparseLu::factor_into`] — per value
//!    change: a numeric refactorization that follows the frozen pattern
//!    with **zero allocation and no pivot search**, mirroring the reuse
//!    contract of the dense [`crate::linalg::Lu`] / [`crate::linalg::CLu`].
//! 3. [`SparseLu::solve_into`] / [`CSparseLu::solve_into`] and
//!    [`CSparseLu::det`] — in-place triangular solves and the determinant
//!    from the product of pivots (the quantity the numeric TF extraction
//!    samples).
//!
//! Static pivoting is safe here because MNA structural nonzeros are
//! numerically nonzero in practice (conductance sums with a g_min floor on
//! node diagonals, ±1 incidence entries on branch rows); a pivot that still
//! underflows surfaces as [`NumericsError::SingularMatrix`] so callers can
//! fall back to the dense partial-pivoting oracle.

use crate::complex::Complex;
use crate::linalg::{CMatrix, Matrix};
use crate::{NumResult, NumericsError};
use std::sync::Arc;

/// Pivot magnitude below which a refactorization is declared singular
/// (matches the dense LU threshold).
const SINGULAR_TOL: f64 = 1e-300;

/// Minimum dimension for the sparse path to pay for its indirection.
const SPARSE_MIN_DIM: usize = 9;

/// Maximum structural fill ratio (`nnz / dim²`) at which the sparse path is
/// still expected to beat dense factorization, for OTA-sized systems
/// (calibrated on the dim-18 telescopic testbench in PR 3).
const SPARSE_MAX_FILL: f64 = 0.42;

/// Dimension above which the fill threshold relaxes to
/// [`SPARSE_MAX_FILL_LARGE`]: dense elimination grows as `dim³` while the
/// Markowitz-ordered factor of MNA-shaped patterns grows near-linearly, so
/// the break-even fill rises with dimension. Calibrated on the full-pipeline
/// chain testbenches (dim ≥ 100, ladder-shaped; see EXPERIMENTS.md §6).
const SPARSE_LARGE_DIM: usize = 64;

/// Fill threshold for `dim ≥` [`SPARSE_LARGE_DIM`] systems.
const SPARSE_MAX_FILL_LARGE: f64 = 0.60;

/// Whether a system of dimension `dim` with `nnz` structural nonzeros
/// should take the sparse path. The dense path remains the oracle; this is
/// a pure performance heuristic (tiny or nearly full matrices factor
/// faster densely). The fill threshold is dimension-dependent: at chain
/// scale (dim in the hundreds) sparse wins even on much denser patterns
/// than the OTA-scale break-even.
#[must_use]
pub fn prefer_sparse(dim: usize, nnz: usize) -> bool {
    if dim < SPARSE_MIN_DIM {
        return false;
    }
    let max_fill = if dim >= SPARSE_LARGE_DIM {
        SPARSE_MAX_FILL_LARGE
    } else {
        SPARSE_MAX_FILL
    };
    (nnz as f64) <= max_fill * (dim * dim) as f64
}

/// Immutable sparsity pattern of a square matrix in CSR form, shared (via
/// [`Arc`]) between the value arrays stamped per solve and the symbolic
/// factorization computed once per topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl CsrPattern {
    /// Builds a pattern from (possibly duplicated) `(row, col)` entries and
    /// returns it together with the **slot map**: `slots[k]` is the
    /// nonzero index that entry `k` accumulates into, so stamp routines can
    /// write values through precomputed indices without any hashing.
    ///
    /// # Panics
    /// Panics if any entry lies outside `n × n`.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> (Arc<CsrPattern>, Vec<usize>) {
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in entries {
            assert!(r < n && c < n, "entry ({r}, {c}) outside {n}×{n}");
            per_row[r].push(c);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0);
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }
        let pat = CsrPattern {
            n,
            row_ptr,
            col_idx,
        };
        let slots = entries
            .iter()
            .map(|&(r, c)| pat.find(r, c).expect("entry present by construction"))
            .collect();
        (Arc::new(pat), slots)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Structural fill ratio `nnz / dim²` (1.0 for an empty pattern).
    pub fn fill_ratio(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.nnz() as f64 / (self.n * self.n) as f64
        }
    }

    /// Nonzero index of `(r, c)`, if structurally present.
    pub fn find(&self, r: usize, c: usize) -> Option<usize> {
        let row = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
        row.binary_search(&c).ok().map(|p| self.row_ptr[r] + p)
    }

    /// Column indices of row `r`.
    fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }
}

/// Sparse real matrix: shared [`CsrPattern`] plus a value per nonzero.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    pattern: Arc<CsrPattern>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Zero matrix over a pattern.
    pub fn zeros(pattern: Arc<CsrPattern>) -> Self {
        let n = pattern.nnz();
        CsrMatrix {
            pattern,
            vals: vec![0.0; n],
        }
    }

    /// The shared sparsity pattern.
    pub fn pattern(&self) -> &Arc<CsrPattern> {
        &self.pattern
    }

    /// The value array, aligned with the pattern's nonzeros.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable value array (stamp through slot indices from
    /// [`CsrPattern::from_entries`]).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Resets all values to zero, keeping the pattern.
    pub fn clear(&mut self) {
        self.vals.fill(0.0);
    }

    /// Accumulates `v` into nonzero slot `slot`.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, v: f64) {
        self.vals[slot] += v;
    }

    /// Accumulates `vals[k]` into slot `slots[k]` for every `k`, in order,
    /// through the shared [`crate::simd::scatter_add`] kernel. Accumulation
    /// order matches the scalar `add_slot` loop, so results are
    /// bit-identical even when slots repeat.
    ///
    /// # Panics
    /// Panics if `slots` and `vals` differ in length or a slot is out of
    /// range.
    pub fn scatter_add(&mut self, slots: &[usize], vals: &[f64]) {
        crate::simd::scatter_add(&mut self.vals, slots, vals);
    }

    /// Accumulates the constant `v` into every slot of `slots` (the g_min
    /// node-diagonal replay) through [`crate::simd::scatter_add_uniform`].
    ///
    /// # Panics
    /// Panics if a slot is out of range.
    pub fn scatter_add_uniform(&mut self, slots: &[usize], v: f64) {
        crate::simd::scatter_add_uniform(&mut self.vals, slots, v);
    }

    /// Matrix–vector product into a caller-owned buffer (no allocation).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let p = &self.pattern;
        assert_eq!(x.len(), p.n, "dimension mismatch");
        assert_eq!(y.len(), p.n, "dimension mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for (idx, &c) in p.row_cols(r).iter().enumerate() {
                s += self.vals[p.row_ptr[r] + idx] * x[c];
            }
            *yr = s;
        }
    }

    /// Densifies to a [`Matrix`] (oracle comparisons in tests).
    pub fn to_dense(&self) -> Matrix {
        let p = &self.pattern;
        let mut m = Matrix::zeros(p.n, p.n);
        for r in 0..p.n {
            for (idx, &c) in p.row_cols(r).iter().enumerate() {
                m[(r, c)] = self.vals[p.row_ptr[r] + idx];
            }
        }
        m
    }
}

/// Sparse complex matrix: shared [`CsrPattern`] plus a value per nonzero.
#[derive(Debug, Clone)]
pub struct CCsrMatrix {
    pattern: Arc<CsrPattern>,
    vals: Vec<Complex>,
}

impl CCsrMatrix {
    /// Zero matrix over a pattern.
    pub fn zeros(pattern: Arc<CsrPattern>) -> Self {
        let n = pattern.nnz();
        CCsrMatrix {
            pattern,
            vals: vec![Complex::ZERO; n],
        }
    }

    /// The shared sparsity pattern.
    pub fn pattern(&self) -> &Arc<CsrPattern> {
        &self.pattern
    }

    /// The value array, aligned with the pattern's nonzeros.
    pub fn values(&self) -> &[Complex] {
        &self.vals
    }

    /// Mutable value array (stamp through slot indices from
    /// [`CsrPattern::from_entries`]).
    pub fn values_mut(&mut self) -> &mut [Complex] {
        &mut self.vals
    }

    /// Resets all values to zero, keeping the pattern.
    pub fn clear(&mut self) {
        self.vals.fill(Complex::ZERO);
    }

    /// Accumulates `v` into nonzero slot `slot`.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, v: Complex) {
        self.vals[slot] += v;
    }

    /// Accumulates `s · vals[k]` into slot `slots[k]` for every `k` — the
    /// per-sample replay of `s`-scaled capacitive entries, through
    /// [`crate::simd::scatter_add_scaled`]: the complex products are formed
    /// SIMD-wide before the scattered accumulation; order matches the
    /// scalar loop, so results are bit-identical.
    ///
    /// # Panics
    /// Panics if `slots` and `vals` differ in length or a slot is out of
    /// range.
    pub fn scatter_add_scaled(&mut self, slots: &[usize], vals: &[f64], s: Complex) {
        crate::simd::scatter_add_scaled(&mut self.vals, slots, vals, s);
    }

    /// Densifies to a [`CMatrix`] (oracle comparisons in tests).
    pub fn to_dense(&self) -> CMatrix {
        let p = &self.pattern;
        let mut m = CMatrix::zeros(p.n, p.n);
        for r in 0..p.n {
            for (idx, &c) in p.row_cols(r).iter().enumerate() {
                m[(r, c)] = self.vals[p.row_ptr[r] + idx];
            }
        }
        m
    }
}

/// Symbolic LU factorization of a [`CsrPattern`]: pivot ordering, predicted
/// fill pattern and scatter maps, computed **once per topology** and shared
/// by any number of numeric refactorizations (real or complex).
#[derive(Debug)]
pub struct Symbolic {
    n: usize,
    /// Permuted row `i` is original row `row_perm[i]`.
    row_perm: Vec<usize>,
    /// Permuted column `j` is original column `col_perm[j]`.
    col_perm: Vec<usize>,
    /// Parity of the combined row/column permutation (±1), folded into the
    /// determinant.
    sign: f64,
    /// Filled factor pattern (L strictly below + U incl. diagonal), CSR by
    /// permuted row, columns ascending.
    f_row_ptr: Vec<usize>,
    f_col: Vec<usize>,
    /// Absolute index (into `f_col`/factor values) of each row's diagonal.
    f_diag: Vec<usize>,
    /// Input nonzero `k` scatters into factor position `scatter[k]`.
    scatter: Vec<usize>,
    /// Elimination schedule: for each row `i` (ascending), each
    /// eliminating position `pos ∈ row_ptr[i]..f_diag[i]` (ascending), the
    /// factor positions *within row i* receiving row `j = f_col[pos]`'s
    /// update entries `f_diag[j]+1..row_ptr[j+1]`, flattened in order. The
    /// fill closure guarantees every update column exists in row `i`, so
    /// the batched factor can eliminate in place — no scatter workspace,
    /// no copy in/out — while reproducing the workspace walk's arithmetic
    /// order exactly.
    e_target: Vec<usize>,
    /// The analyzed input pattern (refactor sanity checks).
    pattern: Arc<CsrPattern>,
}

impl Symbolic {
    /// Chooses a fill-reducing pivot order for `pattern` by structural
    /// Markowitz selection (minimize `(r−1)·(c−1)` over remaining
    /// structural nonzeros, preferring diagonal pivots on ties — node
    /// diagonals carry conductance sums and are numerically the safest),
    /// simulates the elimination to predict fill-in, and freezes the factor
    /// pattern plus scatter maps.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if the pattern is
    /// structurally singular (some elimination step has no candidate
    /// pivot).
    pub fn analyze(pattern: &Arc<CsrPattern>) -> NumResult<Arc<Symbolic>> {
        let n = pattern.dim();
        // Dense boolean simulation of the elimination — run once per
        // topology, so the O(n²)-per-step scans are irrelevant next to the
        // factorizations they accelerate.
        let mut live = vec![false; n * n];
        for r in 0..n {
            for &c in pattern.row_cols(r) {
                live[r * n + c] = true;
            }
        }
        // Original (pre-fill) entries: static pivots prefer these. A
        // predicted-fill position is only "nonzero" if the numeric updates
        // that create it never cancel — and on MNA systems with ±gain
        // controlled-source pairs they regularly cancel *exactly*, which a
        // frozen ordering cannot recover from. Original entries carry
        // element stamps (conductance sums with a g_min floor, ±1 source
        // incidences), the values static pivoting is actually safe on.
        let original = live.clone();
        let mut row_alive = vec![true; n];
        let mut col_alive = vec![true; n];
        let mut row_perm = Vec::with_capacity(n);
        let mut col_perm = Vec::with_capacity(n);
        let mut row_cnt = vec![0usize; n];
        let mut col_cnt = vec![0usize; n];
        for step in 0..n {
            for cnt in row_cnt.iter_mut() {
                *cnt = 0;
            }
            for cnt in col_cnt.iter_mut() {
                *cnt = 0;
            }
            for r in 0..n {
                if !row_alive[r] {
                    continue;
                }
                for c in 0..n {
                    if col_alive[c] && live[r * n + c] {
                        row_cnt[r] += 1;
                        col_cnt[c] += 1;
                    }
                }
            }
            let mut best: Option<(bool, usize, bool, usize, usize)> = None;
            for r in 0..n {
                if !row_alive[r] {
                    continue;
                }
                for c in 0..n {
                    if !col_alive[c] || !live[r * n + c] {
                        continue;
                    }
                    let cost = (row_cnt[r] - 1) * (col_cnt[c] - 1);
                    // Selection key, lexicographic: original entries before
                    // fill, then minimum Markowitz cost, then diagonal
                    // preference, then lowest position (deterministic).
                    let key = (!original[r * n + c], cost, r != c, r, c);
                    let better = match best {
                        None => true,
                        Some(bk) => key < bk,
                    };
                    if better {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, _, pr, pc)) = best else {
                return Err(NumericsError::SingularMatrix { step, pivot: 0.0 });
            };
            // Predict fill: eliminating (pr, pc) links every remaining row
            // with an entry in column pc to every remaining column with an
            // entry in row pr.
            for r in 0..n {
                if !row_alive[r] || r == pr || !live[r * n + pc] {
                    continue;
                }
                for c in 0..n {
                    if col_alive[c] && c != pc && live[pr * n + c] {
                        live[r * n + c] = true;
                    }
                }
            }
            row_alive[pr] = false;
            col_alive[pc] = false;
            row_perm.push(pr);
            col_perm.push(pc);
        }

        let mut row_perm_inv = vec![0usize; n];
        let mut col_perm_inv = vec![0usize; n];
        for (i, &pr) in row_perm.iter().enumerate() {
            row_perm_inv[pr] = i;
        }
        for (j, &pc) in col_perm.iter().enumerate() {
            col_perm_inv[pc] = j;
        }

        // Recompute the fill pattern in permuted coordinates: the same
        // elimination, now as a plain no-pivot simulation.
        let mut filled = vec![false; n * n];
        for (i, &pr) in row_perm.iter().enumerate() {
            for &c in pattern.row_cols(pr) {
                filled[i * n + col_perm_inv[c]] = true;
            }
        }
        for k in 0..n {
            for i in (k + 1)..n {
                if !filled[i * n + k] {
                    continue;
                }
                for j in (k + 1)..n {
                    if filled[k * n + j] {
                        filled[i * n + j] = true;
                    }
                }
            }
        }

        let mut f_row_ptr = Vec::with_capacity(n + 1);
        let mut f_col = Vec::new();
        let mut f_diag = vec![0usize; n];
        f_row_ptr.push(0);
        for i in 0..n {
            for j in 0..n {
                if filled[i * n + j] {
                    if j == i {
                        f_diag[i] = f_col.len();
                    }
                    f_col.push(j);
                }
            }
            f_row_ptr.push(f_col.len());
        }
        for (i, &d) in f_diag.iter().enumerate() {
            assert!(
                f_col.get(d) == Some(&i),
                "pivot ({i}, {i}) missing from the filled pattern"
            );
        }

        // Scatter map: original nonzero k → factor position.
        let mut scatter = Vec::with_capacity(pattern.nnz());
        for (r, &pi) in row_perm_inv.iter().enumerate() {
            for &c in pattern.row_cols(r) {
                let (i, j) = (pi, col_perm_inv[c]);
                let row = &f_col[f_row_ptr[i]..f_row_ptr[i + 1]];
                let pos = row.binary_search(&j).expect("input entry inside fill");
                scatter.push(f_row_ptr[i] + pos);
            }
        }

        // Elimination schedule: in-row target position of every update.
        let mut e_target = Vec::new();
        let mut colpos = vec![0usize; n];
        for i in 0..n {
            let (start, end) = (f_row_ptr[i], f_row_ptr[i + 1]);
            for pos in start..end {
                colpos[f_col[pos]] = pos;
            }
            for pos in start..f_diag[i] {
                let j = f_col[pos];
                for q in (f_diag[j] + 1)..f_row_ptr[j + 1] {
                    e_target.push(colpos[f_col[q]]);
                }
            }
        }

        let sign = perm_sign(&row_perm) * perm_sign(&col_perm);
        Ok(Arc::new(Symbolic {
            n,
            row_perm,
            col_perm,
            sign,
            f_row_ptr,
            f_col,
            f_diag,
            scatter,
            e_target,
            pattern: Arc::clone(pattern),
        }))
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros in the factors (input nonzeros + predicted fill).
    pub fn factor_nnz(&self) -> usize {
        self.f_col.len()
    }

    /// Original `(row, column)` of the pivot used at elimination `step` —
    /// diagnostic mapping for [`NumericsError::SingularMatrix`] reports.
    pub fn pivot_position(&self, step: usize) -> (usize, usize) {
        (self.row_perm[step], self.col_perm[step])
    }

    /// The input pattern this analysis was computed for.
    pub fn pattern(&self) -> &Arc<CsrPattern> {
        &self.pattern
    }
}

/// Parity (±1) of a permutation via cycle decomposition.
fn perm_sign(perm: &[usize]) -> f64 {
    let mut seen = vec![false; perm.len()];
    let mut sign = 1.0;
    for start in 0..perm.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            i = perm[i];
            len += 1;
        }
        if len % 2 == 0 {
            sign = -sign;
        }
    }
    sign
}

/// Scalar abstraction shared by the real and complex numeric kernels.
trait Scalar:
    Copy
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
{
    const ZERO: Self;
    fn mag(self) -> f64;
    /// Pivot screen: `true` iff `self.mag() >= t` — same decision as
    /// computing the magnitude, but with a cheap component test that
    /// short-circuits the `hypot` for every healthy pivot (the common
    /// case by ~every pivot of a well-posed system).
    fn mag_ge(self, t: f64) -> bool;
    /// `w[cols[q]] -= f · vals[q]` — the elimination inner update, routed
    /// through the SIMD dispatch (product formation vectorized, scattered
    /// subtraction in scalar program order; bit-identical to the plain
    /// loop).
    fn scatter_axpy_sub(w: &mut [Self], cols: &[usize], vals: &[Self], f: Self);
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn mag_ge(self, t: f64) -> bool {
        self.abs() >= t
    }
    #[inline]
    fn scatter_axpy_sub(w: &mut [f64], cols: &[usize], vals: &[f64], f: f64) {
        crate::simd::scatter_axpy_sub(w, cols, vals, f);
    }
}

impl Scalar for Complex {
    const ZERO: Complex = Complex::ZERO;
    #[inline]
    fn mag(self) -> f64 {
        self.norm()
    }
    #[inline]
    fn mag_ge(self, t: f64) -> bool {
        // |z| ≥ max(|re|, |im|), so a component beyond 2t proves |z| ≥ t
        // (2× margin absorbs hypot rounding) without the hypot call; only
        // borderline pivots fall through to the exact norm.
        self.re.abs() > 2.0 * t || self.im.abs() > 2.0 * t || self.norm() >= t
    }
    #[inline]
    fn scatter_axpy_sub(w: &mut [Complex], cols: &[usize], vals: &[Complex], f: Complex) {
        crate::simd::scatter_caxpy_sub(w, cols, vals, f);
    }
}

/// Guards a refactorization: the matrix must live on the analyzed pattern
/// (pointer fast path, structural equality fallback) or the scatter map
/// would silently place values at wrong factor positions.
fn assert_pattern_matches(pattern: &Arc<CsrPattern>, sym: &Symbolic) {
    assert!(
        Arc::ptr_eq(pattern, sym.pattern()) || pattern == sym.pattern(),
        "matrix pattern differs from the analyzed pattern"
    );
}

/// Numeric refactorization following the frozen symbolic pattern:
/// up-looking row LU (Doolittle) with a dense scratch row, zero allocation,
/// no pivot search.
fn factor_core<T: Scalar>(
    sym: &Symbolic,
    avals: &[T],
    fvals: &mut [T],
    w: &mut [T],
) -> NumResult<()> {
    assert_eq!(avals.len(), sym.scatter.len(), "pattern mismatch");
    fvals.fill(T::ZERO);
    for (k, &v) in avals.iter().enumerate() {
        fvals[sym.scatter[k]] += v;
    }
    for i in 0..sym.n {
        let (start, end) = (sym.f_row_ptr[i], sym.f_row_ptr[i + 1]);
        for pos in start..end {
            w[sym.f_col[pos]] = fvals[pos];
        }
        // Eliminate against every finished row j < i in this row's pattern.
        for pos in start..sym.f_diag[i] {
            let j = sym.f_col[pos];
            let f = w[j] / fvals[sym.f_diag[j]];
            w[j] = f;
            let (d, e) = (sym.f_diag[j] + 1, sym.f_row_ptr[j + 1]);
            T::scatter_axpy_sub(w, &sym.f_col[d..e], &fvals[d..e], f);
        }
        for pos in start..end {
            fvals[pos] = w[sym.f_col[pos]];
        }
        let piv = fvals[sym.f_diag[i]];
        if !piv.mag_ge(SINGULAR_TOL) {
            return Err(NumericsError::SingularMatrix {
                step: i,
                pivot: piv.mag(),
            });
        }
    }
    Ok(())
}

/// Permuted forward/back substitution using the stored factors.
fn solve_core<T: Scalar>(sym: &Symbolic, fvals: &[T], b: &[T], y: &mut [T], x: &mut [T]) {
    assert_eq!(b.len(), sym.n, "dimension mismatch");
    assert_eq!(x.len(), sym.n, "dimension mismatch");
    // L y = P_r b (unit diagonal).
    for i in 0..sym.n {
        let mut s = b[sym.row_perm[i]];
        for pos in sym.f_row_ptr[i]..sym.f_diag[i] {
            s -= fvals[pos] * y[sym.f_col[pos]];
        }
        y[i] = s;
    }
    // U x' = y, then undo the column permutation.
    for i in (0..sym.n).rev() {
        let mut s = y[i];
        for pos in (sym.f_diag[i] + 1)..sym.f_row_ptr[i + 1] {
            s -= fvals[pos] * y[sym.f_col[pos]];
        }
        y[i] = s / fvals[sym.f_diag[i]];
    }
    for (j, &pc) in sym.col_perm.iter().enumerate() {
        x[pc] = y[j];
    }
}

/// Reusable sparse LU of a real matrix over a frozen [`Symbolic`] — the
/// sparse sibling of [`crate::linalg::Lu`].
///
/// # Example
/// ```
/// use adc_numerics::sparse::{CsrMatrix, CsrPattern, SparseLu, Symbolic};
/// // [[2, 1], [1, 3]] x = [3, 5]  ⇒  x = [0.8, 1.4]
/// let (pat, slots) = CsrPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
/// let mut a = CsrMatrix::zeros(pat.clone());
/// for (&s, v) in slots.iter().zip([2.0, 1.0, 1.0, 3.0]) {
///     a.add_slot(s, v);
/// }
/// let sym = Symbolic::analyze(&pat).unwrap();
/// let mut lu = SparseLu::new(sym);
/// lu.factor_into(&a).unwrap();
/// let mut x = [0.0; 2];
/// lu.solve_into(&[3.0, 5.0], &mut x);
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct SparseLu {
    sym: Arc<Symbolic>,
    fvals: Vec<f64>,
    w: Vec<f64>,
    y: Vec<f64>,
}

impl SparseLu {
    /// Creates a numeric factorization workspace over a symbolic analysis.
    pub fn new(sym: Arc<Symbolic>) -> Self {
        let (nnz, n) = (sym.factor_nnz(), sym.dim());
        SparseLu {
            sym,
            fvals: vec![0.0; nnz],
            w: vec![0.0; n],
            y: vec![0.0; n],
        }
    }

    /// The shared symbolic factorization.
    pub fn symbolic(&self) -> &Arc<Symbolic> {
        &self.sym
    }

    /// Refactors `a` (same pattern as analyzed) into the frozen fill
    /// pattern — no allocation, no pivot search.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot underflows
    /// under the static ordering; callers fall back to dense partial
    /// pivoting.
    ///
    /// # Panics
    /// Panics if `a`'s pattern is not the pattern this factorization was
    /// analyzed for (the scatter map is pattern-specific).
    pub fn factor_into(&mut self, a: &CsrMatrix) -> NumResult<()> {
        assert_pattern_matches(a.pattern(), &self.sym);
        factor_core(&self.sym, a.values(), &mut self.fvals, &mut self.w)
    }

    /// Solves `A x = b` into a caller-owned buffer using the stored
    /// factors (no allocation).
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differs from the dimension.
    pub fn solve_into(&mut self, b: &[f64], x: &mut [f64]) {
        let y = &mut self.y;
        solve_core(&self.sym, &self.fvals, b, y, x);
    }

    /// Determinant from the product of pivots (permutation parity folded
    /// in).
    pub fn det(&self) -> f64 {
        let mut d = self.sym.sign;
        for i in 0..self.sym.n {
            d *= self.fvals[self.sym.f_diag[i]];
        }
        d
    }
}

/// Reusable sparse LU of a complex matrix over a frozen [`Symbolic`] — the
/// sparse sibling of [`crate::linalg::CLu`]. One factorization serves both
/// [`CSparseLu::det`] (TF-extraction sampling) and any number of solves.
#[derive(Debug)]
pub struct CSparseLu {
    sym: Arc<Symbolic>,
    fvals: Vec<Complex>,
    w: Vec<Complex>,
    y: Vec<Complex>,
}

impl CSparseLu {
    /// Creates a numeric factorization workspace over a symbolic analysis.
    pub fn new(sym: Arc<Symbolic>) -> Self {
        let (nnz, n) = (sym.factor_nnz(), sym.dim());
        CSparseLu {
            sym,
            fvals: vec![Complex::ZERO; nnz],
            w: vec![Complex::ZERO; n],
            y: vec![Complex::ZERO; n],
        }
    }

    /// The shared symbolic factorization.
    pub fn symbolic(&self) -> &Arc<Symbolic> {
        &self.sym
    }

    /// Refactors `a` (same pattern as analyzed) into the frozen fill
    /// pattern — no allocation, no pivot search.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot magnitude
    /// underflows under the static ordering.
    ///
    /// # Panics
    /// Panics if `a`'s pattern is not the pattern this factorization was
    /// analyzed for (the scatter map is pattern-specific).
    pub fn factor_into(&mut self, a: &CCsrMatrix) -> NumResult<()> {
        assert_pattern_matches(a.pattern(), &self.sym);
        factor_core(&self.sym, a.values(), &mut self.fvals, &mut self.w)
    }

    /// Solves `A x = b` into a caller-owned buffer using the stored
    /// factors (no allocation).
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differs from the dimension.
    pub fn solve_into(&mut self, b: &[Complex], x: &mut [Complex]) {
        let y = &mut self.y;
        solve_core(&self.sym, &self.fvals, b, y, x);
    }

    /// Determinant from the product of pivots (permutation parity folded
    /// in).
    pub fn det(&self) -> Complex {
        let mut d = Complex::from_real(self.sym.sign);
        for i in 0..self.sym.n {
            d *= self.fvals[self.sym.f_diag[i]];
        }
        d
    }
}

/// Maximum lane count of the batched factor storage.
const ML: usize = crate::simd::MAX_LANES;

/// Batched sparse complex LU over a frozen [`Symbolic`]: factors the same
/// pattern at up to [`crate::simd::MAX_LANES`] frequency samples
/// `Y(s_l) = G + s_l·C` through **one** struct-of-arrays workspace, walking
/// the symbolic traversal (row pointers, scatter maps, permutations) once
/// for all lanes instead of once per sample.
///
/// This is the engine behind det-sampling TF extraction and AC sweeps: the
/// per-sample cost there is dominated by pattern traversal and scattered
/// memory walks that are identical across samples. Splitting values into
/// re/im lane arrays (position-major, lane-minor, stride = the batch's
/// actual lane count so partial batches touch proportionally less memory)
/// makes the inner elimination update a contiguous
/// [`crate::simd::lane_cmul_sub`] and the multiplier/pivot divisions a
/// [`crate::simd::lane_cdiv`] over lanes.
///
/// **Bit-identity:** every lane reproduces the serial
/// [`CSparseLu::factor_into`] / [`CSparseLu::solve_into`] /
/// [`CSparseLu::det`] results bit for bit — assembly writes `0.0 + v` at
/// base positions and `+0.0` at fill positions exactly as the serial
/// `fill(ZERO)` + accumulate does (signed zeros included), elimination
/// performs the same rounded operations per lane (no FMA), and the lane
/// division reproduces Smith's branchy scalar division per lane. A pivot
/// underflow in **any** lane fails the whole batch
/// ([`NumericsError::SingularMatrix`]); callers redo the chunk serially so
/// per-sample outcomes (including dense fallbacks) match the serial path
/// exactly.
#[derive(Debug)]
pub struct CSparseLuBatch {
    sym: Arc<Symbolic>,
    lanes: usize,
    /// Factor positions *not* written by the (injective) assembly scatter —
    /// the symbolic fill-in. Zeroed explicitly each factorization instead
    /// of memsetting the whole factor storage.
    fill_pos: Vec<usize>,
    f_re: Vec<f64>,
    f_im: Vec<f64>,
    y_re: Vec<f64>,
    y_im: Vec<f64>,
}

impl CSparseLuBatch {
    /// Creates a batch workspace over a symbolic analysis.
    pub fn new(sym: Arc<Symbolic>) -> Self {
        let (nnz, n) = (sym.factor_nnz(), sym.dim());
        let mut is_base = vec![false; nnz];
        for &p in &sym.scatter {
            is_base[p] = true;
        }
        let fill_pos: Vec<usize> = (0..nnz).filter(|&p| !is_base[p]).collect();
        CSparseLuBatch {
            sym,
            lanes: 0,
            fill_pos,
            f_re: vec![0.0; nnz * ML],
            f_im: vec![0.0; nnz * ML],
            y_re: vec![0.0; n * ML],
            y_im: vec![0.0; n * ML],
        }
    }

    /// The shared symbolic factorization.
    pub fn symbolic(&self) -> &Arc<Symbolic> {
        &self.sym
    }

    /// Lanes occupied by the most recent factorization.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Factors `Y(s_l) = base + s_l·C` for every sample in `s`
    /// (`1..=MAX_LANES` lanes). `base` is the value array of the analyzed
    /// pattern; `cap_slots[j]`/`cap_vals[j]` address the `s`-scaled entries
    /// by nonzero slot, exactly as [`CCsrMatrix::scatter_add_scaled`]
    /// replays them.
    ///
    /// # Errors
    /// Returns [`NumericsError::SingularMatrix`] if a pivot magnitude
    /// underflows in **any** lane (the whole batch is then invalid — redo
    /// the samples serially).
    ///
    /// # Panics
    /// Panics if `base` does not match the analyzed pattern's nonzero
    /// count, `cap_slots`/`cap_vals` differ in length, or `s` is empty or
    /// longer than [`crate::simd::MAX_LANES`].
    pub fn factor_scaled(
        &mut self,
        base: &[Complex],
        cap_slots: &[usize],
        cap_vals: &[f64],
        s: &[Complex],
    ) -> NumResult<()> {
        let sym = Arc::clone(&self.sym);
        let lanes = s.len();
        assert!((1..=ML).contains(&lanes), "1..={ML} lanes supported");
        assert_eq!(base.len(), sym.scatter.len(), "pattern mismatch");
        assert_eq!(cap_slots.len(), cap_vals.len(), "cap slot/value mismatch");
        self.lanes = lanes;
        // Re-stride the storage to the batch's actual lane count so a
        // 2-lane batch walks a quarter of an 8-lane batch's memory. The
        // capacity was reserved at MAX_LANES, so this never reallocates;
        // stale contents are fine — every position is written below.
        let nnz = sym.factor_nnz();
        self.f_re.resize(nnz * lanes, 0.0);
        self.f_im.resize(nnz * lanes, 0.0);
        self.y_re.resize(sym.n * lanes, 0.0);
        self.y_im.resize(sym.n * lanes, 0.0);
        // Assemble like the serial path: `0.0 + v` at base positions (the
        // scatter map is injective, so this is exactly the serial
        // `fill(ZERO)` + `+=` result, signed zeros included), explicit
        // `+0.0` at the fill-in positions, then the s-scaled cap entries
        // accumulate in entry order — all behind one kernel dispatch.
        let mut s_re = [0.0f64; ML];
        let mut s_im = [0.0f64; ML];
        for (l, &sl) in s.iter().enumerate() {
            s_re[l] = sl.re;
            s_im[l] = sl.im;
        }
        crate::simd::lane_assemble(
            &mut self.f_re,
            &mut self.f_im,
            base,
            &sym.scatter,
            &self.fill_pos,
            cap_slots,
            cap_vals,
            &s_re[..lanes],
            &s_im[..lanes],
            lanes,
        );
        // Up-looking row elimination, all lanes in lockstep, behind a
        // single kernel dispatch and in place in the factor storage via
        // the precomputed elimination schedule (no scatter workspace, no
        // copy in/out). The eliminating pivots passed the singularity
        // check, so exact-zero divisors never reach the kernel; the check
        // itself decides exactly as the serial per-lane `norm() < tol`
        // test would.
        if let Some((step, pivot)) = crate::simd::lane_factor_rows(
            &mut self.f_re,
            &mut self.f_im,
            &sym.f_row_ptr,
            &sym.f_col,
            &sym.f_diag,
            &sym.e_target,
            lanes,
            SINGULAR_TOL,
        ) {
            return Err(NumericsError::SingularMatrix { step, pivot });
        }
        Ok(())
    }

    /// Solves `Y(s_l) x_l = b` for every factored lane, sharing the single
    /// right-hand side. Lane `l`'s solution lands in
    /// `xs[l·n .. (l+1)·n]`. `xs` may cover fewer lanes than were
    /// factored — only the leading `xs.len() / n` lanes are emitted,
    /// which lets callers discard padding lanes added for vector
    /// alignment.
    ///
    /// # Panics
    /// Panics if no factorization is stored, `b.len()` differs from the
    /// dimension, or `xs.len()` is not a positive multiple of `n` of at
    /// most `lanes·n`.
    pub fn solve_into(&mut self, b: &[Complex], xs: &mut [Complex]) {
        let sym = &self.sym;
        let lanes = self.lanes;
        assert!(lanes > 0, "factor before solving");
        assert_eq!(b.len(), sym.n, "dimension mismatch");
        assert_eq!(xs.len() % sym.n, 0, "output length mismatch");
        let out_lanes = xs.len() / sym.n;
        assert!((1..=lanes).contains(&out_lanes), "output length mismatch");
        // L y = P_r b (unit diagonal), all lanes in lockstep, one kernel
        // dispatch for the whole pass — accumulator lanes in registers.
        crate::simd::lane_fwd_all(
            &mut self.y_re,
            &mut self.y_im,
            b,
            &sym.row_perm,
            &sym.f_row_ptr,
            &sym.f_col,
            &sym.f_diag,
            &self.f_re,
            &self.f_im,
            lanes,
        );
        // U x' = y (fused row update + pivot division; pivots passed the
        // singularity check, so exact-zero divisors never reach the
        // kernel), then undo the column permutation per lane.
        crate::simd::lane_bwd_all(
            &mut self.y_re,
            &mut self.y_im,
            &sym.f_row_ptr,
            &sym.f_col,
            &sym.f_diag,
            &self.f_re,
            &self.f_im,
            lanes,
        );
        for (j, &pc) in sym.col_perm.iter().enumerate() {
            let jm = j * lanes;
            for l in 0..out_lanes {
                xs[l * sym.n + pc] = Complex::new(self.y_re[jm + l], self.y_im[jm + l]);
            }
        }
    }

    /// Determinants of the factored lanes (product of pivots in elimination
    /// order, permutation parity folded in — exactly [`CSparseLu::det`] per
    /// lane). `dets` may cover fewer lanes than were factored — only the
    /// leading `dets.len()` lanes are emitted, which lets callers discard
    /// padding lanes added for vector alignment.
    ///
    /// # Panics
    /// Panics if `dets` is empty or longer than the factored lane count.
    pub fn det_into(&self, dets: &mut [Complex]) {
        let m = dets.len();
        assert!((1..=self.lanes).contains(&m), "lane count mismatch");
        let lanes = self.lanes;
        // Position-major walk with all requested lane accumulators live:
        // sequential pivot loads, and the per-lane product (exactly
        // Complex::mul — four rounded multiplies, one rounded sub/add per
        // component) vectorizes across lanes.
        let mut acc_re = [0.0f64; ML];
        let mut acc_im = [0.0f64; ML];
        acc_re[..m].fill(self.sym.sign);
        for i in 0..self.sym.n {
            let p = self.sym.f_diag[i] * lanes;
            let pr = &self.f_re[p..p + m];
            let pi = &self.f_im[p..p + m];
            for l in 0..m {
                let (ar, ai) = (acc_re[l], acc_im[l]);
                acc_re[l] = ar * pr[l] - ai * pi[l];
                acc_im[l] = ar * pi[l] + ai * pr[l];
            }
        }
        for (l, d) in dets.iter_mut().enumerate() {
            *d = Complex::new(acc_re[l], acc_im[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds pattern + matrix from dense-style triplets.
    fn csr_from(n: usize, trips: &[(usize, usize, f64)]) -> (Arc<CsrPattern>, CsrMatrix) {
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut m = CsrMatrix::zeros(Arc::clone(&pat));
        for (&slot, &(_, _, v)) in slots.iter().zip(trips) {
            m.add_slot(slot, v);
        }
        (pat, m)
    }

    #[test]
    fn pattern_dedups_and_maps_slots() {
        let (pat, slots) = CsrPattern::from_entries(3, &[(0, 0), (0, 2), (0, 0), (2, 1)]);
        assert_eq!(pat.nnz(), 3);
        assert_eq!(slots[0], slots[2], "duplicate entries share a slot");
        assert_eq!(pat.find(0, 2), Some(slots[1]));
        assert_eq!(pat.find(1, 1), None);
        assert!((pat.fill_ratio() - 3.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn solve_matches_dense_small() {
        let trips = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (0, 2, -1.0),
            (1, 0, -3.0),
            (1, 1, -1.0),
            (1, 2, 2.0),
            (2, 0, -2.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
        ];
        let (pat, a) = csr_from(3, &trips);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let mut x = [0.0; 3];
        lu.solve_into(&[8.0, -11.0, -3.0], &mut x);
        let want = [2.0, 3.0, -1.0];
        for (xi, wi) in x.iter().zip(want.iter()) {
            assert!((xi - wi).abs() < 1e-12, "{x:?}");
        }
        let dense_det = a.to_dense().det();
        assert!((lu.det() - dense_det).abs() < 1e-9 * dense_det.abs().max(1.0));
    }

    #[test]
    fn zero_diagonal_handled_by_ordering() {
        // MNA-style: branch row with structurally zero diagonal.
        let trips = [(0, 0, 1e-3), (0, 1, 1.0), (1, 0, 1.0)];
        let (pat, a) = csr_from(2, &trips);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        // [[1e-3, 1], [1, 0]] x = [1, 2] ⇒ x = [2, 1 − 2e-3]
        let mut x = [0.0; 2];
        lu.solve_into(&[1.0, 2.0], &mut x);
        assert!((x[0] - 2.0).abs() < 1e-12, "{x:?}");
        assert!((x[1] - (1.0 - 2e-3)).abs() < 1e-12, "{x:?}");
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn structurally_singular_rejected_at_analysis() {
        let (pat, _slots) = CsrPattern::from_entries(2, &[(0, 0), (1, 0)]);
        assert!(matches!(
            Symbolic::analyze(&pat),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn numerically_singular_rejected_at_refactor() {
        let trips = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)];
        let (pat, a) = csr_from(2, &trips);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        assert!(matches!(
            lu.factor_into(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn refactor_reuses_symbolic_and_buffers() {
        let trips = [(0, 0, 4.0), (0, 1, 3.0), (1, 0, 6.0), (1, 1, 3.0)];
        let (pat, mut a) = csr_from(2, &trips);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(Arc::clone(&sym));
        for scale in [1.0, 2.0, 0.5] {
            for v in a.values_mut() {
                *v *= scale;
            }
            lu.factor_into(&a).unwrap();
            let mut x = [0.0; 2];
            lu.solve_into(&[10.0, 12.0], &mut x);
            let dense = a.to_dense();
            let back = dense.mul_vec(&x);
            assert!((back[0] - 10.0).abs() < 1e-10 && (back[1] - 12.0).abs() < 1e-10);
            assert!(Arc::ptr_eq(lu.symbolic(), &sym), "symbolic re-shared");
        }
        let _ = pat;
    }

    #[test]
    fn complex_solve_and_det_match_dense() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let (pat, slots) = CsrPattern::from_entries(2, &entries);
        let mut a = CCsrMatrix::zeros(Arc::clone(&pat));
        let vals = [
            Complex::new(2.0, 1.0),
            Complex::new(0.0, -1.0),
            Complex::new(1.0, 0.0),
            Complex::new(3.0, 2.0),
        ];
        for (&s, &v) in slots.iter().zip(vals.iter()) {
            a.add_slot(s, v);
        }
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = CSparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let mut x = [Complex::ZERO; 2];
        lu.solve_into(&b, &mut x);
        let dense = a.to_dense();
        for i in 0..2 {
            let mut r = -b[i];
            for j in 0..2 {
                r += dense[(i, j)] * x[j];
            }
            assert!(r.norm() < 1e-13, "residual {r:?}");
        }
        assert!((lu.det() - dense.det()).norm() < 1e-12);
    }

    /// The chunked scatter helpers must match the scalar `add_slot` loop
    /// bit for bit, including duplicate slots and non-multiple-of-4
    /// lengths.
    #[test]
    fn chunked_scatter_matches_scalar_loop() {
        let entries: Vec<(usize, usize)> = (0..7).map(|i| (i, (i * 3) % 7)).collect();
        let (pat, slots) = CsrPattern::from_entries(7, &entries);
        // Replay list with repeats and length 4k+2.
        let replay: Vec<usize> = slots.iter().chain(slots.iter().take(3)).copied().collect();
        let vals: Vec<f64> = (0..replay.len()).map(|k| 0.1 + k as f64 * 0.37).collect();

        let mut scalar = CsrMatrix::zeros(Arc::clone(&pat));
        for (&s, &v) in replay.iter().zip(vals.iter()) {
            scalar.add_slot(s, v);
        }
        let mut chunked = CsrMatrix::zeros(Arc::clone(&pat));
        chunked.scatter_add(&replay, &vals);
        assert_eq!(scalar.values(), chunked.values());

        let mut scalar_u = CsrMatrix::zeros(Arc::clone(&pat));
        for &s in &replay {
            scalar_u.add_slot(s, 1e-12);
        }
        let mut chunked_u = CsrMatrix::zeros(Arc::clone(&pat));
        chunked_u.scatter_add_uniform(&replay, 1e-12);
        assert_eq!(scalar_u.values(), chunked_u.values());

        let s = Complex::new(0.25, -1.5);
        let mut cscalar = CCsrMatrix::zeros(Arc::clone(&pat));
        for (&sl, &v) in replay.iter().zip(vals.iter()) {
            cscalar.add_slot(sl, s * v);
        }
        let mut cchunked = CCsrMatrix::zeros(Arc::clone(&pat));
        cchunked.scatter_add_scaled(&replay, &vals, s);
        assert_eq!(cscalar.values(), cchunked.values());
    }

    /// Batched factor/solve/det must reproduce the serial `CSparseLu` path
    /// bit for bit on every lane, for every batch width, including ragged
    /// final chunks.
    #[test]
    fn batched_factor_solve_matches_serial_bitwise() {
        // MNA-shaped complex system: conductance tridiagonal base + a few
        // s-scaled cap entries (some sharing slots with base entries).
        let n = 12;
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut base = CCsrMatrix::zeros(Arc::clone(&pat));
        for (k, &s) in slots.iter().enumerate() {
            let v = Complex::new(1.5 + (k as f64 * 0.61).sin(), 0.0);
            base.add_slot(s, v);
        }
        // Cap replay: diagonal caps plus coupling caps, with a duplicate.
        let mut cap_slots: Vec<usize> = Vec::new();
        let mut cap_vals: Vec<f64> = Vec::new();
        for i in 0..n {
            cap_slots.push(pat.find(i, i).unwrap());
            cap_vals.push(1e-12 * (1.0 + i as f64));
        }
        cap_slots.push(pat.find(0, 1).unwrap());
        cap_vals.push(-2e-13);
        cap_slots.push(pat.find(0, 0).unwrap()); // duplicate slot
        cap_vals.push(3e-13);

        let sym = Symbolic::analyze(&pat).unwrap();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.77).cos(), (i as f64 * 0.31).sin()))
            .collect();
        let samples: Vec<Complex> = (0..7)
            .map(|k| Complex::from_polar(1e9, 0.3 + 0.4 * k as f64))
            .collect();

        // Serial oracle per sample.
        let mut serial = CSparseLu::new(Arc::clone(&sym));
        let mut y = base.clone();
        let mut serial_dets = Vec::new();
        let mut serial_xs = Vec::new();
        for &s in &samples {
            y.values_mut().copy_from_slice(base.values());
            y.scatter_add_scaled(&cap_slots, &cap_vals, s);
            serial.factor_into(&y).unwrap();
            serial_dets.push(serial.det());
            let mut x = vec![Complex::ZERO; n];
            serial.solve_into(&b, &mut x);
            serial_xs.push(x);
        }

        // Batched, in widths 1..=MAX_LANES over the same samples.
        let mut batch = CSparseLuBatch::new(Arc::clone(&sym));
        for width in 1..=crate::simd::MAX_LANES {
            let mut k0 = 0;
            while k0 < samples.len() {
                let chunk = &samples[k0..(k0 + width).min(samples.len())];
                batch
                    .factor_scaled(base.values(), &cap_slots, &cap_vals, chunk)
                    .unwrap();
                let mut dets = vec![Complex::ZERO; chunk.len()];
                batch.det_into(&mut dets);
                let mut xs = vec![Complex::ZERO; chunk.len() * n];
                batch.solve_into(&b, &mut xs);
                for (l, d) in dets.iter().enumerate() {
                    let want = serial_dets[k0 + l];
                    assert_eq!(d.re.to_bits(), want.re.to_bits(), "width {width}");
                    assert_eq!(d.im.to_bits(), want.im.to_bits(), "width {width}");
                    for (xb, xw) in xs[l * n..(l + 1) * n].iter().zip(&serial_xs[k0 + l]) {
                        assert_eq!(xb.re.to_bits(), xw.re.to_bits(), "width {width}");
                        assert_eq!(xb.im.to_bits(), xw.im.to_bits(), "width {width}");
                    }
                }
                k0 += width;
            }
        }
    }

    /// Any-lane pivot underflow fails the whole batch.
    #[test]
    fn batched_factor_reports_singular_lane() {
        let (pat, slots) = CsrPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut base = CCsrMatrix::zeros(Arc::clone(&pat));
        // Y(s) = [[1, 1], [1, 1 + s·1]]: singular at s = 0, regular else.
        for &s in &slots {
            base.add_slot(s, Complex::ONE);
        }
        let cap_slots = [pat.find(1, 1).unwrap()];
        let cap_vals = [1.0];
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut batch = CSparseLuBatch::new(sym);
        let good = [Complex::new(0.0, 2.0), Complex::new(0.0, 3.0)];
        assert!(batch
            .factor_scaled(base.values(), &cap_slots, &cap_vals, &good)
            .is_ok());
        let bad = [Complex::new(0.0, 2.0), Complex::ZERO];
        assert!(matches!(
            batch.factor_scaled(base.values(), &cap_slots, &cap_vals, &bad),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_dense() {
        let trips = [(0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0), (2, 2, -1.0)];
        let (_pat, a) = csr_from(3, &trips);
        let x = [1.0, -2.0, 0.5];
        let mut y = [0.0; 3];
        a.mul_vec_into(&x, &mut y);
        assert_eq!(y, [-4.0, -5.0, -0.5]);
    }

    #[test]
    fn prefer_sparse_heuristic() {
        assert!(!prefer_sparse(4, 4), "tiny systems stay dense");
        assert!(prefer_sparse(20, 80), "20% fill at dim 20 goes sparse");
        assert!(!prefer_sparse(20, 300), "75% fill stays dense");
        // Chain-scale recalibration: at dim ≥ 64 the threshold relaxes —
        // a 50 % fill pattern stays sparse at dim 100 but not at dim 20.
        assert!(!prefer_sparse(20, 200), "50% fill at dim 20 stays dense");
        assert!(prefer_sparse(100, 5000), "50% fill at dim 100 goes sparse");
        assert!(!prefer_sparse(100, 7000), "70% fill stays dense at any dim");
        assert!(
            prefer_sparse(120, 1200),
            "ladder-shaped chain patterns (sub-10% fill) go sparse"
        );
    }

    /// Markowitz ordering keeps fill near-linear on ladder-shaped (chain)
    /// patterns: a block-tridiagonal system — the structure of a pipeline
    /// of locally coupled stages — must factor with O(dim) nonzeros, not
    /// O(dim²).
    #[test]
    fn ladder_pattern_fill_is_near_linear() {
        for blocks in [10usize, 25, 40] {
            let bs = 4; // unknowns per stage block
            let n = blocks * bs;
            let mut entries: Vec<(usize, usize)> = Vec::new();
            for b in 0..blocks {
                let base = b * bs;
                // Dense local block.
                for i in 0..bs {
                    for j in 0..bs {
                        entries.push((base + i, base + j));
                    }
                }
                // One coupling entry to the next block (the inter-stage
                // loading cap of a pipeline).
                if b + 1 < blocks {
                    entries.push((base + bs - 1, base + bs));
                    entries.push((base + bs, base + bs - 1));
                }
            }
            let (pattern, _) = CsrPattern::from_entries(n, &entries);
            let sym = Symbolic::analyze(&pattern).unwrap();
            assert!(
                sym.factor_nnz() <= 6 * n,
                "n = {n}: factor nnz {} not near-linear",
                sym.factor_nnz()
            );
        }
    }

    /// Larger MNA-shaped random system: tridiagonal + random couplings,
    /// sparse result must match the dense oracle.
    #[test]
    fn random_mna_shape_matches_dense_oracle() {
        let n = 24;
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            trips.push((i, i, 1.0 + rnd()));
            if i + 1 < n {
                let g = 0.1 + rnd();
                trips.push((i, i + 1, -g));
                trips.push((i + 1, i, -g));
            }
        }
        for _ in 0..n {
            let (r, c) = ((rnd() * n as f64) as usize, (rnd() * n as f64) as usize);
            trips.push((r.min(n - 1), c.min(n - 1), rnd() - 0.5));
        }
        let (pat, a) = csr_from(n, &trips);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = vec![0.0; n];
        lu.solve_into(&b, &mut x);
        let dense = a.to_dense();
        let xd = dense.solve(&b).unwrap();
        for (xs, xr) in x.iter().zip(xd.iter()) {
            assert!((xs - xr).abs() <= 1e-9 * xr.abs().max(1.0), "{xs} vs {xr}");
        }
        let (ds, dd) = (lu.det(), dense.det());
        assert!(
            (ds - dd).abs() <= 1e-6 * dd.abs().max(1e-300),
            "{ds} vs {dd}"
        );
    }
}
