//! Minimal, fast complex-number type used throughout the workspace.
//!
//! We deliberately implement our own rather than pulling in `num-complex`:
//! the AC analysis, Mason's rule and root finders need only a small surface
//! (arithmetic, norm, argument, exp/sqrt) and keeping it local makes the
//! workspace dependency-free for math.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
///
/// # Example
/// ```
/// use adc_numerics::Complex;
/// let j = Complex::I;
/// assert!((j * j + Complex::ONE).norm() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Euclidean magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root of [`Complex::norm`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Uses Smith's algorithm to avoid premature overflow/underflow.
    #[inline]
    pub fn inv(self) -> Self {
        Complex::ONE / self
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex {
            re: self.norm().ln(),
            im: self.arg(),
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return Complex::new(self.re.sqrt(), 0.0);
            }
            return Complex::new(0.0, (-self.re).sqrt());
        }
        let r = self.norm();
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt().copysign(self.im);
        Complex { re, im }
    }

    /// Raises to an integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    /// Smith's algorithm: scale by the larger denominator component.
    fn div(self, rhs: Complex) -> Complex {
        if rhs.re.abs() >= rhs.im.abs() {
            if rhs.re == 0.0 && rhs.im == 0.0 {
                // Division by exact zero: propagate infinities like f64 does.
                return Complex::new(self.re / 0.0, self.im / 0.0);
            }
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).norm() <= tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn division_by_small_numbers_is_stable() {
        let a = Complex::new(1.0, 1.0);
        let b = Complex::new(1e-300, 1e-300);
        let q = a / b;
        assert!(q.is_finite());
        assert!(q.norm() > 1e299);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.norm() - 2.5).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt failed for {z}");
        }
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = Complex::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z, 1e-12));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.1, -0.4);
        let mut acc = Complex::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc, 1e-10));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).inv(), 1e-12));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(2.0, 2.0),
        ];
        let s: Complex = xs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, 3.0));
        let p: Complex = xs.iter().copied().product();
        assert!(close(
            p,
            Complex::new(1.0, 0.0) * Complex::I * Complex::new(2.0, 2.0),
            1e-14
        ));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn division_by_zero_yields_non_finite() {
        let q = Complex::ONE / Complex::ZERO;
        assert!(!q.is_finite());
    }
}
