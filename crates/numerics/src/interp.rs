//! Interpolation over tabulated data (Bode plots, sweep results).

/// Piecewise-linear interpolation on a sorted abscissa table.
///
/// Outside the table the boundary value is returned (clamped extrapolation),
/// which is the behaviour the Bode-crossing searches rely on.
///
/// # Panics
/// Panics if the table is empty or lengths differ.
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty table");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Binary search for the bracketing interval.
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Finds the abscissa where the piecewise-linear `ys(xs)` crosses `level`,
/// scanning left to right; `None` if it never crosses.
pub fn find_crossing(xs: &[f64], ys: &[f64], level: f64) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    for i in 1..xs.len() {
        let (a, b) = (ys[i - 1] - level, ys[i] - level);
        if a == 0.0 {
            return Some(xs[i - 1]);
        }
        if a * b < 0.0 {
            let t = a / (a - b);
            return Some(xs[i - 1] + t * (xs[i] - xs[i - 1]));
        }
    }
    if *ys.last()? == level {
        return xs.last().copied();
    }
    None
}

/// Generates `n` logarithmically spaced points from `a` to `b` inclusive.
///
/// # Panics
/// Panics unless `a`, `b` are positive and `n ≥ 2`.
pub fn logspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "logspace needs positive endpoints");
    assert!(n >= 2, "need at least two points");
    let (la, lb) = (a.ln(), b.ln());
    (0..n)
        .map(|i| (la + (lb - la) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Generates `n` linearly spaced points from `a` to `b` inclusive.
///
/// # Panics
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two points");
    (0..n)
        .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_inside_and_outside() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(lerp_table(&xs, &ys, 0.5), 5.0);
        assert_eq!(lerp_table(&xs, &ys, 1.5), 5.0);
        assert_eq!(lerp_table(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 5.0), 0.0);
        assert_eq!(lerp_table(&xs, &ys, 1.0), 10.0);
    }

    #[test]
    fn crossing_detection() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [10.0, 6.0, 2.0, -2.0];
        let x = find_crossing(&xs, &ys, 0.0).unwrap();
        assert!((x - 2.5).abs() < 1e-12);
        assert!(find_crossing(&xs, &ys, 100.0).is_none());
        // exact hit at a sample
        let x = find_crossing(&xs, &ys, 10.0).unwrap();
        assert_eq!(x, 0.0);
    }

    #[test]
    fn spaces() {
        let l = linspace(0.0, 1.0, 5);
        assert_eq!(l, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let g = logspace(1.0, 1000.0, 4);
        for (got, want) in g.iter().zip([1.0, 10.0, 100.0, 1000.0]) {
            assert!((got - want).abs() < 1e-9 * want);
        }
    }
}
