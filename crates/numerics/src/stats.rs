//! Small statistics and dB helpers shared by the converter metrics and the
//! synthesis reports.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Minimum (NaN-propagating-free); returns `None` for empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; returns `None` for empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Power ratio to decibels: `10·log10(p)`.
pub fn db_power(p: f64) -> f64 {
    10.0 * p.log10()
}

/// Amplitude ratio to decibels: `20·log10(a)`.
pub fn db_amplitude(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Decibels (power) back to a linear power ratio.
pub fn from_db_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Decibels (amplitude) back to a linear amplitude ratio.
pub fn from_db_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Linear regression `y ≈ a + b·x`; returns `(a, b)`.
///
/// # Panics
/// Panics if the slices differ in length or have fewer than 2 points.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-15);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0, 3.0, -3.0]) - 3.0).abs() < 1e-15);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn db_round_trips() {
        assert!((db_power(100.0) - 20.0).abs() < 1e-12);
        assert!((db_amplitude(10.0) - 20.0).abs() < 1e-12);
        assert!((from_db_power(db_power(3.7)) - 3.7).abs() < 1e-12);
        assert!((from_db_amplitude(db_amplitude(0.2)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 2.0 - 0.5 * xi).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b + 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_empty() {
        assert!(min(&[]).is_none());
        assert_eq!(max(&[1.0, 5.0, -2.0]), Some(5.0));
        assert_eq!(min(&[1.0, 5.0, -2.0]), Some(-2.0));
    }
}
