//! Dense univariate polynomials with real coefficients.
//!
//! Polynomials are stored ascending: `coeffs[k]` multiplies `x^k`. The zero
//! polynomial is represented by an empty coefficient vector. These are the
//! workhorse behind transfer functions `H(s) = N(s)/D(s)` produced by the
//! DPI/SFG layer, so evaluation at complex frequencies and root extraction
//! get particular attention.

use crate::complex::Complex;
use crate::roots;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A dense real-coefficient polynomial, ascending powers.
///
/// # Example
/// ```
/// use adc_numerics::Poly;
/// let p = Poly::new(vec![2.0, 3.0, 1.0]); // 2 + 3x + x^2
/// assert_eq!(p.degree(), Some(2));
/// assert!((p.eval(-1.0) - 0.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// (near-)zero high-order terms.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![1.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly::new(vec![c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Poly {
            coeffs: vec![0.0, 1.0],
        }
    }

    /// Builds the monic polynomial with the given real roots.
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut p = Poly::one();
        for &r in roots {
            p = &p * &Poly::new(vec![-r, 1.0]);
        }
        p
    }

    /// Builds a real polynomial from complex roots.
    ///
    /// Roots must come in conjugate pairs (up to `tol`) for the result to be
    /// real; imaginary residue below `tol` on each final coefficient is
    /// discarded.
    pub fn from_complex_roots(roots: &[Complex]) -> Self {
        let mut c = vec![Complex::ONE];
        for &r in roots {
            let mut next = vec![Complex::ZERO; c.len() + 1];
            for (k, &ck) in c.iter().enumerate() {
                next[k + 1] += ck;
                next[k] -= ck * r;
            }
            c = next;
        }
        Poly::new(c.into_iter().map(|z| z.re).collect())
    }

    /// Ascending coefficients slice (empty for the zero polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Leading (highest-order) coefficient, or 0 for the zero polynomial.
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^k` (0 beyond the stored degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    fn trim(&mut self) {
        while let Some(&c) = self.coeffs.last() {
            if c == 0.0 {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Horner evaluation at a real point.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Horner evaluation at a complex point (e.g. `s = jω`).
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + c)
    }

    /// First derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| c * k as f64)
                .collect(),
        )
    }

    /// Multiplies by the monomial `x^k` (shifts coefficients up).
    pub fn mul_xpow(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut c = vec![0.0; k];
        c.extend_from_slice(&self.coeffs);
        Poly { coeffs: c }
    }

    /// Scales all coefficients by `k`.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// Substitutes `x → a·x` (frequency scaling), returning `p(a·x)`.
    pub fn scale_arg(&self, a: f64) -> Poly {
        let mut pw = 1.0;
        Poly::new(
            self.coeffs
                .iter()
                .map(|&c| {
                    let v = c * pw;
                    pw *= a;
                    v
                })
                .collect(),
        )
    }

    /// Returns the monic version (leading coefficient 1).
    ///
    /// # Panics
    /// Panics if called on the zero polynomial.
    pub fn monic(&self) -> Poly {
        assert!(!self.is_zero(), "monic() on the zero polynomial");
        let lead = self.leading();
        self.scale(1.0 / lead)
    }

    /// Polynomial long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        let dd = divisor.coeffs.len();
        if self.coeffs.len() < dd {
            return (Poly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0.0; self.coeffs.len() - dd + 1];
        let lead = *divisor.coeffs.last().expect("nonzero divisor");
        for k in (0..quot.len()).rev() {
            let q = rem[k + dd - 1] / lead;
            quot[k] = q;
            if q != 0.0 {
                for (j, &dc) in divisor.coeffs.iter().enumerate() {
                    rem[k + j] -= q * dc;
                }
            }
        }
        rem.truncate(dd - 1);
        (Poly::new(quot), Poly::new(rem))
    }

    /// All complex roots via the Aberth–Ehrlich iteration (see
    /// [`crate::roots::poly_roots`]). Returns an empty vector for degree ≤ 0.
    pub fn roots(&self) -> Vec<Complex> {
        roots::poly_roots(&self.coeffs)
    }

    /// Real roots only (imaginary part below `tol` relative to magnitude).
    pub fn real_roots(&self, tol: f64) -> Vec<f64> {
        self.roots()
            .into_iter()
            .filter(|z| z.im.abs() <= tol * (1.0 + z.norm()))
            .map(|z| z.re)
            .collect()
    }

    /// Infinity norm of the coefficient vector.
    pub fn coeff_norm(&self) -> f64 {
        self.coeffs.iter().fold(0.0, |m, &c| m.max(c.abs()))
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => {
                    if (a - 1.0).abs() > f64::EPSILON {
                        write!(f, "{a}·")?;
                    }
                    write!(f, "x")?;
                }
                _ => {
                    if (a - 1.0).abs() > f64::EPSILON {
                        write!(f, "{a}·")?;
                    }
                    write!(f, "x^{k}")?;
                }
            }
            first = false;
        }
        Ok(())
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut c = vec![0.0; n];
        for (k, slot) in c.iter_mut().enumerate() {
            *slot = self.coeff(k) + rhs.coeff(k);
        }
        Poly::new(c)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut c = vec![0.0; n];
        for (k, slot) in c.iter_mut().enumerate() {
            *slot = self.coeff(k) - rhs.coeff(k);
        }
        Poly::new(c)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut c = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                c[i + j] += a * b;
            }
        }
        Poly::new(c)
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-1.0)
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_trims_zeros() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert!(Poly::new(vec![0.0, 0.0]).is_zero());
    }

    #[test]
    fn eval_horner() {
        let p = Poly::new(vec![1.0, -3.0, 2.0]); // 1 - 3x + 2x^2
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 3.0);
    }

    #[test]
    fn eval_complex_matches_real_axis() {
        let p = Poly::new(vec![0.5, 1.5, -2.0, 4.0]);
        for x in [-2.0, -0.5, 0.0, 0.3, 7.0] {
            let zc = p.eval_complex(Complex::from_real(x));
            assert!((zc.re - p.eval(x)).abs() < 1e-12);
            assert!(zc.im.abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Poly::new(vec![1.0, 2.0, 3.0]);
        let b = Poly::new(vec![-1.0, 4.0]);
        let sum = &a + &b;
        assert_eq!(sum.coeffs(), &[0.0, 6.0, 3.0]);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let prod = &a * &b;
        // (1+2x+3x^2)(-1+4x) = -1 +2x +5x^2 +12x^3
        assert_eq!(prod.coeffs(), &[-1.0, 2.0, 5.0, 12.0]);
    }

    #[test]
    fn derivative_rule() {
        let p = Poly::new(vec![5.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.derivative().coeffs(), &[1.0, 6.0, 6.0]);
        assert!(Poly::constant(4.0).derivative().is_zero());
    }

    #[test]
    fn from_roots_vanishes_at_roots() {
        let p = Poly::from_roots(&[1.0, -2.0, 0.5]);
        for r in [1.0, -2.0, 0.5] {
            assert!(p.eval(r).abs() < 1e-12);
        }
        assert_eq!(p.degree(), Some(3));
        assert!((p.leading() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_complex_conjugate_roots_is_real() {
        let roots = [Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)];
        let p = Poly::from_complex_roots(&roots);
        // (s+1)^2 + 4 = s^2 + 2s + 5
        assert_eq!(p.coeffs().len(), 3);
        assert!((p.coeff(0) - 5.0).abs() < 1e-12);
        assert!((p.coeff(1) - 2.0).abs() < 1e-12);
        assert!((p.coeff(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn div_rem_reconstructs() {
        let n = Poly::new(vec![2.0, -3.0, 1.0, 5.0]);
        let d = Poly::new(vec![1.0, 1.0]);
        let (q, r) = n.div_rem(&d);
        let back = &(&q * &d) + &r;
        for k in 0..4 {
            assert!((back.coeff(k) - n.coeff(k)).abs() < 1e-12);
        }
        assert!(r.degree().map_or(true, |dr| dr < d.degree().unwrap()));
    }

    #[test]
    fn monic_normalizes_leading() {
        let p = Poly::new(vec![2.0, 4.0]);
        let m = p.monic();
        assert!((m.leading() - 1.0).abs() < 1e-15);
        assert!((m.coeff(0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn scale_arg_substitutes() {
        let p = Poly::new(vec![1.0, 1.0, 1.0]); // 1 + x + x^2
        let q = p.scale_arg(2.0); // 1 + 2x + 4x^2
        assert_eq!(q.coeffs(), &[1.0, 2.0, 4.0]);
        assert!((q.eval(3.0) - p.eval(6.0)).abs() < 1e-12);
    }

    #[test]
    fn real_roots_filters_complex_pairs() {
        // (x-1)(x^2+1): only one real root
        let p = &Poly::from_roots(&[1.0]) * &Poly::new(vec![1.0, 0.0, 1.0]);
        let rr = p.real_roots(1e-7);
        assert_eq!(rr.len(), 1);
        assert!((rr[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn display_readable() {
        let p = Poly::new(vec![2.0, 0.0, -1.0]);
        let s = p.to_string();
        assert!(s.contains("x^2"));
        assert_eq!(Poly::zero().to_string(), "0");
    }

    #[test]
    fn mul_xpow_shifts() {
        let p = Poly::new(vec![1.0, 2.0]);
        assert_eq!(p.mul_xpow(2).coeffs(), &[0.0, 0.0, 1.0, 2.0]);
        assert!(Poly::zero().mul_xpow(3).is_zero());
    }
}
