//! Explicit Runge–Kutta integration for small ODE systems.
//!
//! The MDAC settling analysis integrates low-order macromodels (slewing →
//! linear settling of an OTA in feedback), for which classic RK4 with a
//! fixed step and an adaptive RK45 (Dormand–Prince-style embedded pair,
//! Cash–Karp coefficients) are ample.

use crate::{NumResult, NumericsError};

/// One classical RK4 step of `y' = f(t, y)`.
pub fn rk4_step<F>(f: &F, t: f64, y: &[f64], h: f64) -> Vec<f64>
where
    F: Fn(f64, &[f64]) -> Vec<f64>,
{
    let n = y.len();
    let k1 = f(t, y);
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * h * k1[i];
    }
    let k2 = f(t + 0.5 * h, &tmp);
    for i in 0..n {
        tmp[i] = y[i] + 0.5 * h * k2[i];
    }
    let k3 = f(t + 0.5 * h, &tmp);
    for i in 0..n {
        tmp[i] = y[i] + h * k3[i];
    }
    let k4 = f(t + h, &tmp);
    (0..n)
        .map(|i| y[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
        .collect()
}

/// Integrates `y' = f(t, y)` from `t0` to `t1` with `steps` fixed RK4 steps.
/// Returns the final state.
///
/// # Panics
/// Panics if `steps == 0`.
pub fn rk4_integrate<F>(f: F, t0: f64, t1: f64, y0: &[f64], steps: usize) -> Vec<f64>
where
    F: Fn(f64, &[f64]) -> Vec<f64>,
{
    assert!(steps > 0, "at least one step required");
    let h = (t1 - t0) / steps as f64;
    let mut y = y0.to_vec();
    let mut t = t0;
    for _ in 0..steps {
        y = rk4_step(&f, t, &y, h);
        t += h;
    }
    y
}

/// Dense trajectory from fixed-step RK4: returns `(t, y)` samples including
/// both endpoints.
pub fn rk4_trajectory<F>(f: F, t0: f64, t1: f64, y0: &[f64], steps: usize) -> Vec<(f64, Vec<f64>)>
where
    F: Fn(f64, &[f64]) -> Vec<f64>,
{
    assert!(steps > 0, "at least one step required");
    let h = (t1 - t0) / steps as f64;
    let mut out = Vec::with_capacity(steps + 1);
    let mut y = y0.to_vec();
    let mut t = t0;
    out.push((t, y.clone()));
    for _ in 0..steps {
        y = rk4_step(&f, t, &y, h);
        t += h;
        out.push((t, y.clone()));
    }
    out
}

/// Adaptive Cash–Karp RK45 integration to `t1` with relative tolerance
/// `rtol` and absolute tolerance `atol`.
///
/// # Errors
/// Returns [`NumericsError::NoConvergence`] if the step size collapses.
pub fn rk45_integrate<F>(
    f: F,
    t0: f64,
    t1: f64,
    y0: &[f64],
    rtol: f64,
    atol: f64,
) -> NumResult<Vec<f64>>
where
    F: Fn(f64, &[f64]) -> Vec<f64>,
{
    const A: [f64; 5] = [1.0 / 5.0, 3.0 / 10.0, 3.0 / 5.0, 1.0, 7.0 / 8.0];
    const B: [[f64; 5]; 5] = [
        [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0],
        [3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0, 0.0, 0.0],
        [-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0, 0.0],
        [
            1631.0 / 55296.0,
            175.0 / 512.0,
            575.0 / 13824.0,
            44275.0 / 110592.0,
            253.0 / 4096.0,
        ],
    ];
    const C5: [f64; 6] = [
        37.0 / 378.0,
        0.0,
        250.0 / 621.0,
        125.0 / 594.0,
        0.0,
        512.0 / 1771.0,
    ];
    const C4: [f64; 6] = [
        2825.0 / 27648.0,
        0.0,
        18575.0 / 48384.0,
        13525.0 / 55296.0,
        277.0 / 14336.0,
        1.0 / 4.0,
    ];

    let n = y0.len();
    let mut t = t0;
    let mut y = y0.to_vec();
    let span = t1 - t0;
    if span == 0.0 {
        return Ok(y);
    }
    let mut h = span / 64.0;
    let h_min = span.abs() * 1e-14;
    let mut iterations = 0usize;
    while (t1 - t) * span.signum() > 0.0 {
        iterations += 1;
        if iterations > 1_000_000 {
            return Err(NumericsError::NoConvergence {
                algorithm: "rk45",
                iterations,
                residual: (t1 - t).abs(),
            });
        }
        if (t + h - t1) * span.signum() > 0.0 {
            h = t1 - t;
        }
        let mut k: Vec<Vec<f64>> = Vec::with_capacity(6);
        k.push(f(t, &y));
        for s in 0..5 {
            let mut ys = y.clone();
            for (j, kj) in k.iter().enumerate() {
                let b = B[s][j];
                if b != 0.0 {
                    for i in 0..n {
                        ys[i] += h * b * kj[i];
                    }
                }
            }
            k.push(f(t + A[s] * h, &ys));
        }
        let mut y5 = y.clone();
        let mut err: f64 = 0.0;
        for i in 0..n {
            let mut d5 = 0.0;
            let mut d4 = 0.0;
            for (j, kj) in k.iter().enumerate() {
                d5 += C5[j] * kj[i];
                d4 += C4[j] * kj[i];
            }
            y5[i] += h * d5;
            let scale = atol + rtol * y5[i].abs().max(y[i].abs());
            err = err.max((h * (d5 - d4)).abs() / scale);
        }
        if err <= 1.0 {
            t += h;
            y = y5;
            h *= (0.9 * err.max(1e-10).powf(-0.2)).min(5.0);
        } else {
            h *= (0.9 * err.powf(-0.25)).max(0.1);
            if h.abs() < h_min {
                return Err(NumericsError::NoConvergence {
                    algorithm: "rk45",
                    iterations,
                    residual: err,
                });
            }
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rk4_exponential_decay() {
        // y' = -y, y(0)=1 → y(1)=e^{-1}
        let y = rk4_integrate(|_, y| vec![-y[0]], 0.0, 1.0, &[1.0], 100);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn rk4_harmonic_oscillator_energy() {
        // x'' = -x as a system; energy conserved to 4th order.
        let f = |_t: f64, y: &[f64]| vec![y[1], -y[0]];
        let y = rk4_integrate(f, 0.0, 2.0 * std::f64::consts::PI, &[1.0, 0.0], 1000);
        assert!((y[0] - 1.0).abs() < 1e-8);
        assert!(y[1].abs() < 1e-8);
    }

    #[test]
    fn rk45_matches_analytic() {
        // y' = cos(t), y(0)=0 → y = sin(t)
        let y = rk45_integrate(|t, _| vec![t.cos()], 0.0, 1.3, &[0.0], 1e-10, 1e-12).unwrap();
        assert!((y[0] - 1.3f64.sin()).abs() < 1e-8);
    }

    #[test]
    fn rk45_stiff_ish_settling() {
        // OTA-like settling: y' = (1 - y)/tau with tau = 1e-9, integrate 10 tau.
        let tau = 1e-9;
        let y = rk45_integrate(
            move |_, y| vec![(1.0 - y[0]) / tau],
            0.0,
            10.0 * tau,
            &[0.0],
            1e-9,
            1e-12,
        )
        .unwrap();
        let want = 1.0 - (-10.0f64).exp();
        assert!((y[0] - want).abs() < 1e-6);
    }

    #[test]
    fn trajectory_includes_endpoints() {
        let tr = rk4_trajectory(|_, y| vec![-y[0]], 0.0, 1.0, &[1.0], 10);
        assert_eq!(tr.len(), 11);
        assert_eq!(tr[0].0, 0.0);
        assert!((tr[10].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_span_is_identity() {
        let y = rk45_integrate(|_, y| vec![-y[0]], 1.0, 1.0, &[0.7], 1e-9, 1e-12).unwrap();
        assert_eq!(y[0], 0.7);
    }
}
