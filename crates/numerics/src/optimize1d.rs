//! Scalar root finding and 1-D minimization.
//!
//! Spec translation repeatedly inverts monotone design equations (e.g. "what
//! gm meets this settling error") — Brent's method covers the root-finding
//! side, golden-section the minimization side.

use crate::{NumResult, NumericsError};

/// Finds a root of `f` in the bracket `[a, b]` with Brent's method.
///
/// # Errors
/// Returns [`NumericsError::InvalidArgument`] when `f(a)` and `f(b)` do not
/// bracket a sign change, and [`NumericsError::NoConvergence`] if the
/// iteration budget is exhausted.
pub fn brent_root<F>(mut f: F, a: f64, b: f64, tol: f64, max_iter: usize) -> NumResult<f64>
where
    F: FnMut(f64) -> f64,
{
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidArgument(format!(
            "root not bracketed: f({a}) = {fa:.3e}, f({b}) = {fb:.3e}"
        )));
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let cond_range = (3.0 * a + b) / 4.0;
        let out_of_range = !((s > cond_range.min(b)) && (s < cond_range.max(b)));
        let prev = if mflag { (b - c).abs() } else { (c - d).abs() };
        if out_of_range || (s - b).abs() >= prev / 2.0 || prev < tol {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "brent",
        iterations: max_iter,
        residual: fb.abs(),
    })
}

/// Expands a bracket geometrically until `f` changes sign, then calls
/// [`brent_root`]. `x0` must be positive; the search covers
/// `[x0/factor^k, x0·factor^k]`.
///
/// # Errors
/// Propagates bracket/convergence failures.
pub fn brent_root_auto<F>(mut f: F, x0: f64, tol: f64) -> NumResult<f64>
where
    F: FnMut(f64) -> f64,
{
    if x0 <= 0.0 || x0.is_nan() {
        return Err(NumericsError::InvalidArgument("x0 must be positive".into()));
    }
    let f0 = f(x0);
    if f0 == 0.0 {
        return Ok(x0);
    }
    let mut lo = x0;
    let mut hi = x0;
    for _ in 0..200 {
        lo /= 2.0;
        if f(lo) * f0 < 0.0 {
            return brent_root(f, lo, 2.0 * lo, tol, 200);
        }
        hi *= 2.0;
        if f(hi) * f0 < 0.0 {
            return brent_root(f, hi / 2.0, hi, tol, 200);
        }
    }
    Err(NumericsError::InvalidArgument(
        "no sign change found in 2^±200 range".into(),
    ))
}

/// Golden-section minimization of a unimodal `f` on `[a, b]`.
///
/// Returns `(x_min, f(x_min))`.
pub fn golden_min<F>(mut f: F, a: f64, b: f64, tol: f64) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (a.min(b), a.max(b));
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let fx = f(x);
    (x, fx)
}

/// Bisection root finder — slower than Brent but bulletproof; used as a
/// fallback in device-model inversions.
///
/// # Errors
/// Returns [`NumericsError::InvalidArgument`] when the bracket is invalid.
pub fn bisect_root<F>(mut f: F, a: f64, b: f64, tol: f64) -> NumResult<f64>
where
    F: FnMut(f64) -> f64,
{
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::InvalidArgument("root not bracketed".into()));
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol {
            return Ok(m);
        }
        if fa * fm < 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_sqrt2() {
        let r = brent_root(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        let r = brent_root(|x: f64| x.cos() - x, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r.cos() - r).abs() < 1e-12);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(brent_root(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
    }

    #[test]
    fn brent_auto_expands() {
        // Root at 1e6, start guess at 1.0.
        let r = brent_root_auto(|x| x - 1e6, 1.0, 1e-6).unwrap();
        assert!((r - 1e6).abs() < 1e-3);
        // Root at 1e-6, start guess at 1.0.
        let r = brent_root_auto(|x| x - 1e-6, 1.0, 1e-15).unwrap();
        assert!((r - 1e-6).abs() < 1e-9);
    }

    #[test]
    fn golden_finds_parabola_min() {
        let (x, fx) = golden_min(|x| (x - 0.3) * (x - 0.3) + 2.0, -10.0, 10.0, 1e-10);
        assert!((x - 0.3).abs() < 1e-6);
        assert!((fx - 2.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_agrees_with_brent() {
        let fa = |x: f64| x.exp() - 3.0;
        let rb = brent_root(fa, 0.0, 2.0, 1e-13, 100).unwrap();
        let ri = bisect_root(fa, 0.0, 2.0, 1e-13).unwrap();
        assert!((rb - ri).abs() < 1e-10);
        assert!((rb - 3.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn endpoints_that_are_roots() {
        assert_eq!(brent_root(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect_root(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }
}
