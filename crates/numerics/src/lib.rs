//! # adc-numerics
//!
//! Numerical substrate for the pipelined-ADC topology-optimization
//! reproduction: complex arithmetic, real/complex polynomials with robust
//! root finding, dense linear algebra (LU with partial pivoting, real and
//! complex), sparse CSR linear algebra (LU with a reusable symbolic
//! factorization for MNA-shaped systems), radix-2 FFT with spectral
//! windows, explicit Runge-Kutta ODE integration, scalar
//! root-finding/minimization, and small statistics helpers.
//!
//! Everything here is written from scratch (no external math crates) so the
//! higher layers — the circuit simulator, the DPI/SFG symbolic analysis and
//! the behavioural ADC models — depend only on this crate.
//!
//! ## Example
//!
//! ```
//! use adc_numerics::poly::Poly;
//!
//! // (s + 1)(s + 2) = s^2 + 3 s + 2
//! let p = Poly::from_roots(&[-1.0, -2.0]);
//! assert!((p.eval(0.0) - 2.0).abs() < 1e-12);
//! let roots = p.roots();
//! assert_eq!(roots.len(), 2);
//! ```

pub mod complex;
pub mod constants;
pub mod deadline;
#[cfg(feature = "faults")]
pub mod faults;
pub mod fft;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod optimize1d;
pub mod poly;
pub mod quant;
pub mod roots;
pub mod simd;
pub mod sparse;
pub mod stats;

pub use complex::Complex;
pub use deadline::Deadline;
pub use linalg::Matrix;
pub use poly::Poly;

/// Convenience alias used across the workspace for fallible numeric routines.
pub type NumResult<T> = Result<T, NumericsError>;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A linear system was singular (or numerically singular) at the given
    /// elimination step.
    SingularMatrix {
        /// Pivot index at which elimination broke down.
        step: usize,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual or error estimate at the last iterate.
        residual: f64,
    },
    /// Invalid argument (empty input, mismatched dimensions, bad bracket...).
    InvalidArgument(String),
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::SingularMatrix { step, pivot } => {
                write!(
                    f,
                    "singular matrix at elimination step {step} (pivot magnitude {pivot:.3e})"
                )
            }
            NumericsError::NoConvergence {
                algorithm,
                iterations,
                residual,
            } => {
                write!(f, "{algorithm} failed to converge after {iterations} iterations (residual {residual:.3e})")
            }
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = NumericsError::SingularMatrix {
            step: 3,
            pivot: 1e-18,
        };
        assert!(!e.to_string().is_empty());
        let e = NumericsError::NoConvergence {
            algorithm: "newton",
            iterations: 50,
            residual: 1.0,
        };
        assert!(e.to_string().contains("newton"));
        let e = NumericsError::InvalidArgument("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
