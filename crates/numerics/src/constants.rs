//! Physical constants used by noise and device models.

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge in C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Nominal simulation temperature in kelvin (27 °C, the SPICE default).
pub const T_NOMINAL: f64 = 300.15;

/// `kT` at the nominal temperature, in joules.
pub const KT_NOMINAL: f64 = BOLTZMANN * T_NOMINAL;

/// Thermal voltage `kT/q` at nominal temperature, in volts (≈ 25.9 mV).
pub const VT_THERMAL: f64 = KT_NOMINAL / ELEMENTARY_CHARGE;

/// Vacuum permittivity in F/m.
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Relative permittivity of SiO₂.
pub const EPS_R_SIO2: f64 = 3.9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_is_about_26mv() {
        assert!((VT_THERMAL - 0.0259).abs() < 0.001);
    }

    #[test]
    fn kt_is_about_4e21() {
        assert!((KT_NOMINAL - 4.14e-21).abs() < 0.05e-21);
    }
}
