//! Radix-2 Cooley–Tukey FFT and spectral windows.
//!
//! Used by the behavioural ADC layer to compute SNDR/SFDR/ENOB from
//! coherently sampled sine-wave tests, mirroring the standard converter
//! characterization flow (IEEE 1241).

use crate::complex::Complex;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// # Panics
/// Panics if `signal.len()` is not a power of two.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    fft_in_place(&mut data);
    data
}

/// Inverse FFT (in place), normalized by `1/N`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_in_place(data);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.conj() / n;
    }
}

/// Spectral window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// No window (use with coherent sampling).
    Rectangular,
    /// Hann window.
    Hann,
    /// 4-term Blackman–Harris (−92 dB sidelobes) — the converter-test
    /// standard when coherence cannot be guaranteed.
    BlackmanHarris,
}

impl Window {
    /// Window sample `w[i]` for a length-`n` window.
    pub fn value(self, i: usize, n: usize) -> f64 {
        let x = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos() - 0.01168 * (3.0 * x).cos()
            }
        }
    }

    /// Fills a vector with the window samples.
    pub fn samples(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Coherent gain (mean of the window) — used to renormalize amplitudes.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.samples(n).iter().sum::<f64>() / n as f64
    }

    /// Approximate main-lobe half-width in bins (for tone masking).
    pub fn main_lobe_bins(self) -> usize {
        match self {
            Window::Rectangular => 1,
            Window::Hann => 3,
            Window::BlackmanHarris => 5,
        }
    }
}

/// Single-sided power spectrum of a real windowed signal.
///
/// Returns `n/2` bins of power (bin 0 = DC). Power is normalized so that a
/// full-scale sine at a coherent bin concentrates its power in that bin
/// (after window coherent-gain correction).
///
/// # Panics
/// Panics if `signal.len()` is not a power of two.
pub fn power_spectrum(signal: &[f64], window: Window) -> Vec<f64> {
    let n = signal.len();
    let w = window.samples(n);
    let cg = window.coherent_gain(n);
    let windowed: Vec<f64> = signal.iter().zip(&w).map(|(&x, &wi)| x * wi).collect();
    let spec = fft_real(&windowed);
    let scale = 1.0 / (n as f64 * cg);
    (0..n / 2)
        .map(|k| {
            let a = spec[k].norm() * scale * if k == 0 { 1.0 } else { 2.0 };
            // power of the sine that bin represents = (amplitude^2)/2
            if k == 0 {
                a * a
            } else {
                a * a / 2.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0] = Complex::ONE;
        fft_in_place(&mut d);
        for z in d {
            assert!((z - Complex::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let sig: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut d = sig.clone();
        fft_in_place(&mut d);
        ifft_in_place(&mut d);
        for (a, b) in d.iter().zip(sig.iter()) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let sig: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 0.71).sin() * 0.8 + 0.1)
            .collect();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let spec = fft_real(&sig);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / sig.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn coherent_sine_lands_in_one_bin() {
        let n = 256;
        let cycles = 13; // coprime with n → coherent
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * cycles as f64 * i as f64 / n as f64).sin())
            .collect();
        let ps = power_spectrum(&sig, Window::Rectangular);
        let (peak_bin, &peak) = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert_eq!(peak_bin, cycles);
        // Unit-amplitude sine has power 0.5.
        assert!((peak - 0.5).abs() < 1e-9, "peak {peak}");
        // Everything else is numerically zero.
        let rest: f64 = ps
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != cycles)
            .map(|(_, &p)| p)
            .sum();
        assert!(rest < 1e-12);
    }

    #[test]
    fn windows_have_expected_shape() {
        for w in [Window::Hann, Window::BlackmanHarris] {
            let s = w.samples(64);
            // Ends near zero, center near max.
            assert!(s[0] < 0.01);
            assert!(s[32] > 0.9);
        }
        assert_eq!(Window::Rectangular.samples(4), vec![1.0; 4]);
        assert!((Window::Rectangular.coherent_gain(32) - 1.0).abs() < 1e-15);
        assert!((Window::Hann.coherent_gain(1024) - 0.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut d = vec![Complex::ZERO; 12];
        fft_in_place(&mut d);
    }
}
