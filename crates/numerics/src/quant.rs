//! Value quantization and fingerprinting for cache keys.
//!
//! The synthesis layers cache results keyed by *specifications* — tuples of
//! physical quantities (gains, frequencies, capacitances) that are derived
//! by floating-point arithmetic. Two derivations of "the same" spec must
//! map to the same cache key, so keys are built from values **quantized to
//! a relative grid** (the `normalized spec` contract), while *provenance*
//! fingerprints — which attest that two computations had bit-identical
//! inputs — hash the exact IEEE-754 bits.
//!
//! The hash is FNV-1a over 64-bit words: tiny, dependency-free and
//! deterministic across platforms and runs (unlike `DefaultHasher`, whose
//! keys are randomized per process).

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Quantizes `v` onto a relative grid of `digits` significant decimal
/// digits. Values whose relative difference is well below `10^-digits`
/// collapse onto the same representative; the result is a plain `f64`
/// suitable for exact bit comparison.
///
/// Zero, infinities and NaN map to themselves (NaN payloads are collapsed
/// by [`Fingerprint::add_quantized`] before hashing).
///
/// # Example
/// ```
/// use adc_numerics::quant::quantize_rel;
/// let a = quantize_rel(1.234_567_891_23e9, 9);
/// let b = quantize_rel(1.234_567_891_19e9, 9);
/// assert_eq!(a.to_bits(), b.to_bits());
/// assert_ne!(quantize_rel(1.234e9, 9), quantize_rel(1.235e9, 9));
/// ```
#[must_use]
pub fn quantize_rel(v: f64, digits: u32) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let exp = v.abs().log10().floor() as i32;
    let scale = 10f64.powi(digits as i32 - 1 - exp);
    if !scale.is_finite() || scale == 0.0 {
        // |v| so extreme that the grid scale over/underflows (≲1e-300 or
        // ≳1e300 at 9 digits): quantizing would produce NaN/0 collisions,
        // so keep the exact value instead.
        return v;
    }
    (v * scale).round() / scale
}

/// Incremental FNV-1a fingerprint builder over typed words.
///
/// # Example
/// ```
/// use adc_numerics::quant::Fingerprint;
/// let a = Fingerprint::new().add_u64(1).add_f64_exact(2.5).finish();
/// let b = Fingerprint::new().add_u64(1).add_f64_exact(2.5).finish();
/// let c = Fingerprint::new().add_u64(2).add_f64_exact(2.5).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Folds a raw 64-bit word in, byte by byte (FNV-1a).
    #[must_use]
    pub fn add_u64(mut self, word: u64) -> Self {
        for byte in word.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds the **exact** bit pattern of `v` in (provenance hashing: equal
    /// fingerprints attest bit-identical inputs). `-0.0` is collapsed onto
    /// `0.0` and all NaNs onto one canonical NaN so semantically equal
    /// inputs cannot diverge.
    #[must_use]
    pub fn add_f64_exact(self, v: f64) -> Self {
        let canon = if v == 0.0 {
            0.0
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.add_u64(canon.to_bits())
    }

    /// Folds `v` quantized to `digits` significant decimal digits in (cache
    /// *key* hashing: nearby derivations of the same physical spec
    /// collapse).
    #[must_use]
    pub fn add_quantized(self, v: f64, digits: u32) -> Self {
        self.add_f64_exact(quantize_rel(v, digits))
    }

    /// Folds a string in (length-prefixed, so `("ab", "c")` and
    /// `("a", "bc")` differ).
    #[must_use]
    pub fn add_str(mut self, s: &str) -> Self {
        self = self.add_u64(s.len() as u64);
        for byte in s.bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The 64-bit digest.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_collapses_jitter_and_separates_real_differences() {
        let base = 3.141_592_653_589_793e-12;
        let jitter = base * (1.0 + 1e-14);
        assert_eq!(
            quantize_rel(base, 9).to_bits(),
            quantize_rel(jitter, 9).to_bits()
        );
        assert_ne!(
            quantize_rel(base, 9).to_bits(),
            quantize_rel(base * 1.001, 9).to_bits()
        );
        // Sign and scale preserved.
        assert!(quantize_rel(-2.5e6, 9) < 0.0);
        assert_eq!(quantize_rel(0.0, 9), 0.0);
        assert!(quantize_rel(f64::INFINITY, 9).is_infinite());
    }

    #[test]
    fn quantize_extreme_magnitudes_stay_finite() {
        // Below ~1e-300 the relative grid scale would overflow to +inf and
        // the naive round-trip would return NaN; such values pass through
        // exactly instead.
        for &v in &[1e-320, -3e-310] {
            let q = quantize_rel(v, 9);
            assert!(!q.is_nan(), "v = {v} quantized to NaN");
            assert_eq!(q.to_bits(), v.to_bits(), "tiny v = {v} passes through");
        }
        for &v in &[1e308, -9e307] {
            assert!(!quantize_rel(v, 9).is_nan(), "v = {v} quantized to NaN");
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        for &v in &[1.0, 1e-15, -7.77e9, 123.456, 9.999_999_999e3] {
            let q = quantize_rel(v, 9);
            assert_eq!(q.to_bits(), quantize_rel(q, 9).to_bits(), "v = {v}");
        }
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let ab = Fingerprint::new().add_u64(1).add_u64(2).finish();
        let ba = Fingerprint::new().add_u64(2).add_u64(1).finish();
        assert_ne!(ab, ba);
        let s1 = Fingerprint::new().add_str("ab").add_str("c").finish();
        let s2 = Fingerprint::new().add_str("a").add_str("bc").finish();
        assert_ne!(s1, s2);
    }

    #[test]
    fn fingerprint_canonicalizes_zero_and_nan() {
        let pos = Fingerprint::new().add_f64_exact(0.0).finish();
        let neg = Fingerprint::new().add_f64_exact(-0.0).finish();
        assert_eq!(pos, neg);
        let n1 = Fingerprint::new().add_f64_exact(f64::NAN).finish();
        let n2 = Fingerprint::new()
            .add_f64_exact(f64::from_bits(f64::NAN.to_bits() | 1))
            .finish();
        assert_eq!(n1, n2);
    }

    #[test]
    fn fingerprint_stable_across_runs() {
        // Pinned digest: the cache key format is persistent state, so the
        // hash must never silently change.
        let fp = Fingerprint::new()
            .add_u64(42)
            .add_quantized(1.0 + 1e-15, 9)
            .add_str("telescopic")
            .finish();
        let fp2 = Fingerprint::new()
            .add_u64(42)
            .add_quantized(1.0, 9)
            .add_str("telescopic")
            .finish();
        assert_eq!(fp, fp2);
    }
}
