//! Property-based tests on the numerical core: invariants that must hold
//! for arbitrary well-conditioned inputs.

use adc_numerics::complex::Complex;
use adc_numerics::fft::{fft_in_place, fft_real, ifft_in_place};
use adc_numerics::linalg::Matrix;
use adc_numerics::poly::Poly;
use adc_numerics::roots::sort_roots;
use proptest::prelude::*;

proptest! {
    /// Building a polynomial from roots and re-extracting them round-trips.
    #[test]
    fn poly_roots_round_trip(mut roots in proptest::collection::vec(-50.0f64..50.0, 1..6)) {
        // Keep roots separated so multiplicity doesn't blur accuracy.
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(roots.windows(2).all(|w| (w[1] - w[0]).abs() > 0.5));
        let p = Poly::from_roots(&roots);
        let got = sort_roots(p.roots());
        prop_assert_eq!(got.len(), roots.len());
        for (g, w) in got.iter().zip(roots.iter()) {
            prop_assert!((g.re - w).abs() < 1e-4 * (1.0 + w.abs()), "{} vs {}", g.re, w);
            prop_assert!(g.im.abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    /// Polynomial multiplication then division round-trips.
    #[test]
    fn poly_mul_div_round_trip(
        a in proptest::collection::vec(-5.0f64..5.0, 1..5),
        b in proptest::collection::vec(-5.0f64..5.0, 2..5),
    ) {
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        prop_assume!(!pa.is_zero() && !pb.is_zero());
        prop_assume!(pb.leading().abs() > 0.1);
        let prod = &pa * &pb;
        let (q, r) = prod.div_rem(&pb);
        for k in 0..=q.degree().unwrap_or(0).max(pa.degree().unwrap_or(0)) {
            prop_assert!((q.coeff(k) - pa.coeff(k)).abs() < 1e-6 * (1.0 + pa.coeff(k).abs()));
        }
        prop_assert!(r.coeff_norm() < 1e-6 * (1.0 + prod.coeff_norm()));
    }

    /// Horner evaluation is linear: (p+q)(x) = p(x) + q(x).
    #[test]
    fn poly_eval_linearity(
        a in proptest::collection::vec(-5.0f64..5.0, 1..6),
        b in proptest::collection::vec(-5.0f64..5.0, 1..6),
        x in -3.0f64..3.0,
    ) {
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        let sum = &pa + &pb;
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
    }

    /// FFT then inverse FFT reproduces the signal.
    #[test]
    fn fft_inverse_round_trip(sig in proptest::collection::vec(-10.0f64..10.0, 1..5)) {
        // Pad to 64 points.
        let mut data: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(64, Complex::ZERO);
        let orig = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(orig.iter()) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(sig in proptest::collection::vec(-10.0f64..10.0, 32..33)) {
        let mut padded = sig.clone();
        padded.resize(32, 0.0);
        let te: f64 = padded.iter().map(|x| x * x).sum();
        let spec = fft_real(&padded);
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// LU solve leaves a small residual for diagonally dominant systems.
    #[test]
    fn lu_solve_residual(
        vals in proptest::collection::vec(-1.0f64..1.0, 16..17),
        rhs in proptest::collection::vec(-5.0f64..5.0, 4..5),
    ) {
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[i * n + j];
            }
            a[(i, i)] += 4.0; // diagonal dominance → well-conditioned
        }
        let x = a.solve(&rhs).unwrap();
        let back = a.mul_vec(&x);
        for (bi, ri) in back.iter().zip(rhs.iter()) {
            prop_assert!((bi - ri).abs() < 1e-9);
        }
    }

    /// det(A·B) = det(A)·det(B) for small matrices.
    #[test]
    fn det_multiplicative(
        va in proptest::collection::vec(-2.0f64..2.0, 9..10),
        vb in proptest::collection::vec(-2.0f64..2.0, 9..10),
    ) {
        let mk = |v: &[f64]| {
            let mut m = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    m[(i, j)] = v[i * 3 + j];
                }
            }
            m
        };
        let a = mk(&va);
        let b = mk(&vb);
        let lhs = a.mul_mat(&b).det();
        let rhs = a.det() * b.det();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    /// Complex arithmetic: division inverts multiplication.
    #[test]
    fn complex_div_inverts_mul(re1 in -10.0f64..10.0, im1 in -10.0f64..10.0,
                               re2 in -10.0f64..10.0, im2 in -10.0f64..10.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assume!(b.norm() > 1e-3);
        let q = a * b / b;
        prop_assert!((q - a).norm() < 1e-10 * (1.0 + a.norm()));
    }
}

/// Builds an MNA-shaped random sparse system: strictly diagonally bumped
/// node block plus a few ±1 "branch" couplings with structurally zero
/// diagonals, the exact shape the circuit simulator produces.
fn random_mna_triplets(
    n: usize,
    branches: usize,
    offdiag: &[(usize, usize, f64)],
) -> Vec<(usize, usize, f64)> {
    let nodes = n - branches;
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..nodes {
        trips.push((i, i, 1.0)); // conductance floor
    }
    for (k, &(r, c, g)) in offdiag.iter().enumerate() {
        let (r, c) = (r % nodes, c % nodes);
        if r != c {
            // Symmetric conductance stamp.
            trips.push((r, r, g.abs()));
            trips.push((c, c, g.abs()));
            trips.push((r, c, -g.abs()));
            trips.push((c, r, -g.abs()));
        } else {
            trips.push((r, r, g.abs() + 0.1 * k as f64));
        }
    }
    for bidx in 0..branches {
        let br = nodes + bidx;
        let node = bidx % nodes;
        trips.push((node, br, 1.0));
        trips.push((br, node, 1.0));
    }
    trips
}

proptest! {
    /// Sparse LU with the reusable symbolic factorization agrees with the
    /// dense partial-pivoting oracle on solve and determinant across
    /// random MNA-shaped systems.
    #[test]
    fn sparse_lu_matches_dense_oracle(
        offdiag in proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..10.0), 4..20),
        branches in 1usize..4,
        bvals in proptest::collection::vec(-2.0f64..2.0, 16),
    ) {
        use adc_numerics::sparse::{CsrMatrix, CsrPattern, SparseLu, Symbolic};
        let n = 12 + branches;
        let trips = random_mna_triplets(n, branches, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut a = CsrMatrix::zeros(pat.clone());
        for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
            a.add_slot(s, v);
        }
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b = &bvals[..n];
        let mut x = vec![0.0; n];
        lu.solve_into(b, &mut x);
        let dense = a.to_dense();
        let xd = dense.solve(b).unwrap();
        for (xs, xr) in x.iter().zip(xd.iter()) {
            prop_assert!((xs - xr).abs() <= 1e-9 * xr.abs().max(1.0), "{} vs {}", xs, xr);
        }
        let (ds, dd) = (lu.det(), dense.det());
        prop_assert!((ds - dd).abs() <= 1e-8 * dd.abs().max(1e-300), "{} vs {}", ds, dd);
    }

    /// The complex sparse LU agrees with the dense complex oracle: same
    /// pattern, complex values (the `g + s·C` shape TF sampling factors).
    #[test]
    fn complex_sparse_lu_matches_dense_oracle(
        offdiag in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..10.0), 4..16),
        omega in 0.01f64..100.0,
        bvals in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        use adc_numerics::sparse::{CCsrMatrix, CsrPattern, CSparseLu, Symbolic};
        let branches = 2;
        let n = 10 + branches;
        let trips = random_mna_triplets(n, branches, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut a = CCsrMatrix::zeros(pat.clone());
        for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
            // Real conductance plus jω·C-style imaginary part on diagonals.
            a.add_slot(s, Complex::new(v, if v > 0.0 { omega * 1e-2 } else { 0.0 }));
        }
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = CSparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b: Vec<Complex> = bvals[..n].iter().map(|&v| Complex::new(v, -v)).collect();
        let mut x = vec![Complex::ZERO; n];
        lu.solve_into(&b, &mut x);
        let dense = a.to_dense();
        let xd = dense.solve(&b).unwrap();
        for (xs, xr) in x.iter().zip(xd.iter()) {
            prop_assert!((*xs - *xr).norm() <= 1e-9 * xr.norm().max(1.0), "{:?} vs {:?}", xs, xr);
        }
        let (ds, dd) = (lu.det(), dense.det());
        prop_assert!((ds - dd).norm() <= 1e-8 * dd.norm().max(1e-300), "{:?} vs {:?}", ds, dd);
    }

    /// Refactoring retuned values reuses the frozen symbolic factorization
    /// (same `Arc`, no reallocation) and still matches the dense oracle.
    #[test]
    fn sparse_refactor_reuses_symbolic(
        offdiag in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 4..12),
        scales in proptest::collection::vec(0.25f64..4.0, 3),
    ) {
        use adc_numerics::sparse::{CsrMatrix, CsrPattern, SparseLu, Symbolic};
        use std::sync::Arc;
        let n = 10;
        let trips = random_mna_triplets(n, 2, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(Arc::clone(&sym));
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for &scale in &scales {
            // "Retune": same pattern, rescaled conductances.
            let mut a = CsrMatrix::zeros(pat.clone());
            for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
                a.add_slot(s, v * scale);
            }
            lu.factor_into(&a).unwrap();
            prop_assert!(Arc::ptr_eq(lu.symbolic(), &sym), "symbolic must be reused");
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x);
            let xd = a.to_dense().solve(&b).unwrap();
            for (xs, xr) in x.iter().zip(xd.iter()) {
                prop_assert!((xs - xr).abs() <= 1e-9 * xr.abs().max(1.0), "{} vs {}", xs, xr);
            }
        }
    }
}

/// Bitwise equality helper for complex slices (property tests below pin
/// the SIMD dispatch to the scalar oracle bit-for-bit, not approximately).
fn assert_bits_eq(a: &[Complex], b: &[Complex]) -> proptest::CaseResult {
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.re.to_bits(), y.re.to_bits(), "{:?} vs {:?}", x, y);
        prop_assert_eq!(x.im.to_bits(), y.im.to_bits(), "{:?} vs {:?}", x, y);
    }
    Ok(())
}

proptest! {
    /// The dispatched scatter/axpy kernels equal their scalar oracles
    /// bit-for-bit on random slot/value sets — unaligned lengths,
    /// duplicate slots, and subnormal values included. (On CPUs without
    /// SIMD, or under ADC_FORCE_SCALAR=1, both sides run the oracle and
    /// the test degenerates to a tautology — the CI matrix runs both.)
    #[test]
    fn scatter_axpy_kernels_match_scalar_oracles_bitwise(
        vals in proptest::collection::vec(
            prop_oneof![4 => -10.0f64..10.0, 1 => Just(1e-310), 1 => Just(-3.0e-312)],
            1..39,
        ),
        slots in proptest::collection::vec(0usize..24, 1..39),
        fre in -4.0f64..4.0,
        fim in -4.0f64..4.0,
    ) {
        use adc_numerics::simd;
        let k = vals.len().min(slots.len());
        let f = Complex::new(fre, fim);

        // Complex scaled scatter with duplicate slots.
        let init: Vec<Complex> = (0..24).map(|i| Complex::new(0.1 * i as f64, -0.2)).collect();
        let (mut a, mut b) = (init.clone(), init);
        simd::scatter_add_scaled(&mut a, &slots[..k], &vals[..k], f);
        simd::scatter_add_scaled_scalar(&mut b, &slots[..k], &vals[..k], f);
        assert_bits_eq(&a, &b)?;

        // Dense row updates at an unaligned length.
        let mut d1: Vec<f64> = (0..vals.len()).map(|i| 0.3 * i as f64 - 1.0).collect();
        let mut d2 = d1.clone();
        simd::axpy_sub(&mut d1, &vals, fre);
        simd::axpy_sub_scalar(&mut d2, &vals, fre);
        for (x, y) in d1.iter().zip(&d2) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let csrc: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.5 - v)).collect();
        let mut c1: Vec<Complex> = (0..vals.len()).map(|i| Complex::new(1.0, i as f64)).collect();
        let mut c2 = c1.clone();
        simd::caxpy_sub(&mut c1, &csrc, f);
        simd::caxpy_sub_scalar(&mut c2, &csrc, f);
        assert_bits_eq(&c1, &c2)?;

        // Scattered row updates (cols may repeat here; program order is
        // part of the contract).
        let mut w1 = vec![0.25f64; 24];
        let mut w2 = w1.clone();
        simd::scatter_axpy_sub(&mut w1, &slots[..k], &vals[..k], fre);
        simd::scatter_axpy_sub_scalar(&mut w2, &slots[..k], &vals[..k], fre);
        for (x, y) in w1.iter().zip(&w2) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let mut cw1: Vec<Complex> = (0..24).map(|i| Complex::new(-0.5, 0.05 * i as f64)).collect();
        let mut cw2 = cw1.clone();
        simd::scatter_caxpy_sub(&mut cw1, &slots[..k], &csrc[..k], f);
        simd::scatter_caxpy_sub_scalar(&mut cw2, &slots[..k], &csrc[..k], f);
        assert_bits_eq(&cw1, &cw2)?;
    }

    /// The split re/im lane kernels (complex multiply-subtract and Smith
    /// division) equal their scalar oracles bit-for-bit at unaligned lane
    /// counts, subnormal numerators included.
    #[test]
    fn lane_split_kernels_match_scalar_oracles_bitwise(
        are in proptest::collection::vec(
            prop_oneof![4 => -10.0f64..10.0, 1 => Just(2e-311)], 1..19),
        shift in 0.0f64..1.0,
    ) {
        use adc_numerics::simd;
        let n = are.len();
        let aim: Vec<f64> = are.iter().map(|&v| 0.7 - v).collect();
        let bre: Vec<f64> = (0..n).map(|i| 0.1 + 0.37 * ((i as f64) + shift)).collect();
        let bim: Vec<f64> = (0..n).map(|i| -2.0 + 0.19 * i as f64).collect();
        let (mut dr1, mut di1): (Vec<f64>, Vec<f64>) = (vec![0.4; n], vec![-0.6; n]);
        let (mut dr2, mut di2) = (dr1.clone(), di1.clone());
        simd::lane_cmul_sub(&mut dr1, &mut di1, &are, &aim, &bre, &bim);
        simd::lane_cmul_sub_scalar(&mut dr2, &mut di2, &are, &aim, &bre, &bim);
        for (x, y) in dr1.iter().chain(&di1).zip(dr2.iter().chain(&di2)) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let (mut qr1, mut qi1): (Vec<f64>, Vec<f64>) = (vec![0.0; n], vec![0.0; n]);
        let (mut qr2, mut qi2) = (qr1.clone(), qi1.clone());
        simd::lane_cdiv(&mut qr1, &mut qi1, &are, &aim, &bre, &bim);
        simd::lane_cdiv_scalar(&mut qr2, &mut qi2, &are, &aim, &bre, &bim);
        for (x, y) in qr1.iter().chain(&qi1).zip(qr2.iter().chain(&qi2)) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The batched assembly kernel equals its scalar oracle bit-for-bit:
    /// random base values, duplicate cap slots, subnormal cap values, and
    /// every lane width 1..=MAX_LANES.
    #[test]
    fn lane_assemble_matches_scalar_oracle_bitwise(
        base_vals in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 6..20),
        cap_sel in proptest::collection::vec(0usize..64, 1..10),
        cap_mag in prop_oneof![3 => 1e-13f64..1e-11, 1 => Just(4e-310)],
        lanes in 1usize..9,
        sm in 0.5f64..2.0,
    ) {
        use adc_numerics::simd;
        let nnz = base_vals.len() + 2; // two fill-in positions
        let base: Vec<Complex> = base_vals.iter().map(|&(r, i)| Complex::new(r, i)).collect();
        // Injective base scatter (reversed order exercises non-monotonic
        // stores); two trailing factor positions are fill-ins.
        let scatter: Vec<usize> = (0..base.len()).rev().collect();
        let fill_pos = vec![base.len(), base.len() + 1];
        // Cap slots index into `scatter` and may repeat (accumulation
        // order is part of the contract).
        let cap_slots: Vec<usize> = cap_sel.iter().map(|&s| s % base.len()).collect();
        let cap_vals: Vec<f64> = cap_slots.iter().enumerate()
            .map(|(i, _)| cap_mag * (1.0 + i as f64)).collect();
        let s_re: Vec<f64> = (0..lanes).map(|l| sm * (1.0 + 0.1 * l as f64)).collect();
        let s_im: Vec<f64> = (0..lanes).map(|l| -sm * (0.3 + 0.2 * l as f64)).collect();
        let mut f1 = vec![7.5f64; nnz * lanes]; // stale garbage must be overwritten
        let mut g1 = vec![-7.5f64; nnz * lanes];
        let (mut f2, mut g2) = (f1.clone(), g1.clone());
        simd::lane_assemble(&mut f1, &mut g1, &base, &scatter, &fill_pos,
                            &cap_slots, &cap_vals, &s_re, &s_im, lanes);
        simd::lane_assemble_scalar(&mut f2, &mut g2, &base, &scatter, &fill_pos,
                                   &cap_slots, &cap_vals, &s_re, &s_im, lanes);
        for (x, y) in f1.iter().chain(&g1).zip(f2.iter().chain(&g2)) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The batched rational-magnitude scan equals the scalar
    /// Horner/Smith/hypot oracle bit-for-bit at unaligned point counts,
    /// subnormal coefficients included.
    #[test]
    fn rational_mags_matches_scalar_oracle_bitwise(
        num in proptest::collection::vec(
            prop_oneof![4 => -100.0f64..100.0, 1 => Just(6e-309)], 0..8),
        den in proptest::collection::vec(-100.0f64..100.0, 1..10),
        fexp in proptest::collection::vec(0.0f64..9.0, 1..23),
    ) {
        use adc_numerics::simd;
        let freqs: Vec<f64> = fexp.iter().map(|&e| 10.0f64.powf(e)).collect();
        let mut m1 = vec![0.0f64; freqs.len()];
        let mut m2 = m1.clone();
        simd::rational_mags(&num, &den, &freqs, &mut m1);
        simd::rational_mags_scalar(&num, &den, &freqs, &mut m2);
        for (x, y) in m1.iter().zip(&m2) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "num {:?} den {:?}", &num, &den);
        }
    }

    /// End-to-end: the batched SoA complex LU (assemble, schedule-driven
    /// factor, forward/backward solve, determinant) is bit-identical to
    /// the serial per-sample factor/solve/det loop on random MNA-shaped
    /// systems with random cap subsets, at every width 1..=MAX_LANES.
    #[test]
    fn batched_complex_lu_matches_serial_bitwise(
        offdiag in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..10.0), 4..16),
        cap_sel in proptest::collection::vec((0usize..10, 1e-13f64..1e-11), 1..6),
        smag in proptest::collection::vec(1e0f64..1e10, 1..9),
        bvals in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        use adc_numerics::sparse::{CCsrMatrix, CSparseLu, CSparseLuBatch, CsrPattern, Symbolic};
        use std::sync::Arc;
        let branches = 2;
        let n = 10 + branches;
        let trips = random_mna_triplets(n, branches, &offdiag);
        // Cap entries on node diagonals, appended after the base entries.
        let caps: Vec<(usize, usize, f64)> =
            cap_sel.iter().map(|&(r, c)| (r % (n - branches), r % (n - branches), c)).collect();
        let mut entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        entries.extend(caps.iter().map(|&(r, c, _)| (r, c)));
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let (base_slots, cap_slots) = slots.split_at(trips.len());
        let mut base_vals = vec![Complex::ZERO; pat.nnz()];
        for (&s, &(_, _, g)) in base_slots.iter().zip(trips.iter()) {
            base_vals[s] += Complex::from_real(g);
        }
        let cap_vals: Vec<f64> = caps.iter().map(|&(_, _, c)| c).collect();
        let s_list: Vec<Complex> = smag.iter().enumerate()
            .map(|(i, &m)| Complex::from_polar(m, 0.2 + 0.4 * i as f64)).collect();
        let k = s_list.len();
        let b: Vec<Complex> = bvals[..n].iter().map(|&v| Complex::new(v, 0.5 * v)).collect();

        let sym = Symbolic::analyze(&pat).unwrap();
        let mut batch = CSparseLuBatch::new(Arc::clone(&sym));
        let batch_res = batch.factor_scaled(&base_vals, cap_slots, &cap_vals, &s_list);

        // Serial reference: assemble + factor + solve + det per sample.
        let mut y = CCsrMatrix::zeros(Arc::clone(&pat));
        let mut lu = CSparseLu::new(Arc::clone(&sym));
        let mut serial_x = vec![Complex::ZERO; k * n];
        let mut serial_det = vec![Complex::ZERO; k];
        let mut serial_err = None;
        for (l, &s) in s_list.iter().enumerate() {
            y.values_mut().copy_from_slice(&base_vals);
            y.scatter_add_scaled(cap_slots, &cap_vals, s);
            match lu.factor_into(&y) {
                Ok(()) => {
                    lu.solve_into(&b, &mut serial_x[l * n..(l + 1) * n]);
                    serial_det[l] = lu.det();
                }
                Err(e) => {
                    serial_err = Some(e);
                    break;
                }
            }
        }
        match (batch_res, serial_err) {
            (Err(_), Some(_)) => return Ok(()), // both reject the batch
            (Err(e), None) => prop_assert!(false, "batch-only failure: {e}"),
            (Ok(()), Some(e)) => prop_assert!(false, "serial-only failure: {e}"),
            (Ok(()), None) => {}
        }
        let mut xs = vec![Complex::ZERO; k * n];
        let mut dets = vec![Complex::ZERO; k];
        batch.solve_into(&b, &mut xs);
        batch.det_into(&mut dets);
        assert_bits_eq(&xs, &serial_x)?;
        assert_bits_eq(&dets, &serial_det)?;
    }
}
