//! Property-based tests on the numerical core: invariants that must hold
//! for arbitrary well-conditioned inputs.

use adc_numerics::complex::Complex;
use adc_numerics::fft::{fft_in_place, fft_real, ifft_in_place};
use adc_numerics::linalg::Matrix;
use adc_numerics::poly::Poly;
use adc_numerics::roots::sort_roots;
use proptest::prelude::*;

proptest! {
    /// Building a polynomial from roots and re-extracting them round-trips.
    #[test]
    fn poly_roots_round_trip(mut roots in proptest::collection::vec(-50.0f64..50.0, 1..6)) {
        // Keep roots separated so multiplicity doesn't blur accuracy.
        roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(roots.windows(2).all(|w| (w[1] - w[0]).abs() > 0.5));
        let p = Poly::from_roots(&roots);
        let got = sort_roots(p.roots());
        prop_assert_eq!(got.len(), roots.len());
        for (g, w) in got.iter().zip(roots.iter()) {
            prop_assert!((g.re - w).abs() < 1e-4 * (1.0 + w.abs()), "{} vs {}", g.re, w);
            prop_assert!(g.im.abs() < 1e-4 * (1.0 + w.abs()));
        }
    }

    /// Polynomial multiplication then division round-trips.
    #[test]
    fn poly_mul_div_round_trip(
        a in proptest::collection::vec(-5.0f64..5.0, 1..5),
        b in proptest::collection::vec(-5.0f64..5.0, 2..5),
    ) {
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        prop_assume!(!pa.is_zero() && !pb.is_zero());
        prop_assume!(pb.leading().abs() > 0.1);
        let prod = &pa * &pb;
        let (q, r) = prod.div_rem(&pb);
        for k in 0..=q.degree().unwrap_or(0).max(pa.degree().unwrap_or(0)) {
            prop_assert!((q.coeff(k) - pa.coeff(k)).abs() < 1e-6 * (1.0 + pa.coeff(k).abs()));
        }
        prop_assert!(r.coeff_norm() < 1e-6 * (1.0 + prod.coeff_norm()));
    }

    /// Horner evaluation is linear: (p+q)(x) = p(x) + q(x).
    #[test]
    fn poly_eval_linearity(
        a in proptest::collection::vec(-5.0f64..5.0, 1..6),
        b in proptest::collection::vec(-5.0f64..5.0, 1..6),
        x in -3.0f64..3.0,
    ) {
        let pa = Poly::new(a);
        let pb = Poly::new(b);
        let sum = &pa + &pb;
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
    }

    /// FFT then inverse FFT reproduces the signal.
    #[test]
    fn fft_inverse_round_trip(sig in proptest::collection::vec(-10.0f64..10.0, 1..5)) {
        // Pad to 64 points.
        let mut data: Vec<Complex> = sig.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(64, Complex::ZERO);
        let orig = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(orig.iter()) {
            prop_assert!((*a - *b).norm() < 1e-9);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(sig in proptest::collection::vec(-10.0f64..10.0, 32..33)) {
        let mut padded = sig.clone();
        padded.resize(32, 0.0);
        let te: f64 = padded.iter().map(|x| x * x).sum();
        let spec = fft_real(&padded);
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        prop_assert!((te - fe).abs() < 1e-6 * (1.0 + te));
    }

    /// LU solve leaves a small residual for diagonally dominant systems.
    #[test]
    fn lu_solve_residual(
        vals in proptest::collection::vec(-1.0f64..1.0, 16..17),
        rhs in proptest::collection::vec(-5.0f64..5.0, 4..5),
    ) {
        let n = 4;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[i * n + j];
            }
            a[(i, i)] += 4.0; // diagonal dominance → well-conditioned
        }
        let x = a.solve(&rhs).unwrap();
        let back = a.mul_vec(&x);
        for (bi, ri) in back.iter().zip(rhs.iter()) {
            prop_assert!((bi - ri).abs() < 1e-9);
        }
    }

    /// det(A·B) = det(A)·det(B) for small matrices.
    #[test]
    fn det_multiplicative(
        va in proptest::collection::vec(-2.0f64..2.0, 9..10),
        vb in proptest::collection::vec(-2.0f64..2.0, 9..10),
    ) {
        let mk = |v: &[f64]| {
            let mut m = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    m[(i, j)] = v[i * 3 + j];
                }
            }
            m
        };
        let a = mk(&va);
        let b = mk(&vb);
        let lhs = a.mul_mat(&b).det();
        let rhs = a.det() * b.det();
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + rhs.abs()));
    }

    /// Complex arithmetic: division inverts multiplication.
    #[test]
    fn complex_div_inverts_mul(re1 in -10.0f64..10.0, im1 in -10.0f64..10.0,
                               re2 in -10.0f64..10.0, im2 in -10.0f64..10.0) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assume!(b.norm() > 1e-3);
        let q = a * b / b;
        prop_assert!((q - a).norm() < 1e-10 * (1.0 + a.norm()));
    }
}

/// Builds an MNA-shaped random sparse system: strictly diagonally bumped
/// node block plus a few ±1 "branch" couplings with structurally zero
/// diagonals, the exact shape the circuit simulator produces.
fn random_mna_triplets(
    n: usize,
    branches: usize,
    offdiag: &[(usize, usize, f64)],
) -> Vec<(usize, usize, f64)> {
    let nodes = n - branches;
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..nodes {
        trips.push((i, i, 1.0)); // conductance floor
    }
    for (k, &(r, c, g)) in offdiag.iter().enumerate() {
        let (r, c) = (r % nodes, c % nodes);
        if r != c {
            // Symmetric conductance stamp.
            trips.push((r, r, g.abs()));
            trips.push((c, c, g.abs()));
            trips.push((r, c, -g.abs()));
            trips.push((c, r, -g.abs()));
        } else {
            trips.push((r, r, g.abs() + 0.1 * k as f64));
        }
    }
    for bidx in 0..branches {
        let br = nodes + bidx;
        let node = bidx % nodes;
        trips.push((node, br, 1.0));
        trips.push((br, node, 1.0));
    }
    trips
}

proptest! {
    /// Sparse LU with the reusable symbolic factorization agrees with the
    /// dense partial-pivoting oracle on solve and determinant across
    /// random MNA-shaped systems.
    #[test]
    fn sparse_lu_matches_dense_oracle(
        offdiag in proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..10.0), 4..20),
        branches in 1usize..4,
        bvals in proptest::collection::vec(-2.0f64..2.0, 16),
    ) {
        use adc_numerics::sparse::{CsrMatrix, CsrPattern, SparseLu, Symbolic};
        let n = 12 + branches;
        let trips = random_mna_triplets(n, branches, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut a = CsrMatrix::zeros(pat.clone());
        for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
            a.add_slot(s, v);
        }
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b = &bvals[..n];
        let mut x = vec![0.0; n];
        lu.solve_into(b, &mut x);
        let dense = a.to_dense();
        let xd = dense.solve(b).unwrap();
        for (xs, xr) in x.iter().zip(xd.iter()) {
            prop_assert!((xs - xr).abs() <= 1e-9 * xr.abs().max(1.0), "{} vs {}", xs, xr);
        }
        let (ds, dd) = (lu.det(), dense.det());
        prop_assert!((ds - dd).abs() <= 1e-8 * dd.abs().max(1e-300), "{} vs {}", ds, dd);
    }

    /// The complex sparse LU agrees with the dense complex oracle: same
    /// pattern, complex values (the `g + s·C` shape TF sampling factors).
    #[test]
    fn complex_sparse_lu_matches_dense_oracle(
        offdiag in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..10.0), 4..16),
        omega in 0.01f64..100.0,
        bvals in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        use adc_numerics::sparse::{CCsrMatrix, CsrPattern, CSparseLu, Symbolic};
        let branches = 2;
        let n = 10 + branches;
        let trips = random_mna_triplets(n, branches, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let mut a = CCsrMatrix::zeros(pat.clone());
        for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
            // Real conductance plus jω·C-style imaginary part on diagonals.
            a.add_slot(s, Complex::new(v, if v > 0.0 { omega * 1e-2 } else { 0.0 }));
        }
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = CSparseLu::new(sym);
        lu.factor_into(&a).unwrap();
        let b: Vec<Complex> = bvals[..n].iter().map(|&v| Complex::new(v, -v)).collect();
        let mut x = vec![Complex::ZERO; n];
        lu.solve_into(&b, &mut x);
        let dense = a.to_dense();
        let xd = dense.solve(&b).unwrap();
        for (xs, xr) in x.iter().zip(xd.iter()) {
            prop_assert!((*xs - *xr).norm() <= 1e-9 * xr.norm().max(1.0), "{:?} vs {:?}", xs, xr);
        }
        let (ds, dd) = (lu.det(), dense.det());
        prop_assert!((ds - dd).norm() <= 1e-8 * dd.norm().max(1e-300), "{:?} vs {:?}", ds, dd);
    }

    /// Refactoring retuned values reuses the frozen symbolic factorization
    /// (same `Arc`, no reallocation) and still matches the dense oracle.
    #[test]
    fn sparse_refactor_reuses_symbolic(
        offdiag in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 4..12),
        scales in proptest::collection::vec(0.25f64..4.0, 3),
    ) {
        use adc_numerics::sparse::{CsrMatrix, CsrPattern, SparseLu, Symbolic};
        use std::sync::Arc;
        let n = 10;
        let trips = random_mna_triplets(n, 2, &offdiag);
        let entries: Vec<(usize, usize)> = trips.iter().map(|&(r, c, _)| (r, c)).collect();
        let (pat, slots) = CsrPattern::from_entries(n, &entries);
        let sym = Symbolic::analyze(&pat).unwrap();
        let mut lu = SparseLu::new(Arc::clone(&sym));
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for &scale in &scales {
            // "Retune": same pattern, rescaled conductances.
            let mut a = CsrMatrix::zeros(pat.clone());
            for (&s, &(_, _, v)) in slots.iter().zip(trips.iter()) {
                a.add_slot(s, v * scale);
            }
            lu.factor_into(&a).unwrap();
            prop_assert!(Arc::ptr_eq(lu.symbolic(), &sym), "symbolic must be reused");
            let mut x = vec![0.0; n];
            lu.solve_into(&b, &mut x);
            let xd = a.to_dense().solve(&b).unwrap();
            for (xs, xr) in x.iter().zip(xd.iter()) {
                prop_assert!((xs - xr).abs() <= 1e-9 * xr.abs().max(1.0), "{} vs {}", xs, xr);
            }
        }
    }
}
