//! The synthesis driver: anneal globally, polish locally, and support
//! warm-started *retargeting* of a previous design to a new specification.

use crate::anneal::{anneal, outcome_cost, AnnealConfig, AnnealResult};
use crate::constraints::{all_satisfied, constraints_fingerprint, Constraint};
use crate::evaluator::{EvalOutcome, Evaluator, Performance};
use crate::neldermead::nelder_mead;
use crate::space::DesignSpace;
use adc_numerics::quant::Fingerprint;
use adc_numerics::Deadline;
use std::cell::Cell;

/// Typed failure of a budgeted synthesis run ([`Synthesizer::try_execute`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// The wall-clock budget expired before the search finished.
    Timeout {
        /// Evaluator calls consumed before the budget ran out.
        evaluations: usize,
    },
    /// The search could not produce a usable result (e.g. an injected
    /// non-convergence fault during chaos testing).
    Failed(String),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::Timeout { evaluations } => write!(
                f,
                "synthesis exceeded its wall-clock budget after {evaluations} evaluations"
            ),
            SynthError::Failed(msg) => write!(f, "synthesis failed: {msg}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Significant decimal digits used when quantizing problem parameters
/// (constraint targets, bounds) into fingerprints — the synthesis layer's
/// half of the normalized-spec contract.
pub const PROBLEM_NORM_DIGITS: u32 = 9;

/// Synthesis budget and seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Annealing evaluations.
    pub iterations: usize,
    /// Nelder–Mead polish iterations.
    pub nm_iterations: usize,
    /// Starting neighbourhood scale.
    pub sigma0: f64,
    /// Final neighbourhood scale.
    pub sigma_end: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of the annealing tail run with evaluator warm starts
    /// enabled (see [`crate::anneal::AnnealConfig::warm_tail_frac`]).
    pub warm_tail_frac: f64,
    /// Cost-quantization grid that keeps warm-tail trajectories identical
    /// to cold ones (see
    /// [`crate::anneal::AnnealConfig::cost_quant_digits`]).
    pub cost_quant_digits: Option<u32>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            iterations: 2000,
            nm_iterations: 150,
            sigma0: 0.25,
            sigma_end: 0.02,
            seed: 1,
            warm_tail_frac: 0.3,
            cost_quant_digits: Some(6),
        }
    }
}

impl SynthConfig {
    /// The reduced-budget configuration used for retargeting runs.
    pub fn retarget_budget(&self) -> SynthConfig {
        SynthConfig {
            iterations: (self.iterations / 5).max(50),
            nm_iterations: self.nm_iterations,
            sigma0: 0.06,
            sigma_end: 0.01,
            seed: self.seed.wrapping_add(1),
            warm_tail_frac: self.warm_tail_frac,
            cost_quant_digits: self.cost_quant_digits,
        }
    }

    /// Deterministic fingerprint of the full budget/seed configuration.
    /// Two runs with equal config and problem fingerprints (and equal warm
    /// starts) produce bit-identical [`SynthResult`]s — the contract
    /// synthesis caches key on.
    pub fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(self.iterations as u64)
            .add_u64(self.nm_iterations as u64)
            .add_f64_exact(self.sigma0)
            .add_f64_exact(self.sigma_end)
            .add_u64(self.seed)
            .add_f64_exact(self.warm_tail_frac)
            // 0 encodes None; quantization grids shift by one.
            .add_u64(self.cost_quant_digits.map_or(0, |d| u64::from(d) + 1))
            .finish()
    }
}

/// Result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// Best design point in real units (design-space variable order).
    pub best_x: Vec<f64>,
    /// Best point in normalized coordinates (for warm starts).
    pub best_u: Vec<f64>,
    /// Performance at the best point.
    pub best_perf: Performance,
    /// Scalarized cost at the best point.
    pub best_cost: f64,
    /// All constraints satisfied?
    pub feasible: bool,
    /// Total evaluator calls consumed.
    pub evaluations: usize,
}

/// How a synthesis run starts — the cache-aware entry point used by block
/// caches layered above the synthesizer.
#[derive(Debug, Clone, Copy)]
pub enum WarmStart<'a> {
    /// Cold synthesis: global annealing from scratch.
    Cold,
    /// Retargeting: warm-start the (reduced-budget) search from a previous
    /// result for a neighbouring spec.
    Retarget(&'a SynthResult),
    /// Cache hit: the previous result *is* the answer for this exact
    /// problem + config; return it verbatim without touching the evaluator.
    Reuse(&'a SynthResult),
}

/// A reusable synthesis problem: space + constraints + objective.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    space: DesignSpace,
    constraints: Vec<Constraint>,
    objective: String,
}

impl Synthesizer {
    /// Creates a synthesizer minimizing `objective` subject to
    /// `constraints`.
    pub fn new(space: DesignSpace, constraints: Vec<Constraint>, objective: &str) -> Self {
        Synthesizer {
            space,
            constraints,
            objective: objective.to_string(),
        }
    }

    /// The design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The constraint set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Replaces the constraint set (spec retargeting).
    pub fn set_constraints(&mut self, constraints: Vec<Constraint>) {
        self.constraints = constraints;
    }

    /// Deterministic fingerprint of the synthesis *problem* — design-space
    /// bounds and scales, the constraint set (targets on the normalized
    /// grid) and the objective. Together with [`SynthConfig::fingerprint`]
    /// and the evaluator's own fingerprint this identifies a synthesis run
    /// completely; caches of [`SynthResult`]s key on it.
    pub fn problem_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new().add_u64(self.space.dim() as u64);
        for v in self.space.vars() {
            fp = fp
                .add_str(&v.name)
                .add_quantized(v.lo, PROBLEM_NORM_DIGITS)
                .add_quantized(v.hi, PROBLEM_NORM_DIGITS)
                .add_u64(u64::from(v.log));
        }
        fp.add_u64(constraints_fingerprint(
            &self.constraints,
            PROBLEM_NORM_DIGITS,
        ))
        .add_str(&self.objective)
        .finish()
    }

    fn finish<E: Evaluator>(
        &self,
        evaluator: &E,
        sa: AnnealResult,
        nm_iterations: usize,
    ) -> SynthResult {
        let evals = Cell::new(sa.evaluations);
        // Objective reference consistent with the annealing cost.
        let obj_ref = sa
            .best_perf
            .as_ref()
            .and_then(|p| p.get(&self.objective))
            .map(|v| v.abs().max(1e-30))
            .unwrap_or(1.0);
        let cost = |u: &[f64]| {
            evals.set(evals.get() + 1);
            let out = evaluator.evaluate(&self.space.denormalize(u));
            outcome_cost(&out, &self.constraints, &self.objective, obj_ref)
        };
        // The polish probes a tight cluster of candidates: let
        // simulation-backed evaluators warm-start between them.
        evaluator.set_local_phase(true);
        let (u_pol, _) = nelder_mead(cost, &sa.best_u, 0.03, nm_iterations);
        evaluator.set_local_phase(false);
        // Re-evaluate the polished point for its true performance on the
        // history-free cold path (the accepted result must not depend on
        // where the polish happened to leave the solver state); keep the
        // annealing point if polishing somehow regressed.
        let out_pol = evaluator.evaluate(&self.space.denormalize(&u_pol));
        evals.set(evals.get() + 1);
        let cost_pol = outcome_cost(&out_pol, &self.constraints, &self.objective, obj_ref);
        let sa_cost = outcome_cost(
            &sa.best_perf
                .clone()
                .map(EvalOutcome::Ok)
                .unwrap_or(EvalOutcome::Failed("no feasible point".into())),
            &self.constraints,
            &self.objective,
            obj_ref,
        );
        let (best_u, best_perf, best_cost) = if cost_pol <= sa_cost {
            match out_pol {
                EvalOutcome::Ok(p) => (u_pol, p, cost_pol),
                EvalOutcome::Failed(_) => (
                    sa.best_u.clone(),
                    sa.best_perf.clone().unwrap_or_default(),
                    sa_cost,
                ),
            }
        } else {
            (
                sa.best_u.clone(),
                sa.best_perf.clone().unwrap_or_default(),
                sa_cost,
            )
        };
        let feasible = all_satisfied(&self.constraints, &best_perf);
        SynthResult {
            best_x: self.space.denormalize(&best_u),
            best_u,
            best_perf,
            best_cost,
            feasible,
            evaluations: evals.get(),
        }
    }

    /// Anneal + polish with a cooperative deadline: the annealing schedule
    /// checks it per step, and the Nelder–Mead polish is only entered when
    /// budget remains (a result that survives polish is a success even if
    /// the deadline expires at the very end).
    fn run_budgeted<E: Evaluator>(
        &self,
        evaluator: &E,
        sa_cfg: AnnealConfig,
        start_u: Option<&[f64]>,
        nm_iterations: usize,
    ) -> Result<SynthResult, SynthError> {
        let deadline = sa_cfg.deadline;
        let sa = anneal(
            &self.space,
            evaluator,
            &self.constraints,
            &self.objective,
            &sa_cfg,
            start_u,
        );
        if sa.timed_out {
            return Err(SynthError::Timeout {
                evaluations: sa.evaluations,
            });
        }
        if deadline.expired() {
            return Err(SynthError::Timeout {
                evaluations: sa.evaluations,
            });
        }
        Ok(self.finish(evaluator, sa, nm_iterations))
    }

    /// Cold synthesis: global annealing + local polish.
    pub fn synthesize<E: Evaluator>(&self, evaluator: &E, cfg: &SynthConfig) -> SynthResult {
        let sa_cfg = AnnealConfig {
            iterations: cfg.iterations,
            sigma0: cfg.sigma0,
            sigma_end: cfg.sigma_end,
            seed: cfg.seed,
            warm_tail_frac: cfg.warm_tail_frac,
            cost_quant_digits: cfg.cost_quant_digits,
            deadline: Deadline::none(),
        };
        self.run_budgeted(evaluator, sa_cfg, None, cfg.nm_iterations)
            .expect("unlimited deadline cannot time out")
    }

    /// Retargeting: re-synthesize with a warm start from a previous result,
    /// on a fraction of the cold budget (the paper's "1 day instead of 2–3
    /// weeks" reuse).
    pub fn retarget<E: Evaluator>(
        &self,
        evaluator: &E,
        previous: &SynthResult,
        cfg: &SynthConfig,
    ) -> SynthResult {
        let r = cfg.retarget_budget();
        let sa_cfg = AnnealConfig {
            iterations: r.iterations,
            sigma0: r.sigma0,
            sigma_end: r.sigma_end,
            seed: r.seed,
            warm_tail_frac: r.warm_tail_frac,
            cost_quant_digits: r.cost_quant_digits,
            deadline: Deadline::none(),
        };
        self.run_budgeted(evaluator, sa_cfg, Some(&previous.best_u), r.nm_iterations)
            .expect("unlimited deadline cannot time out")
    }

    /// Unified entry point dispatching on the [`WarmStart`] mode.
    /// [`WarmStart::Reuse`] is the cache hit path: the stored result is
    /// returned **verbatim** (including its recorded evaluation count), so
    /// a cache hit is bit-indistinguishable from re-running the original
    /// synthesis; callers account the evaluations actually *spent* in a
    /// run separately.
    pub fn execute<E: Evaluator>(
        &self,
        evaluator: &E,
        cfg: &SynthConfig,
        start: WarmStart<'_>,
    ) -> SynthResult {
        match start {
            WarmStart::Cold => self.synthesize(evaluator, cfg),
            WarmStart::Retarget(prev) => self.retarget(evaluator, prev, cfg),
            WarmStart::Reuse(hit) => hit.clone(),
        }
    }

    /// [`Synthesizer::execute`] with a cooperative wall-clock budget and a
    /// typed error channel: an expired `deadline` yields
    /// [`SynthError::Timeout`] instead of an open-ended search. An
    /// unlimited deadline takes a path bit-identical to
    /// [`Synthesizer::execute`]. [`WarmStart::Reuse`] never times out —
    /// returning a stored result consumes no budget.
    pub fn try_execute<E: Evaluator>(
        &self,
        evaluator: &E,
        cfg: &SynthConfig,
        start: WarmStart<'_>,
        deadline: Deadline,
    ) -> Result<SynthResult, SynthError> {
        #[cfg(feature = "faults")]
        if let Some(e) = injected_synth_fault() {
            return Err(e);
        }
        match start {
            WarmStart::Reuse(hit) => Ok(hit.clone()),
            WarmStart::Cold => {
                let sa_cfg = AnnealConfig {
                    iterations: cfg.iterations,
                    sigma0: cfg.sigma0,
                    sigma_end: cfg.sigma_end,
                    seed: cfg.seed,
                    warm_tail_frac: cfg.warm_tail_frac,
                    cost_quant_digits: cfg.cost_quant_digits,
                    deadline,
                };
                self.run_budgeted(evaluator, sa_cfg, None, cfg.nm_iterations)
            }
            WarmStart::Retarget(prev) => {
                let r = cfg.retarget_budget();
                let sa_cfg = AnnealConfig {
                    iterations: r.iterations,
                    sigma0: r.sigma0,
                    sigma_end: r.sigma_end,
                    seed: r.seed,
                    warm_tail_frac: r.warm_tail_frac,
                    cost_quant_digits: r.cost_quant_digits,
                    deadline,
                };
                self.run_budgeted(evaluator, sa_cfg, Some(&prev.best_u), r.nm_iterations)
            }
        }
    }
}

/// Maps an armed `synth_execute` fault-injection rule to the typed failure
/// the flow layer must absorb. `Corrupt` has no cache datum at this layer,
/// so it degrades to a generic failure.
#[cfg(feature = "faults")]
fn injected_synth_fault() -> Option<SynthError> {
    use adc_numerics::faults::{self, FaultAction};
    match faults::check(faults::SITE_SYNTH_EXECUTE)? {
        FaultAction::FailConvergence | FaultAction::Corrupt => Some(SynthError::Failed(
            "injected fault: synthesis non-convergence".into(),
        )),
        FaultAction::Panic => panic!("injected fault: synth_execute panic"),
        FaultAction::Timeout => Some(SynthError::Timeout { evaluations: 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintKind;
    use crate::space::DesignVar;

    /// Analytic single-stage-amp-like model: two variables (current `i`,
    /// width `w`); gain ∝ sqrt(w/i)·k, bandwidth ∝ sqrt(w·i), power ∝ i.
    fn amp_eval(x: &[f64]) -> EvalOutcome {
        let (i, w) = (x[0], x[1]);
        let mut p = Performance::new();
        p.set("power", 3.3 * i);
        p.set("gain", 40.0 * (w / i).sqrt());
        p.set("bw", 2e9 * (w * i).sqrt());
        EvalOutcome::Ok(p)
    }

    fn amp_space() -> DesignSpace {
        DesignSpace::new(vec![
            DesignVar::log("i", 1e-5, 1e-2),
            DesignVar::log("w", 1e-6, 1e-3),
        ])
    }

    fn amp_constraints(gain: f64, bw: f64) -> Vec<Constraint> {
        vec![
            Constraint::new("gain", ConstraintKind::AtLeast, gain),
            Constraint::new("bw", ConstraintKind::AtLeast, bw),
        ]
    }

    #[test]
    fn synthesize_meets_spec_with_minimal_power() {
        let synth = Synthesizer::new(amp_space(), amp_constraints(60.0, 1e6), "power");
        let cfg = SynthConfig {
            iterations: 3000,
            seed: 11,
            ..Default::default()
        };
        let run = synth.synthesize(&amp_eval, &cfg);
        assert!(run.feasible, "{:?}", run.best_perf);
        // Power should approach the analytic minimum: constraints active.
        let gain = run.best_perf.get("gain").unwrap();
        assert!(gain < 120.0, "gain overshoot wastes power: {gain}");
    }

    #[test]
    fn retarget_uses_fewer_evaluations() {
        let mut synth = Synthesizer::new(amp_space(), amp_constraints(60.0, 1e6), "power");
        let cfg = SynthConfig {
            iterations: 3000,
            seed: 12,
            ..Default::default()
        };
        let cold = synth.synthesize(&amp_eval, &cfg);
        assert!(cold.feasible);
        // New spec: slightly different gain/bandwidth targets.
        synth.set_constraints(amp_constraints(50.0, 1.2e6));
        let warm = synth.retarget(&amp_eval, &cold, &cfg);
        assert!(warm.feasible, "{:?}", warm.best_perf);
        assert!(
            warm.evaluations * 3 < cold.evaluations,
            "warm {} vs cold {}",
            warm.evaluations,
            cold.evaluations
        );
    }

    #[test]
    fn infeasible_spec_reports_infeasible() {
        let synth = Synthesizer::new(
            amp_space(),
            // gain ≥ 40·sqrt(w/i) max = 40·sqrt(1e-3/1e-5) = 400; ask 4000.
            amp_constraints(4000.0, 1e6),
            "power",
        );
        let cfg = SynthConfig {
            iterations: 800,
            seed: 13,
            ..Default::default()
        };
        let run = synth.synthesize(&amp_eval, &cfg);
        assert!(!run.feasible);
    }

    #[test]
    fn try_execute_unlimited_matches_execute_and_zero_budget_times_out() {
        let synth = Synthesizer::new(amp_space(), amp_constraints(60.0, 1e6), "power");
        let cfg = SynthConfig {
            iterations: 600,
            seed: 14,
            ..Default::default()
        };
        let plain = synth.execute(&amp_eval, &cfg, WarmStart::Cold);
        let budgeted = synth
            .try_execute(&amp_eval, &cfg, WarmStart::Cold, Deadline::none())
            .unwrap();
        assert_eq!(plain.best_x, budgeted.best_x);
        assert_eq!(plain.evaluations, budgeted.evaluations);

        let expired = Deadline::within(std::time::Duration::from_secs(0));
        match synth.try_execute(&amp_eval, &cfg, WarmStart::Cold, expired) {
            Err(SynthError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        // Reuse is a cache hit: no budget consumed, never a timeout.
        let reused = synth
            .try_execute(&amp_eval, &cfg, WarmStart::Reuse(&plain), expired)
            .unwrap();
        assert_eq!(reused.best_x, plain.best_x);
    }

    #[test]
    fn results_are_reproducible() {
        let synth = Synthesizer::new(amp_space(), amp_constraints(60.0, 1e6), "power");
        let cfg = SynthConfig {
            iterations: 600,
            seed: 14,
            ..Default::default()
        };
        let a = synth.synthesize(&amp_eval, &cfg);
        let b = synth.synthesize(&amp_eval, &cfg);
        assert_eq!(a.best_x, b.best_x);
        assert_eq!(a.evaluations, b.evaluations);
    }
}
