//! Dynamic chain sign-off: runs a flattened pipeline testbench through
//! the clocked transient engine for N full φ1/φ2 periods and reports
//! per-stage settling against the ½-LSB criterion, residue-transfer
//! accuracy and slew-limited intervals — the discrete-time leg the
//! small-signal [`crate::chain`] evaluation cannot see.
//!
//! The evaluator drives two runs at `mid_rail ± δ` and works on the
//! **differential** stage amplitudes `a_k = (v_k⁺ − v_k⁻)/2`, cancelling
//! the servo bias point so residue gains compare directly against the
//! ideal interstage gains.
//!
//! Like [`crate::chain::ChainReport`], every reported value is quantized
//! onto a relative grid a few orders above solver noise. The adaptive
//! stepper's LTE controller makes its accept/reject decisions on the same
//! quantized grid, so the sparse and dense engines walk identical step
//! sequences and a [`TranChainReport`] is bit-identical across engines.

use adc_numerics::quant::quantize_rel;
use adc_spice::dc::{dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::linearize::SolverChoice;
use adc_spice::netlist::{Circuit, ClockPhase, NodeId};
use adc_spice::tran::{
    transient_adaptive, transient_with, Clock, InitialCondition, TimeStepConfig, TranOptions,
    TranResult, TranWorkspace,
};
use adc_spice::waveform::Waveform;

/// A chain testbench prepared for clocked transient sign-off: the
/// flattened netlist plus the schedule/scale metadata the verifier needs
/// (the circuit-level builder lives in `adc-mdac`; this struct keeps the
/// evaluator decoupled from it, mirroring [`crate::hybrid::BenchSetup`]).
#[derive(Debug, Clone)]
pub struct TranChainSetup {
    /// Flattened chain netlist. The input drive is rewritten in place per
    /// run (DC hold at `mid_rail ± δ`); topology is never touched, so
    /// bound workspaces stay valid.
    pub circuit: Circuit,
    /// Name of the input voltage source.
    pub input_source: String,
    /// Per-stage output nodes, front to back.
    pub stage_outputs: Vec<NodeId>,
    /// Ideal interstage gain of each stage (`2^{m−1}`).
    pub stage_gains: Vec<f64>,
    /// Clock phase during which each stage amplifies (its output is valid
    /// at the end of this phase).
    pub stage_amplify: Vec<ClockPhase>,
    /// Two-phase clock driving the switches.
    pub clock: Clock,
    /// Common-mode level the input hold is centered on, V.
    pub mid_rail: f64,
    /// Converter full-scale range, V (sets the LSB).
    pub full_scale: f64,
    /// Total converter resolution, bits (sets the LSB).
    pub resolution: u32,
    /// DC solver options for the operating point seeding the transient
    /// initial condition (chain testbenches supply nodesets here).
    pub dc: DcOptions,
}

/// Options of a transient chain evaluation.
#[derive(Debug, Clone)]
pub struct TranChainOptions {
    /// Full clock periods to simulate (the last period is probed).
    pub periods: usize,
    /// Differential drive amplitude δ around `mid_rail`, V. Small enough
    /// to keep every stage's residue in range without sub-ADC decisions.
    pub delta_v: f64,
    /// Adaptive stepping controller; `None` derives one from the clock
    /// via [`TimeStepConfig::for_clock`].
    pub step: Option<TimeStepConfig>,
    /// Tail fraction of the amplification window used for the settling
    /// error: `settle_err = |a(t_end) − a(t_end − tail·window)|`.
    pub tail_frac: f64,
    /// Newton iterations per timestep.
    pub max_iter: usize,
    /// Significant decimal digits reported metrics are quantized to (the
    /// solver-agnostic contract, as in [`crate::chain::ChainOptions`]).
    pub report_digits: u32,
}

impl Default for TranChainOptions {
    fn default() -> Self {
        TranChainOptions {
            periods: 4,
            delta_v: 3e-3,
            step: None,
            tail_frac: 0.05,
            max_iter: 60,
            report_digits: 6,
        }
    }
}

/// Per-stage dynamic metrics, probed over the stage's last amplification
/// window (all values quantized).
#[derive(Debug, Clone, PartialEq)]
pub struct TranStageReport {
    /// Differential amplitude `a_k` at the end of the window, V.
    pub amplitude: f64,
    /// Settling error over the window tail, V.
    pub settle_err: f64,
    /// ½ LSB referred to this stage's output (LSB scaled by the
    /// cumulative gain up to and including this stage), V.
    pub half_lsb: f64,
    /// `settle_err ≤ half_lsb` (compared on the quantized grid).
    pub settled: bool,
    /// Measured residue transfer `a_k / a_{k−1}` (stage 0: `a_0/δ`).
    pub residue_gain: f64,
    /// Ideal interstage gain `2^{m−1}`.
    pub ideal_gain: f64,
    /// Fraction of the window elapsed before the output entered (and
    /// stayed inside) the ±½-LSB band around its final value.
    pub settle_frac: f64,
    /// Peak differential slew rate inside the window, V/s.
    pub max_slew: f64,
    /// Fraction of the window spent above half the peak slew rate — the
    /// slew-limited interval.
    pub slew_frac: f64,
}

/// Chain-level transient sign-off report.
#[derive(Debug, Clone, PartialEq)]
pub struct TranChainReport {
    /// Per-stage metrics, front to back.
    pub stages: Vec<TranStageReport>,
    /// Every stage settled to ½ LSB by the end of its amplification phase.
    pub all_settled: bool,
    /// Accepted timesteps summed over both runs.
    pub accepted: usize,
    /// LTE-rejected timesteps summed over both runs.
    pub rejected: usize,
    /// Newton iterations summed over both runs.
    pub newton_iters: usize,
    /// Smallest accepted step across both runs, s (quantized).
    pub min_dt: f64,
    /// Whether the runs factored through the CSR engine (excluded from
    /// cross-engine report comparison, like `ChainReport::dc_sparse`).
    pub sparse: bool,
}

enum StepMode {
    Adaptive(TimeStepConfig),
    Fixed(f64),
}

/// Reusable transient chain evaluator: a persistent [`DcWorkspace`] for
/// the operating point seeding each run and a persistent [`TranWorkspace`]
/// whose companion-model sparsity pattern and symbolic factorization are
/// reused across runs and candidates of one chain topology.
pub struct TranChainEvaluator {
    opts: TranChainOptions,
    solver: SolverChoice,
    dc: Option<DcWorkspace>,
    tran: Option<TranWorkspace>,
}

impl TranChainEvaluator {
    /// Creates the evaluator with automatic sparse/dense engine selection.
    pub fn new(opts: TranChainOptions) -> Self {
        TranChainEvaluator::with_solver(SolverChoice::Auto, opts)
    }

    /// [`TranChainEvaluator::new`] with a forced solver engine (the dense
    /// override is the oracle the bit-identical-report tests compare
    /// against).
    pub fn with_solver(solver: SolverChoice, opts: TranChainOptions) -> Self {
        TranChainEvaluator {
            opts,
            solver,
            dc: None,
            tran: None,
        }
    }

    /// The evaluation options.
    pub fn options(&self) -> &TranChainOptions {
        &self.opts
    }

    /// Runs the chain through `periods` clock periods with the adaptive
    /// stepper and reports per-stage settling, residue transfer and slew
    /// metrics.
    ///
    /// # Errors
    /// A human-readable reason (DC non-convergence, singular system,
    /// missing input source).
    pub fn evaluate(&mut self, setup: &mut TranChainSetup) -> Result<TranChainReport, String> {
        let cfg = self
            .opts
            .step
            .unwrap_or_else(|| TimeStepConfig::for_clock(&setup.clock));
        self.run_pair(setup, &StepMode::Adaptive(cfg))
    }

    /// [`TranChainEvaluator::evaluate`] through the fixed-step oracle at
    /// step `dt` — the equal-accuracy baseline the adaptive stepper's step
    /// count is compared against.
    pub fn evaluate_fixed(
        &mut self,
        setup: &mut TranChainSetup,
        dt: f64,
    ) -> Result<TranChainReport, String> {
        self.run_pair(setup, &StepMode::Fixed(dt))
    }

    /// One transient run with the input held at `hold` volts.
    fn run_one(
        &mut self,
        setup: &mut TranChainSetup,
        mode: &StepMode,
        hold: f64,
    ) -> Result<TranResult, String> {
        let (id, _) = setup
            .circuit
            .find_element(&setup.input_source)
            .ok_or_else(|| format!("no input source {}", setup.input_source))?;
        setup.circuit.set_waveform(id, Waveform::Dc(hold));

        if !self
            .dc
            .as_ref()
            .is_some_and(|ws| ws.matches(&setup.circuit))
        {
            self.dc = Some(
                DcWorkspace::with_solver(&setup.circuit, self.solver)
                    .map_err(|e| format!("DC: {e}"))?,
            );
        }
        let dc_ws = self.dc.as_mut().expect("workspace created above");
        let op = dc_operating_point_with(dc_ws, &setup.circuit, &setup.dc)
            .map_err(|e| format!("DC: {e}"))?;

        let opts = TranOptions {
            tstop: self.opts.periods as f64 * setup.clock.period(),
            dt: match mode {
                StepMode::Fixed(dt) => *dt,
                StepMode::Adaptive(_) => setup.clock.period() / 512.0,
            },
            clock: Some(setup.clock),
            ic: InitialCondition::Voltages(op.voltages().to_vec()),
            max_iter: self.opts.max_iter,
            ..Default::default()
        };
        if !self
            .tran
            .as_ref()
            .is_some_and(|ws| ws.matches(&setup.circuit))
        {
            self.tran = Some(
                TranWorkspace::with_solver(&setup.circuit, self.solver)
                    .map_err(|e| format!("tran: {e}"))?,
            );
        }
        let ws = self.tran.as_mut().expect("workspace created above");
        match mode {
            StepMode::Adaptive(cfg) => transient_adaptive(ws, &setup.circuit, &opts, cfg),
            StepMode::Fixed(_) => transient_with(ws, &setup.circuit, &opts),
        }
        .map_err(|e| format!("tran: {e}"))
    }

    /// Two runs at `mid_rail ± δ`, then the differential report.
    fn run_pair(
        &mut self,
        setup: &mut TranChainSetup,
        mode: &StepMode,
    ) -> Result<TranChainReport, String> {
        let delta = self.opts.delta_v;
        let rp = self.run_one(setup, mode, setup.mid_rail + delta)?;
        let rm = self.run_one(setup, mode, setup.mid_rail - delta)?;
        Ok(self.report(setup, &rp, &rm))
    }

    /// Differential stage metrics from the ± runs.
    fn report(&self, setup: &TranChainSetup, rp: &TranResult, rm: &TranResult) -> TranChainReport {
        let q = |v: f64| quantize_rel(v, self.opts.report_digits);
        // Left-limited sampling: a stage's output snaps discontinuously
        // the instant its amplification switches open, and the fixed-step
        // oracle places no sample exactly on the edge — interpolating
        // across the snap would corrupt the phase-end measurement.
        let diff =
            |node: NodeId, t: f64| (rp.sample_before(node, t) - rm.sample_before(node, t)) / 2.0;
        let lsb = setup.full_scale / (1u64 << setup.resolution) as f64;
        let last = self.opts.periods - 1;

        let mut stages = Vec::with_capacity(setup.stage_outputs.len());
        let mut all_settled = true;
        let mut cum_gain = 1.0;
        let mut prev_amp = self.opts.delta_v;
        for (k, &out) in setup.stage_outputs.iter().enumerate() {
            cum_gain *= setup.stage_gains[k];
            let (t0, t1) = setup.clock.phase_window(last, setup.stage_amplify[k]);
            let window = t1 - t0;
            let amp = diff(out, t1);
            let settle_err = (amp - diff(out, t1 - self.opts.tail_frac * window)).abs();
            let half_lsb = 0.5 * lsb * cum_gain;

            // Walk the accepted samples inside the window for the slew
            // metrics and the time-to-band measure. Both engines walk
            // identical step sequences (quantized LTE control), so these
            // sample-based measures are engine-agnostic too.
            let times = rp.times();
            let lo = times.partition_point(|&t| t < t0);
            let hi = times.partition_point(|&t| t <= t1);
            let mut max_slew = 0.0f64;
            let mut entered = t0;
            let mut prev: Option<(f64, f64)> = None;
            for &t in &times[lo..hi] {
                let a = diff(out, t);
                if let Some((tp, ap)) = prev {
                    let slew = ((a - ap) / (t - tp)).abs();
                    max_slew = max_slew.max(slew);
                }
                if (a - amp).abs() > half_lsb {
                    entered = t;
                }
                prev = Some((t, a));
            }
            let mut slewing = 0.0;
            let mut prev2: Option<(f64, f64)> = None;
            for &t in &times[lo..hi] {
                let a = diff(out, t);
                if let Some((tp, ap)) = prev2 {
                    if ((a - ap) / (t - tp)).abs() >= 0.5 * max_slew {
                        slewing += t - tp;
                    }
                }
                prev2 = Some((t, a));
            }
            let (settle_err, half_lsb) = (q(settle_err), q(half_lsb));
            let settled = settle_err <= half_lsb;
            all_settled &= settled;
            stages.push(TranStageReport {
                amplitude: q(amp),
                settle_err,
                half_lsb,
                settled,
                residue_gain: q((amp / prev_amp).abs()),
                ideal_gain: q(setup.stage_gains[k]),
                settle_frac: q(((entered - t0) / window).max(0.0)),
                max_slew: q(max_slew),
                slew_frac: q(slewing / window),
            });
            prev_amp = amp;
        }
        let (sp, sm) = (rp.stats(), rm.stats());
        TranChainReport {
            stages,
            all_settled,
            accepted: sp.accepted + sm.accepted,
            rejected: sp.rejected + sm.rejected,
            newton_iters: sp.newton_iters + sm.newton_iters,
            min_dt: q(sp.min_dt.min(sm.min_dt)),
            sparse: sp.sparse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Macromodel flip-around SC chain: ideal VCVS OTAs (gain 10³) with
    /// the full switch schedule of the circuit-level MDAC stage —
    /// sampling/DAC units, feedback switch, sampling-phase reset (`SR`)
    /// and unity-reset (`SZ`) — references at ground, stage gain 2.
    fn macro_sc_chain(n: usize) -> TranChainSetup {
        let mut c = Circuit::new();
        let inp = c.node("in");
        c.add_vsource_wave("VIN", inp, Circuit::GROUND, 0.0.into(), 1.0);
        let mut prev = inp;
        let mut outs = Vec::new();
        let mut amps = Vec::new();
        for k in 0..n {
            let (s_ph, a_ph) = if k % 2 == 0 {
                (ClockPhase::Phi1, ClockPhase::Phi2)
            } else {
                (ClockPhase::Phi2, ClockPhase::Phi1)
            };
            let u1 = c.node(&format!("u1_{k}"));
            let u2 = c.node(&format!("u2_{k}"));
            let sum = c.node(&format!("sum{k}"));
            let fb = c.node(&format!("fb{k}"));
            let out = c.node(&format!("o{k}"));
            let cu = 1e-12;
            c.add_switch(&format!("SS1_{k}"), prev, u1, 100.0, 1e9, s_ph, true);
            c.add_switch(&format!("SS2_{k}"), prev, u2, 100.0, 1e9, s_ph, true);
            c.add_switch(
                &format!("SD1_{k}"),
                u1,
                Circuit::GROUND,
                100.0,
                1e9,
                a_ph,
                false,
            );
            c.add_switch(
                &format!("SD2_{k}"),
                u2,
                Circuit::GROUND,
                100.0,
                1e9,
                a_ph,
                false,
            );
            c.add_capacitor(&format!("CU1_{k}"), u1, sum, cu);
            c.add_capacitor(&format!("CU2_{k}"), u2, sum, cu);
            c.add_capacitor(&format!("CF{k}"), sum, fb, cu);
            c.add_switch(&format!("SF{k}"), fb, out, 100.0, 1e9, a_ph, true);
            c.add_switch(
                &format!("SR{k}"),
                fb,
                Circuit::GROUND,
                100.0,
                1e9,
                s_ph,
                false,
            );
            c.add_switch(&format!("SZ{k}"), out, sum, 100.0, 1e9, s_ph, false);
            c.add_vcvs(
                &format!("EOTA{k}"),
                out,
                Circuit::GROUND,
                Circuit::GROUND,
                sum,
                1e3,
            );
            outs.push(out);
            amps.push(a_ph);
            prev = out;
        }
        TranChainSetup {
            circuit: c,
            input_source: "VIN".to_string(),
            stage_outputs: outs,
            stage_gains: vec![2.0; n],
            stage_amplify: amps,
            clock: Clock {
                freq: 1e6,
                nonoverlap: 10e-9,
            },
            mid_rail: 0.0,
            full_scale: 2.0,
            resolution: 6,
            dc: DcOptions::default(),
        }
    }

    #[test]
    fn macro_sc_chain_amplifies_and_settles() {
        let mut setup = macro_sc_chain(2);
        let mut ev = TranChainEvaluator::new(TranChainOptions::default());
        let report = ev.evaluate(&mut setup).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert!(report.all_settled, "{report:#?}");
        for (k, s) in report.stages.iter().enumerate() {
            assert!(s.settled, "stage {k}: {s:?}");
            assert!(
                (s.residue_gain - 2.0).abs() / 2.0 < 0.02,
                "stage {k} residue gain {}",
                s.residue_gain
            );
            assert!(
                s.settle_frac < 0.5,
                "stage {k} settle_frac {}",
                s.settle_frac
            );
        }
        // Stage amplitudes: δ·2 then δ·4.
        assert!((report.stages[0].amplitude - 6e-3).abs() < 3e-4);
        assert!((report.stages[1].amplitude - 12e-3).abs() < 6e-4);
        assert!(report.accepted > 0 && report.min_dt > 0.0);
    }

    #[test]
    fn sparse_and_dense_reports_are_bit_identical() {
        let mut setup = macro_sc_chain(2);
        let mut sparse =
            TranChainEvaluator::with_solver(SolverChoice::Sparse, TranChainOptions::default());
        let mut dense =
            TranChainEvaluator::with_solver(SolverChoice::Dense, TranChainOptions::default());
        let rs = sparse.evaluate(&mut setup).unwrap();
        let rd = dense.evaluate(&mut setup).unwrap();
        assert!(rs.sparse && !rd.sparse);
        assert_eq!(
            TranChainReport {
                sparse: rd.sparse,
                ..rs.clone()
            },
            rd,
            "quantized transient reports must not depend on the engine"
        );
    }

    #[test]
    fn fixed_oracle_agrees_but_needs_more_steps() {
        let mut setup = macro_sc_chain(1);
        let mut ev = TranChainEvaluator::new(TranChainOptions::default());
        let adaptive = ev.evaluate(&mut setup).unwrap();
        let dt = setup.clock.period() / 2000.0;
        let fixed = ev.evaluate_fixed(&mut setup, dt).unwrap();
        assert!(fixed.all_settled && adaptive.all_settled);
        assert!(
            (adaptive.stages[0].residue_gain - fixed.stages[0].residue_gain).abs() < 1e-3,
            "adaptive {} vs fixed {}",
            adaptive.stages[0].residue_gain,
            fixed.stages[0].residue_gain
        );
        assert!(
            adaptive.accepted < fixed.accepted,
            "adaptive {} steps vs fixed {}",
            adaptive.accepted,
            fixed.accepted
        );
    }

    #[test]
    fn workspaces_are_reused_across_evaluations() {
        let mut setup = macro_sc_chain(2);
        let mut ev = TranChainEvaluator::new(TranChainOptions::default());
        let a = ev.evaluate(&mut setup).unwrap();
        let b = ev.evaluate(&mut setup).unwrap();
        assert_eq!(a, b, "re-evaluation through reused workspaces must agree");
    }
}
