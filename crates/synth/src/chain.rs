//! Chain-level evaluation: DC + end-to-end transfer function of a
//! flattened multi-stage pipeline testbench through the same reusable
//! workspaces the hybrid OTA evaluator drives — at MNA dimensions in the
//! hundreds instead of the OTA testbenches' ~20.
//!
//! This is the first real workout for the sparse engine's Markowitz
//! ordering on ladder-shaped patterns: a pipeline couples each stage only
//! to its neighbours, so the frozen factor pattern stays near-linear in the
//! dimension and the auto-selection ([`adc_numerics::sparse::prefer_sparse`])
//! keeps the whole evaluation on the sparse path.
//!
//! Reported metrics are quantized onto a relative grid
//! ([`adc_numerics::quant::quantize_rel`]) a few orders above solver noise,
//! so a [`ChainReport`] is **bit-identical** whether the engines factored
//! sparse or dense — the solver-agnostic contract the chain verification
//! tests pin.

use crate::hybrid::BenchSetup;
use adc_numerics::complex::Complex;
use adc_numerics::quant::quantize_rel;
use adc_numerics::simd::MAX_LANES;
use adc_numerics::sparse::CsrPattern;
use adc_sfg::nettf::{extract_tf_with, NetTfOptions, NetTfWorkspace};
use adc_spice::dc::{dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::linearize::{ComplexMnaWorkspace, SmallSignal, SolverChoice};
use adc_spice::mosfet::Region;

/// Options of a chain evaluation.
#[derive(Debug, Clone)]
pub struct ChainOptions {
    /// Frequency (Hz) at which the chain gain is probed — above every
    /// stage's servo/bias corner, below the closed-loop poles.
    pub f_probe: f64,
    /// Upper limit for the unity-crossing and bandwidth searches, Hz.
    pub f_max: f64,
    /// DC solver options (chain testbenches supply nodesets and per-node
    /// damping through these).
    pub dc: DcOptions,
    /// TF-extraction options.
    pub nettf: NetTfOptions,
    /// Significant decimal digits reported metrics are quantized to. The
    /// sparse and dense engines agree to ~1e-9 relative; quantizing at 6
    /// digits collapses that noise so reports are solver-agnostic bit for
    /// bit.
    pub report_digits: u32,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            f_probe: 1e6,
            f_max: 50e9,
            dc: DcOptions::default(),
            nettf: NetTfOptions::default(),
            report_digits: 6,
        }
    }
}

/// Chain-level metrics of one evaluation (all frequency/gain/power values
/// quantized to [`ChainOptions::report_digits`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// Supply power of the whole chain, W.
    pub power: f64,
    /// End-to-end gain magnitude at the probe frequency, from a direct
    /// factor+solve of `Y(j2πf)` (exact at any dimension).
    pub gain: f64,
    /// The same probe read from the extracted rational transfer function
    /// (interpolation-conditioned; recorded for cross-checking).
    pub tf_gain: f64,
    /// Unity-gain crossing of the end-to-end response, Hz (0 when none
    /// below `f_max`).
    pub unity_freq: f64,
    /// −3 dB closed-loop bandwidth relative to the probe gain, Hz (0 when
    /// none found below `f_max`).
    pub bw_3db: f64,
    /// Settling time constant `1/(2π·bw_3db)`, s (0 when no bandwidth).
    pub settle_tau: f64,
    /// Fraction of the listed devices in saturation.
    pub saturated: f64,
    /// MNA system dimension of the flattened chain.
    pub mna_dim: usize,
    /// Whether the DC Newton Jacobian factored sparse.
    pub dc_sparse: bool,
    /// Whether the complex small-signal engine factored sparse.
    pub tf_sparse: bool,
    /// Structural fill ratio of the small-signal pattern.
    pub fill_ratio: f64,
}

/// Reusable chain evaluator: persistent DC workspace, shared small-signal
/// linearizer + complex MNA engine for direct frequency-point solves, and a
/// [`NetTfWorkspace`] for the end-to-end rational TF. Across repeated
/// evaluations of one chain topology (retuned stage sizings), every index
/// map, pattern and symbolic factorization is reused.
pub struct ChainEvaluator {
    opts: ChainOptions,
    solver: SolverChoice,
    dc: Option<DcWorkspace>,
    ss: SmallSignal,
    engine: ComplexMnaWorkspace,
    tf: NetTfWorkspace,
    x: Vec<Complex>,
    /// Complex frequencies of the current speculative probe batch.
    s_list: Vec<Complex>,
    /// Lane-major solutions of the batched probe solves.
    xs: Vec<Complex>,
    /// Determinant scratch for the batched engine (unused by probing).
    dets: Vec<Complex>,
    /// Structural fill of the small-signal pattern, recomputed only when
    /// the bound topology changes.
    fill_ratio: f64,
}

impl ChainEvaluator {
    /// Creates the evaluator with automatic sparse/dense engine selection.
    pub fn new(opts: ChainOptions) -> Self {
        ChainEvaluator::with_solver(SolverChoice::Auto, opts)
    }

    /// [`ChainEvaluator::new`] with a forced solver engine (the dense
    /// override is the oracle the bit-identical-report tests compare
    /// against).
    pub fn with_solver(solver: SolverChoice, opts: ChainOptions) -> Self {
        let mut tf = NetTfWorkspace::new();
        tf.set_solver(solver);
        let mut engine = ComplexMnaWorkspace::new();
        engine.set_solver(solver);
        ChainEvaluator {
            opts,
            solver,
            dc: None,
            ss: SmallSignal::new(),
            engine,
            tf,
            x: Vec::new(),
            s_list: Vec::new(),
            xs: Vec::new(),
            dets: Vec::new(),
            fill_ratio: 0.0,
        }
    }

    /// The evaluation options.
    pub fn options(&self) -> &ChainOptions {
        &self.opts
    }

    /// `|H(j2πf)|` by direct factor+solve on the bound engine.
    fn probe_mag(&mut self, f: f64, out_row: usize) -> Result<f64, String> {
        let s = Complex::new(0.0, 2.0 * std::f64::consts::PI * f);
        self.engine
            .factor_at_or_demote(s, &self.ss)
            .map_err(|_| format!("singular Y(s) at {f} Hz"))?;
        self.engine.solve_into(&self.ss.b, &mut self.x);
        Ok(self.x[out_row].norm())
    }

    /// `|H(j2πf)|` at each frequency through one batched factor/solve
    /// ([`ComplexMnaWorkspace::solve_det_batch`], bit-identical values to
    /// per-point probes). Returns `false` when any point is singular —
    /// the caller then replays its walk serially so errors surface only
    /// for frequencies the serial search would actually visit.
    fn probe_mags_batch(&mut self, freqs: &[f64], out_row: usize, mags: &mut [f64]) -> bool {
        let dim = self.ss.dim();
        self.s_list.clear();
        self.s_list.extend(
            freqs
                .iter()
                .map(|&f| Complex::new(0.0, 2.0 * std::f64::consts::PI * f)),
        );
        self.xs.clear();
        self.xs.resize(freqs.len() * dim, Complex::ZERO);
        self.dets.clear();
        self.dets.resize(freqs.len(), Complex::ZERO);
        if self
            .engine
            .solve_det_batch(
                &self.s_list,
                &self.ss,
                &self.ss.b,
                &mut self.xs,
                &mut self.dets,
            )
            .is_err()
        {
            return false;
        }
        for (k, m) in mags.iter_mut().enumerate() {
            *m = self.xs[k * dim + out_row].norm();
        }
        true
    }

    /// Log-scan + bisection for the frequency in `[f_lo, f_max]` where
    /// `|H|` first drops below `target` (the response is low-pass beyond
    /// the probe). Returns `None` when it never does.
    ///
    /// Both phases run speculatively through the batched engine: the scan
    /// probes up to [`MAX_LANES`] doubling points per factor/solve, and
    /// the bisection probes whole sub-trees of geometric midpoints at
    /// once, then walks the comparisons in serial order. Midpoints nest
    /// bitwise (`(lo·hi).sqrt()` of the exact operands the serial loop
    /// would use) and batched solves are bit-identical to serial ones, so
    /// the `lo`/`hi` trajectory — and the returned crossing — matches the
    /// serial search exactly.
    fn crossing(&mut self, f_lo: f64, target: f64, out_row: usize) -> Result<Option<f64>, String> {
        let mut lo = f_lo;
        let mut hi = f_lo;
        let mut found = false;
        while !found && hi < self.opts.f_max {
            // Next batch of doubling points; generation stops once a
            // point clamps to `f_max` (further points would repeat it).
            let mut pts = [0.0f64; MAX_LANES];
            let mut n = 0;
            let mut h = hi;
            while n < MAX_LANES && h < self.opts.f_max {
                h = (h * 2.0).min(self.opts.f_max);
                pts[n] = h;
                n += 1;
            }
            let mut mags = [0.0f64; MAX_LANES];
            if self.probe_mags_batch(&pts[..n], out_row, &mut mags[..n]) {
                for k in 0..n {
                    hi = pts[k];
                    if mags[k] < target {
                        found = true;
                        break;
                    }
                    lo = hi;
                }
            } else {
                // A speculative point was singular; redo this stretch
                // serially so any error is reported exactly as the
                // serial scan would (it may stop before that point).
                for &p in &pts[..n] {
                    hi = p;
                    if self.probe_mag(hi, out_row)? < target {
                        found = true;
                        break;
                    }
                    lo = hi;
                }
            }
        }
        if !found {
            return Ok(None);
        }
        // 50 bisection iterations as speculative multisection rounds: a
        // depth-3 round probes the serial midpoint, both possible next
        // midpoints and all four after that (7 points, one batched
        // solve), then consumes 3 serial comparisons walking the tree.
        // 50 = 16 depth-3 rounds + 1 depth-2 round.
        let mut iters = 50usize;
        while iters > 0 {
            let depth = iters.min(3);
            let count = (1usize << depth) - 1;
            // Heap-indexed midpoint tree over [lo, hi]: node `i` splits
            // its interval at `p[i]`, children 2i+1 / 2i+2 take the
            // lower / upper half.
            let (mut a, mut b, mut p) = ([0.0f64; 7], [0.0f64; 7], [0.0f64; 7]);
            a[0] = lo;
            b[0] = hi;
            for i in 0..count {
                p[i] = (a[i] * b[i]).sqrt();
                if 2 * i + 1 < count {
                    a[2 * i + 1] = a[i];
                    b[2 * i + 1] = p[i];
                    a[2 * i + 2] = p[i];
                    b[2 * i + 2] = b[i];
                }
            }
            let mut mags = [0.0f64; 7];
            if self.probe_mags_batch(&p[..count], out_row, &mut mags[..count]) {
                let mut i = 0;
                for _ in 0..depth {
                    let below = mags[i] < target;
                    if below {
                        hi = p[i];
                    } else {
                        lo = p[i];
                    }
                    i = if below { 2 * i + 1 } else { 2 * i + 2 };
                }
                iters -= depth;
            } else {
                // Singular speculative midpoint: finish serially (the
                // serial walk only ever probes on-path midpoints).
                for _ in 0..iters {
                    let mid = (lo * hi).sqrt();
                    if self.probe_mag(mid, out_row)? < target {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                iters = 0;
            }
        }
        Ok(Some((lo * hi).sqrt()))
    }

    /// Evaluates the chain testbench: DC operating point (power,
    /// saturation), direct-probe gain/bandwidth/unity metrics, and the
    /// extracted end-to-end TF — all through persistent workspaces.
    ///
    /// # Errors
    /// A human-readable reason (DC non-convergence, singular system,
    /// missing supply/devices).
    pub fn evaluate(&mut self, bench: &BenchSetup) -> Result<ChainReport, String> {
        // Leg 1: DC.
        if !self
            .dc
            .as_ref()
            .is_some_and(|ws| ws.matches(&bench.circuit))
        {
            self.dc = Some(
                DcWorkspace::with_solver(&bench.circuit, self.solver)
                    .map_err(|e| format!("DC: {e}"))?,
            );
        }
        let dc_ws = self.dc.as_mut().expect("workspace created above");
        let op = dc_operating_point_with(dc_ws, &bench.circuit, &self.opts.dc)
            .map_err(|e| format!("DC: {e}"))?;
        let power = op
            .source_power(&bench.circuit, &bench.supply)
            .ok_or_else(|| format!("no supply source {}", bench.supply))?;
        let mut saturated = 0usize;
        for name in &bench.devices {
            match op.mos_eval(name) {
                Some(ev) if ev.region == Region::Saturation => saturated += 1,
                Some(_) => {}
                None => return Err(format!("no such device {name}")),
            }
        }
        let saturated = if bench.devices.is_empty() {
            1.0
        } else {
            saturated as f64 / bench.devices.len() as f64
        };

        // Leg 2: small-signal bind (no g_min — shared with TF extraction).
        let topo = self
            .ss
            .bind(&bench.circuit, &op, 0.0)
            .map_err(|e| format!("bind: {e}"))?;
        self.engine.bind(&self.ss, topo);
        let dim = self.ss.dim();
        if self.x.len() != dim {
            self.x.resize(dim, Complex::ZERO);
        }
        let out_row = self
            .ss
            .map()
            .node_row(bench.output)
            .ok_or_else(|| "output node is ground".to_string())?;
        if topo || self.fill_ratio == 0.0 {
            let entries: Vec<(usize, usize)> = self
                .ss
                .base
                .iter()
                .chain(self.ss.cap_entries.iter())
                .map(|&(r, c, _)| (r, c))
                .collect();
            let (pattern, _) = CsrPattern::from_entries(dim, &entries);
            self.fill_ratio = pattern.fill_ratio();
        }
        let fill_ratio = self.fill_ratio;

        // Direct frequency probes: exact at any dimension.
        let gain = self.probe_mag(self.opts.f_probe, out_row)?;
        let bw_3db = self
            .crossing(self.opts.f_probe, gain / std::f64::consts::SQRT_2, out_row)?
            .unwrap_or(0.0);
        let unity_freq = if gain > 1.0 {
            self.crossing(self.opts.f_probe, 1.0, out_row)?
                .unwrap_or(0.0)
        } else {
            0.0
        };
        let settle_tau = if bw_3db > 0.0 {
            1.0 / (2.0 * std::f64::consts::PI * bw_3db)
        } else {
            0.0
        };

        // Leg 3: the end-to-end rational TF through the existing
        // extraction workspace.
        let tf = extract_tf_with(
            &mut self.tf,
            &bench.circuit,
            &op,
            bench.output,
            &self.opts.nettf,
        )
        .map_err(|e| format!("TF: {e}"))?;
        let tf_gain = tf.magnitude(self.opts.f_probe);

        let q = |v: f64| quantize_rel(v, self.opts.report_digits);
        Ok(ChainReport {
            power: q(power),
            gain: q(gain),
            tf_gain: q(tf_gain),
            unity_freq: q(unity_freq),
            bw_3db: q(bw_3db),
            settle_tau: q(settle_tau),
            saturated,
            mna_dim: bench.circuit.mna_dim(),
            dc_sparse: self.dc.as_ref().is_some_and(DcWorkspace::is_sparse),
            tf_sparse: self.engine.is_sparse(),
            fill_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_spice::netlist::Circuit;

    /// N-stage macromodel chain: VCCS gain stages with RC inter-stage
    /// loading — the ladder shape of a pipeline without transistors.
    fn macro_chain(n: usize, gain_per_stage: f64) -> BenchSetup {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        c.add_resistor("RSUP", vdd, Circuit::GROUND, 3.3e3); // 1 mA burn
        let vin = c.node("in");
        c.add_vsource_wave("VIN", vin, Circuit::GROUND, 0.0.into(), 1.0);
        let mut prev = vin;
        for k in 0..n {
            let out = c.node(&format!("o{k}"));
            // gm into ro with C load: per-stage gain gm·ro.
            c.add_vccs(
                &format!("G{k}"),
                Circuit::GROUND,
                out,
                prev,
                Circuit::GROUND,
                -gain_per_stage / 10e3,
            );
            c.add_resistor(&format!("RO{k}"), out, Circuit::GROUND, 10e3);
            c.add_capacitor(&format!("CL{k}"), out, Circuit::GROUND, 0.2e-12);
            prev = out;
        }
        BenchSetup::new(c, prev, "VDD".into(), vec![])
    }

    #[test]
    fn macro_chain_gain_is_product_of_stages() {
        let mut ev = ChainEvaluator::new(ChainOptions {
            f_probe: 1e4,
            ..Default::default()
        });
        let report = ev.evaluate(&macro_chain(3, 4.0)).unwrap();
        assert!((report.gain - 64.0).abs() < 0.5, "gain {}", report.gain);
        assert!(
            (report.tf_gain - 64.0).abs() < 0.5,
            "tf gain {}",
            report.tf_gain
        );
        // Per-stage pole at 1/(2π·10k·0.2p) ≈ 80 MHz; three coincident
        // poles pull the −3 dB point down by √(2^{1/3}−1) ≈ 0.51.
        assert!(
            report.bw_3db > 20e6 && report.bw_3db < 80e6,
            "bw {}",
            report.bw_3db
        );
        assert!(report.unity_freq > report.bw_3db);
        assert!(report.settle_tau > 0.0);
        assert!((report.power - 3.3e-3).abs() < 1e-4);
        assert_eq!(report.saturated, 1.0);
    }

    #[test]
    fn sparse_and_dense_reports_are_bit_identical() {
        let bench = macro_chain(4, 3.0);
        let opts = || ChainOptions {
            f_probe: 1e4,
            ..Default::default()
        };
        let mut sparse = ChainEvaluator::with_solver(SolverChoice::Sparse, opts());
        let mut dense = ChainEvaluator::with_solver(SolverChoice::Dense, opts());
        let rs = sparse.evaluate(&bench).unwrap();
        let rd = dense.evaluate(&bench).unwrap();
        assert!(rs.tf_sparse && !rd.tf_sparse);
        assert_eq!(
            ChainReport {
                dc_sparse: rd.dc_sparse,
                tf_sparse: rd.tf_sparse,
                ..rs.clone()
            },
            rd,
            "quantized reports must not depend on the engine"
        );
    }

    #[test]
    fn workspaces_are_reused_across_evaluations() {
        let bench = macro_chain(3, 4.0);
        let mut ev = ChainEvaluator::new(ChainOptions {
            f_probe: 1e4,
            ..Default::default()
        });
        let a = ev.evaluate(&bench).unwrap();
        let analyses = ev.tf.symbolic_analyses();
        let b = ev.evaluate(&bench).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ev.tf.symbolic_analyses(),
            analyses,
            "re-evaluating one topology must not re-analyze"
        );
    }

    /// The speculative batched `crossing` must reproduce the serial
    /// log-scan + 50-iteration bisection bit for bit (the raw, unquantized
    /// frequency), because batched probe magnitudes are bit-identical and
    /// multisection midpoints nest bitwise.
    #[test]
    fn speculative_crossing_matches_serial_search_bitwise() {
        let bench = macro_chain(4, 3.0);
        let mut ev = ChainEvaluator::new(ChainOptions {
            f_probe: 1e4,
            ..Default::default()
        });
        // Bind workspaces via one full evaluation, then compare raw
        // crossings on the bound engine.
        ev.evaluate(&bench).unwrap();
        let out_row = ev.ss.map().node_row(bench.output).unwrap();
        let gain = ev.probe_mag(ev.opts.f_probe, out_row).unwrap();
        for target in [gain / std::f64::consts::SQRT_2, 1.0] {
            let fast = ev.crossing(ev.opts.f_probe, target, out_row).unwrap();
            // Serial reference: the pre-speculation implementation.
            let (mut lo, mut hi) = (ev.opts.f_probe, ev.opts.f_probe);
            let mut found = false;
            while hi < ev.opts.f_max {
                hi = (hi * 2.0).min(ev.opts.f_max);
                if ev.probe_mag(hi, out_row).unwrap() < target {
                    found = true;
                    break;
                }
                lo = hi;
            }
            assert!(found);
            for _ in 0..50 {
                let mid = (lo * hi).sqrt();
                if ev.probe_mag(mid, out_row).unwrap() < target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            let serial = (lo * hi).sqrt();
            assert_eq!(fast.unwrap().to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn low_gain_chain_has_no_unity_crossing() {
        let mut ev = ChainEvaluator::new(ChainOptions {
            f_probe: 1e4,
            ..Default::default()
        });
        let report = ev.evaluate(&macro_chain(1, 0.5)).unwrap();
        assert_eq!(report.unity_freq, 0.0);
        assert!(report.gain < 1.0);
    }
}
