//! Nelder–Mead simplex refinement in the normalized unit box.
//!
//! Used as a local polish after annealing: derivative-free, robust to the
//! mild noise of simulation-based cost functions.

/// Runs Nelder–Mead on `cost` starting from `start` (normalized
//  coordinates), with initial simplex edge `scale`. Returns the best vertex
/// and its cost. Coordinates are clamped to `[0, 1]`.
pub fn nelder_mead<F>(mut cost: F, start: &[f64], scale: f64, max_iter: usize) -> (Vec<f64>, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    let n = start.len();
    let clamp = |v: &mut Vec<f64>| {
        for x in v.iter_mut() {
            *x = x.clamp(0.0, 1.0);
        }
    };

    // Initial simplex: start plus n offset vertices.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let mut v0 = start.to_vec();
    clamp(&mut v0);
    let c0 = cost(&v0);
    simplex.push((v0.clone(), c0));
    for i in 0..n {
        let mut v = v0.clone();
        v[i] = if v[i] + scale <= 1.0 {
            v[i] + scale
        } else {
            v[i] - scale
        };
        clamp(&mut v);
        let c = cost(&v);
        simplex.push((v, c));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    for _ in 0..max_iter {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        // Converged only when both the cost spread AND the simplex size are
        // tiny (a cost tie across a straddling simplex is not convergence).
        let diameter = simplex
            .iter()
            .flat_map(|(v, _)| {
                simplex.iter().map(move |(w, _)| {
                    v.iter()
                        .zip(w)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
            })
            .fold(0.0_f64, f64::max);
        if (worst - best).abs() <= 1e-12 * (1.0 + best.abs()) && diameter < 1e-8 {
            break;
        }
        // Centroid of all but worst.
        let mut cen = vec![0.0; n];
        for (v, _) in &simplex[..n] {
            for (ci, vi) in cen.iter_mut().zip(v) {
                *ci += vi / n as f64;
            }
        }
        let xw = simplex[n].0.clone();
        let mut refl: Vec<f64> = cen
            .iter()
            .zip(&xw)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        clamp(&mut refl);
        let c_refl = cost(&refl);
        if c_refl < simplex[0].1 {
            // Expand.
            let mut exp: Vec<f64> = cen
                .iter()
                .zip(&xw)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            clamp(&mut exp);
            let c_exp = cost(&exp);
            simplex[n] = if c_exp < c_refl {
                (exp, c_exp)
            } else {
                (refl, c_refl)
            };
        } else if c_refl < simplex[n - 1].1 {
            simplex[n] = (refl, c_refl);
        } else {
            // Contract.
            let mut con: Vec<f64> = cen
                .iter()
                .zip(&xw)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            clamp(&mut con);
            let c_con = cost(&con);
            if c_con < simplex[n].1 {
                simplex[n] = (con, c_con);
            } else {
                // Shrink toward best.
                let x0 = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let mut v: Vec<f64> = x0
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, w)| b + sigma * (w - b))
                        .collect();
                    clamp(&mut v);
                    let c = cost(&v);
                    *entry = (v, c);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    simplex.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let cost = |u: &[f64]| (u[0] - 0.3).powi(2) + (u[1] - 0.7).powi(2);
        let (u, c) = nelder_mead(cost, &[0.9, 0.1], 0.2, 300);
        assert!(c < 1e-8, "cost {c}");
        assert!((u[0] - 0.3).abs() < 1e-3);
        assert!((u[1] - 0.7).abs() < 1e-3);
    }

    #[test]
    fn rosenbrock_like_progress() {
        let cost = |u: &[f64]| {
            let (x, y) = (u[0] * 4.0 - 2.0, u[1] * 4.0 - 2.0);
            (1.0 - x).powi(2) + 20.0 * (y - x * x).powi(2)
        };
        let start = [0.2, 0.2];
        let c_start = cost(&start);
        let (_, c) = nelder_mead(cost, &start, 0.2, 500);
        assert!(c < c_start / 10.0, "{c} vs {c_start}");
    }

    #[test]
    fn clamps_to_unit_box() {
        // Optimum outside the box → should converge to the boundary.
        let cost = |u: &[f64]| (u[0] - 2.0).powi(2);
        let (u, _) = nelder_mead(cost, &[0.5], 0.3, 200);
        assert!(u[0] > 0.98, "{u:?}");
        assert!(u[0] <= 1.0);
    }

    #[test]
    fn single_dimension() {
        let cost = |u: &[f64]| (u[0] - 0.25).powi(2);
        let (u, c) = nelder_mead(cost, &[0.9], 0.1, 200);
        assert!((u[0] - 0.25).abs() < 1e-4);
        assert!(c < 1e-8);
    }
}
