//! Bounded design spaces: named variables with linear or logarithmic
//! exploration scales, plus the normalized-coordinate mapping the
//! optimizers work in.

use rand::Rng;

/// One bounded design variable.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignVar {
    /// Variable name (for reports).
    pub name: String,
    /// Lower bound (SI units).
    pub lo: f64,
    /// Upper bound (SI units).
    pub hi: f64,
    /// Explore on a log scale (true for widths/caps/currents).
    pub log: bool,
}

impl DesignVar {
    /// A linearly explored variable.
    ///
    /// # Panics
    /// Panics unless `lo < hi`.
    pub fn linear(name: &str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "invalid bounds for {name}");
        DesignVar {
            name: name.to_string(),
            lo,
            hi,
            log: false,
        }
    }

    /// A log-explored variable (both bounds must be positive).
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi`.
    pub fn log(name: &str, lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && lo < hi, "invalid log bounds for {name}");
        DesignVar {
            name: name.to_string(),
            lo,
            hi,
            log: true,
        }
    }

    /// Maps a normalized coordinate `u ∈ [0,1]` to the variable's value.
    pub fn denormalize(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if self.log {
            (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        }
    }

    /// Maps a value to its normalized coordinate.
    pub fn normalize(&self, v: f64) -> f64 {
        let v = v.clamp(self.lo, self.hi);
        if self.log {
            (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (v - self.lo) / (self.hi - self.lo)
        }
    }
}

/// An ordered collection of design variables.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    vars: Vec<DesignVar>,
}

impl DesignSpace {
    /// Creates a space.
    ///
    /// # Panics
    /// Panics on an empty variable list.
    pub fn new(vars: Vec<DesignVar>) -> Self {
        assert!(!vars.is_empty(), "empty design space");
        DesignSpace { vars }
    }

    /// The variables.
    pub fn vars(&self) -> &[DesignVar] {
        &self.vars
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.vars.len()
    }

    /// Denormalizes a full coordinate vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn denormalize(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.vars.len(), "dimension mismatch");
        self.vars
            .iter()
            .zip(u)
            .map(|(v, &ui)| v.denormalize(ui))
            .collect()
    }

    /// Normalizes a value vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.vars.len(), "dimension mismatch");
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.normalize(xi))
            .collect()
    }

    /// Uniform random normalized point.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.vars.len()).map(|_| rng.gen::<f64>()).collect()
    }

    /// Gaussian neighbourhood move in normalized coordinates: perturbs a
    /// random subset (at least one) of coordinates with scale `sigma`,
    /// clamping to the unit box.
    pub fn neighbor<R: Rng + ?Sized>(&self, u: &[f64], sigma: f64, rng: &mut R) -> Vec<f64> {
        let n = u.len();
        let mut out = u.to_vec();
        let k = rng.gen_range(0..n);
        for (i, o) in out.iter_mut().enumerate() {
            if i == k || rng.gen::<f64>() < 0.25 {
                let g: f64 = {
                    // Box–Muller
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                *o = (*o + sigma * g).clamp(0.0, 1.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_round_trip() {
        let v = DesignVar::linear("x", -2.0, 6.0);
        assert_eq!(v.denormalize(0.0), -2.0);
        assert_eq!(v.denormalize(1.0), 6.0);
        assert!((v.normalize(v.denormalize(0.37)) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn log_round_trip_spans_decades() {
        let v = DesignVar::log("w", 1e-6, 1e-3);
        let mid = v.denormalize(0.5);
        assert!((mid - (1e-6f64 * 1e-3).sqrt()).abs() < 1e-9);
        assert!((v.normalize(mid) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamping_out_of_range() {
        let v = DesignVar::linear("x", 0.0, 1.0);
        assert_eq!(v.denormalize(-0.5), 0.0);
        assert_eq!(v.denormalize(1.5), 1.0);
        assert_eq!(v.normalize(99.0), 1.0);
    }

    #[test]
    fn space_random_and_neighbor_in_box() {
        let s = DesignSpace::new(vec![
            DesignVar::linear("a", 0.0, 1.0),
            DesignVar::log("b", 1.0, 100.0),
            DesignVar::linear("c", -5.0, 5.0),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let u = s.random_point(&mut rng);
        assert_eq!(u.len(), 3);
        assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
        for _ in 0..100 {
            let v = s.neighbor(&u, 0.3, &mut rng);
            assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
            assert_ne!(v, u);
        }
    }

    #[test]
    #[should_panic(expected = "invalid log bounds")]
    fn log_requires_positive() {
        DesignVar::log("bad", -1.0, 1.0);
    }

    #[test]
    fn denormalize_vector() {
        let s = DesignSpace::new(vec![
            DesignVar::linear("a", 0.0, 10.0),
            DesignVar::log("b", 1.0, 1000.0),
        ]);
        let x = s.denormalize(&[0.5, 1.0 / 3.0]);
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 10.0).abs() < 1e-9);
        let u = s.normalize(&x);
        assert!((u[0] - 0.5).abs() < 1e-12);
    }
}
