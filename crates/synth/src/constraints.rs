//! Performance constraints with normalized violation measures.

use crate::evaluator::Performance;
use adc_numerics::quant::Fingerprint;

/// Constraint direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Metric must be ≥ target.
    AtLeast,
    /// Metric must be ≤ target.
    AtMost,
}

/// One performance constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Metric name in the [`Performance`] map.
    pub metric: String,
    /// Direction.
    pub kind: ConstraintKind,
    /// Target value.
    pub target: f64,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(metric: &str, kind: ConstraintKind, target: f64) -> Self {
        Constraint {
            metric: metric.to_string(),
            kind,
            target,
        }
    }

    /// Normalized violation: 0 when satisfied, positive and scale-free when
    /// violated (relative shortfall). A missing metric counts as violation 1.
    pub fn violation(&self, perf: &Performance) -> f64 {
        let Some(v) = perf.get(&self.metric) else {
            return 1.0;
        };
        if !v.is_finite() {
            return 1.0;
        }
        let scale = self.target.abs().max(1e-30);
        match self.kind {
            ConstraintKind::AtLeast => ((self.target - v) / scale).max(0.0),
            ConstraintKind::AtMost => ((v - self.target) / scale).max(0.0),
        }
    }

    /// True if the constraint holds.
    pub fn satisfied(&self, perf: &Performance) -> bool {
        self.violation(perf) == 0.0
    }

    /// Folds the constraint into a fingerprint: metric name, direction and
    /// the target quantized to `digits` significant decimal digits (the
    /// normalized-spec contract — targets derived independently for the
    /// same physical spec collapse onto one key).
    #[must_use]
    pub fn fingerprint_into(&self, fp: Fingerprint, digits: u32) -> Fingerprint {
        fp.add_str(&self.metric)
            .add_u64(match self.kind {
                ConstraintKind::AtLeast => 0,
                ConstraintKind::AtMost => 1,
            })
            .add_quantized(self.target, digits)
    }
}

/// Fingerprint of a whole constraint set (order-sensitive: the set is part
/// of a problem definition, and problems list constraints determinis-
/// tically).
pub fn constraints_fingerprint(constraints: &[Constraint], digits: u32) -> u64 {
    let mut fp = Fingerprint::new().add_u64(constraints.len() as u64);
    for c in constraints {
        fp = c.fingerprint_into(fp, digits);
    }
    fp.finish()
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.kind {
            ConstraintKind::AtLeast => "≥",
            ConstraintKind::AtMost => "≤",
        };
        write!(f, "{} {} {:.4e}", self.metric, op, self.target)
    }
}

/// Sum of violations over a constraint set.
pub fn total_violation(constraints: &[Constraint], perf: &Performance) -> f64 {
    constraints.iter().map(|c| c.violation(perf)).sum()
}

/// True when every constraint holds.
pub fn all_satisfied(constraints: &[Constraint], perf: &Performance) -> bool {
    constraints.iter().all(|c| c.satisfied(perf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(pairs: &[(&str, f64)]) -> Performance {
        let mut p = Performance::new();
        for (k, v) in pairs {
            p.set(k, *v);
        }
        p
    }

    #[test]
    fn at_least_violation_is_relative() {
        let c = Constraint::new("gain", ConstraintKind::AtLeast, 100.0);
        assert_eq!(c.violation(&perf(&[("gain", 120.0)])), 0.0);
        assert!((c.violation(&perf(&[("gain", 50.0)])) - 0.5).abs() < 1e-12);
        assert!(c.satisfied(&perf(&[("gain", 100.0)])));
    }

    #[test]
    fn at_most_violation() {
        let c = Constraint::new("power", ConstraintKind::AtMost, 1e-3);
        assert_eq!(c.violation(&perf(&[("power", 0.5e-3)])), 0.0);
        assert!((c.violation(&perf(&[("power", 2e-3)])) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_or_nan_metric_is_violated() {
        let c = Constraint::new("pm", ConstraintKind::AtLeast, 60.0);
        assert_eq!(c.violation(&perf(&[])), 1.0);
        assert_eq!(c.violation(&perf(&[("pm", f64::NAN)])), 1.0);
    }

    #[test]
    fn totals_and_all_satisfied() {
        let cs = vec![
            Constraint::new("a", ConstraintKind::AtLeast, 10.0),
            Constraint::new("b", ConstraintKind::AtMost, 1.0),
        ];
        let p = perf(&[("a", 5.0), ("b", 2.0)]);
        assert!((total_violation(&cs, &p) - 1.5).abs() < 1e-12);
        assert!(!all_satisfied(&cs, &p));
        let good = perf(&[("a", 11.0), ("b", 0.5)]);
        assert!(all_satisfied(&cs, &good));
    }

    #[test]
    fn display_readable() {
        let c = Constraint::new("gain", ConstraintKind::AtLeast, 100.0);
        assert!(c.to_string().contains("gain"));
    }

    #[test]
    fn fingerprints_respect_normalization() {
        let a = vec![Constraint::new("gain", ConstraintKind::AtLeast, 100.0)];
        let jitter = vec![Constraint::new(
            "gain",
            ConstraintKind::AtLeast,
            100.0 * (1.0 + 1e-13),
        )];
        let other = vec![Constraint::new("gain", ConstraintKind::AtLeast, 101.0)];
        let flipped = vec![Constraint::new("gain", ConstraintKind::AtMost, 100.0)];
        assert_eq!(
            constraints_fingerprint(&a, 9),
            constraints_fingerprint(&jitter, 9)
        );
        assert_ne!(
            constraints_fingerprint(&a, 9),
            constraints_fingerprint(&other, 9)
        );
        assert_ne!(
            constraints_fingerprint(&a, 9),
            constraints_fingerprint(&flipped, 9)
        );
    }
}
