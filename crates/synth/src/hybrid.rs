//! The hybrid equation+simulation evaluator (§3 of the paper).
//!
//! Each candidate sizing is evaluated by: (1) **DC simulation** for the
//! operating point, supply power and device saturation; (2) **numeric
//! transfer-function formulation** from the linearized circuit
//! ([`adc_sfg::nettf`]) for low-frequency gain, unity-gain frequency and
//! phase margin. "Combining these approaches has the advantage of high
//! simulation accuracy and fast equation evaluation."
//!
//! The evaluator holds one persistent testbench plus DC/TF workspaces:
//! when the testbench carries a [`BenchTuner`], each candidate is applied
//! by **in-place retuning** (no netlist rebuild), and the DC Newton loop
//! and TF sampling run entirely in preallocated buffers — the steady-state
//! evaluation path is allocation-free. On OTA-sized testbenches both
//! workspaces factor CSR-**sparse** against a symbolic factorization the
//! engines freeze once per topology (see `adc_numerics::sparse`), so every
//! Newton iteration and every `det Y(s)` sample pays only for structural
//! nonzeros; the selection is automatic and the dense path remains the
//! oracle.

use crate::evaluator::{EvalOutcome, Evaluator, Performance};
use adc_numerics::quant::Fingerprint;
use adc_sfg::nettf::{extract_tf_with, NetTfOptions, NetTfWorkspace};
use adc_spice::dc::{dc_operating_point_warm, dc_operating_point_with, DcOptions, DcWorkspace};
use adc_spice::mosfet::Region;
use adc_spice::netlist::{Circuit, NodeId};
use adc_spice::SolverChoice;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// In-place retuning recipe for a testbench: writes the candidate vector
/// `x` into the circuit's element values ([`Circuit::set_value`],
/// [`Circuit::set_device_geometry`]) without changing its topology.
pub type BenchTuner = Rc<dyn Fn(&mut Circuit, &[f64])>;

/// A simulate-ready testbench for one candidate sizing.
#[derive(Clone)]
pub struct BenchSetup {
    /// Netlist (amplifier + bias + load).
    pub circuit: Circuit,
    /// Output node whose transfer function is analyzed.
    pub output: NodeId,
    /// Supply source name (power = delivered power of this source).
    pub supply: String,
    /// MOSFET names that must sit in saturation.
    pub devices: Vec<String>,
    /// Optional in-place retuning recipe; testbenches without one are
    /// rebuilt per candidate (the pre-workspace behaviour).
    pub tuner: Option<BenchTuner>,
}

impl BenchSetup {
    /// Creates a testbench without a retuning recipe.
    pub fn new(circuit: Circuit, output: NodeId, supply: String, devices: Vec<String>) -> Self {
        BenchSetup {
            circuit,
            output,
            supply,
            devices,
            tuner: None,
        }
    }

    /// Attaches an in-place retuning recipe.
    pub fn with_tuner(mut self, tuner: BenchTuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Applies candidate `x` by mutating the persistent netlist in place.
    /// Returns `false` when no tuner is attached (caller should rebuild).
    pub fn retune(&mut self, x: &[f64]) -> bool {
        match &self.tuner {
            Some(t) => {
                t(&mut self.circuit, x);
                true
            }
            None => false,
        }
    }
}

impl fmt::Debug for BenchSetup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchSetup")
            .field("circuit", &self.circuit)
            .field("output", &self.output)
            .field("supply", &self.supply)
            .field("devices", &self.devices)
            .field("tuner", &self.tuner.is_some())
            .finish()
    }
}

/// Options for the hybrid evaluation.
#[derive(Debug, Clone)]
pub struct HybridOptions {
    /// Frequency (Hz) at which low-frequency gain is probed (above the bias
    /// servo corner, below the amplifier poles).
    pub f_probe: f64,
    /// Upper limit for the unity-crossing search, Hz.
    pub f_max: f64,
    /// Transfer-function extraction options.
    pub nettf: NetTfOptions,
    /// DC solver options.
    pub dc: DcOptions,
    /// Allow the DC solve to **warm-start** from the previous candidate's
    /// bias point during the optimizer's local phase (see
    /// [`Evaluator::set_local_phase`]). During global exploration the
    /// solver always cold-starts, so annealing trajectories are identical
    /// to the rebuild-everything path. Disable to force cold starts
    /// everywhere.
    pub warm_start_local: bool,
    /// Linear-solver engine for the DC workspace. `Auto` (the default)
    /// keeps the size-based sparse/dense selection; a recovery ladder can
    /// force `Dense` to sidestep an unlucky static sparse pivot.
    pub solver: SolverChoice,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            f_probe: 1e4,
            f_max: 50e9,
            nettf: NetTfOptions::default(),
            // Per-node step limiting: the servo-biased OTA testbenches
            // converge marginally under global damping (a wound-up servo
            // node starves every other unknown), and a cold solve that
            // stalls where a warm one succeeds would fork warm-tail
            // trajectories from cold ones. Per-node limiting makes the
            // cold ladder land wherever the warm path does.
            dc: DcOptions {
                damping: adc_spice::dc::DcDamping::PerNode,
                ..Default::default()
            },
            warm_start_local: true,
            solver: SolverChoice::Auto,
        }
    }
}

impl HybridOptions {
    /// Deterministic fingerprint of every option that influences the
    /// numbers this evaluator produces (probe/search frequencies, TF
    /// sampling, DC solver tolerances, warm-start policy). The evaluator
    /// component of a cross-run synthesis cache key: results computed under
    /// different options must never alias.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new()
            .add_f64_exact(self.f_probe)
            .add_f64_exact(self.f_max)
            .add_f64_exact(self.nettf.radius)
            .add_f64_exact(self.nettf.trim_rel)
            .add_u64(self.dc.max_iter as u64)
            .add_f64_exact(self.dc.vtol)
            .add_f64_exact(self.dc.itol)
            .add_f64_exact(self.dc.max_step)
            .add_f64_exact(self.dc.gmin)
            .add_u64(match self.dc.damping {
                adc_spice::dc::DcDamping::Global => 0,
                adc_spice::dc::DcDamping::PerNode => 1,
            })
            .add_u64(u64::from(self.warm_start_local))
            .add_u64(match self.solver {
                SolverChoice::Auto => 0,
                SolverChoice::Dense => 1,
                SolverChoice::Sparse => 2,
            });
        // Nodesets are keyed maps; fold them in sorted order so insertion
        // order cannot perturb the digest.
        let mut nodesets: Vec<(&String, &f64)> = self.dc.nodeset.iter().collect();
        nodesets.sort_by(|a, b| a.0.cmp(b.0));
        fp = fp.add_u64(nodesets.len() as u64);
        for (name, &v) in nodesets {
            fp = fp.add_str(name).add_f64_exact(v);
        }
        fp.finish()
    }
}

/// Persistent per-evaluator state: the testbench built by the first
/// evaluation plus the simulation workspaces reused by every subsequent
/// one.
#[derive(Default)]
struct EvalState {
    bench: Option<BenchSetup>,
    dc: Option<DcWorkspace>,
    tf: NetTfWorkspace,
}

/// Evaluator wrapping a testbench builder closure.
///
/// Produced metrics: `power` (W), `a0` (linear low-frequency gain),
/// `unity_freq` (Hz, 0 when no crossing), `pm` (degrees, 0 when no
/// crossing), `saturated` (fraction of devices in saturation).
///
/// The first evaluation builds the testbench; if it carries a
/// [`BenchTuner`], later candidates are applied by in-place retuning and
/// the whole evaluation reuses preallocated simulation workspaces.
/// Without a tuner the testbench is rebuilt per candidate, but the
/// workspaces still persist (same topology → same buffers).
pub struct HybridOtaEvaluator<F> {
    build: F,
    opts: HybridOptions,
    state: RefCell<EvalState>,
    local_phase: std::cell::Cell<bool>,
}

impl<F> HybridOtaEvaluator<F>
where
    F: Fn(&[f64]) -> BenchSetup,
{
    /// Creates the evaluator from a testbench builder.
    pub fn new(build: F, opts: HybridOptions) -> Self {
        HybridOtaEvaluator {
            build,
            opts,
            state: RefCell::new(EvalState::default()),
            local_phase: std::cell::Cell::new(false),
        }
    }
}

impl<F> Evaluator for HybridOtaEvaluator<F>
where
    F: Fn(&[f64]) -> BenchSetup,
{
    fn set_local_phase(&self, local: bool) {
        self.local_phase.set(local);
    }

    /// One batch lane per [`adc_numerics::simd::MAX_LANES`] slot: the
    /// det Y(s) sampling inside each evaluation already runs through the
    /// batched complex solver, and the optimizer's speculative window
    /// keeps a full window of candidates flowing through the persistent
    /// workspaces (the default serial [`Evaluator::evaluate_batch`]
    /// preserves the evaluate-in-sequence semantics warm starts rely on).
    fn batch_width(&self) -> usize {
        adc_numerics::simd::MAX_LANES
    }

    fn evaluate(&self, x: &[f64]) -> EvalOutcome {
        let mut state = self.state.borrow_mut();
        let state = &mut *state;
        // Materialize the candidate: in-place retune of the persistent
        // testbench when possible, full rebuild otherwise.
        let retuned = match state.bench.as_mut() {
            Some(b) => b.retune(x),
            None => false,
        };
        if !retuned {
            state.bench = Some((self.build)(x));
        }
        let bench = state.bench.as_ref().expect("bench materialized above");
        // Leg 1: DC simulation (persistent workspace).
        if state.dc.is_none() {
            match DcWorkspace::with_solver(&bench.circuit, self.opts.solver) {
                Ok(ws) => state.dc = Some(ws),
                Err(e) => return EvalOutcome::Failed(format!("DC: {e}")),
            }
        }
        let dc_ws = state.dc.as_mut().expect("workspace created above");
        // Warm-start only in the optimizer's local phase: tightly clustered
        // candidates track the continuously deformed bias point, while the
        // global search stays on the history-free cold ladder.
        let solved = if self.opts.warm_start_local && self.local_phase.get() {
            dc_operating_point_warm(dc_ws, &bench.circuit, &self.opts.dc)
        } else {
            dc_operating_point_with(dc_ws, &bench.circuit, &self.opts.dc)
        };
        let op = match solved {
            Ok(op) => op,
            Err(e) => return EvalOutcome::Failed(format!("DC: {e}")),
        };
        let power = match op.source_power(&bench.circuit, &bench.supply) {
            Some(p) => p,
            None => return EvalOutcome::Failed(format!("no supply source {}", bench.supply)),
        };
        let mut saturated = 0usize;
        for name in &bench.devices {
            match op.mos_eval(name) {
                Some(ev) if ev.region == Region::Saturation => saturated += 1,
                Some(_) => {}
                None => return EvalOutcome::Failed(format!("no such device {name}")),
            }
        }
        // Leg 2: equation-based TF analysis on the linearized circuit
        // (persistent workspace; base restamped at this OP).
        let tf = match extract_tf_with(
            &mut state.tf,
            &bench.circuit,
            &op,
            bench.output,
            &self.opts.nettf,
        ) {
            Ok(tf) => tf.cancel_common_roots(1e-5),
            Err(e) => return EvalOutcome::Failed(format!("TF: {e}")),
        };
        let a0 = tf.magnitude(self.opts.f_probe);
        // Phase margin referenced to the amplifier's own low-frequency
        // phase (works for inverting and non-inverting configurations):
        // PM = 180° − accumulated phase lag at the unity crossing.
        let (fu, pm) = match tf.unity_gain_freq(self.opts.f_probe, self.opts.f_max) {
            Some(fu) => {
                let lag = tf.phase_exact_deg(self.opts.f_probe) - tf.phase_exact_deg(fu);
                (fu, 180.0 - lag)
            }
            None => (0.0, 0.0),
        };

        let mut perf = Performance::new();
        perf.set("power", power);
        perf.set("a0", a0);
        perf.set("unity_freq", fu);
        perf.set("pm", pm);
        perf.set(
            "saturated",
            if bench.devices.is_empty() {
                1.0
            } else {
                saturated as f64 / bench.devices.len() as f64
            },
        );
        EvalOutcome::Ok(perf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_spice::process::Process;

    /// Macromodel testbench: VCCS into RC with the gm set by `x[0]` and the
    /// bias current modeled as a resistor drawing supply power.
    fn macro_bench(x: &[f64]) -> BenchSetup {
        let gm = x[0];
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        // "Bias": power ∝ gm (models I = gm·Veff).
        c.add_resistor(
            "RBIAS",
            vdd,
            Circuit::GROUND,
            3.3 / (gm * 0.25 * 3.3).max(1e-12) * 3.3,
        );
        c.add_vsource_wave("VIN", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_vccs("GM", Circuit::GROUND, out, vin, Circuit::GROUND, -gm);
        c.add_resistor("RO", out, Circuit::GROUND, 100e3);
        c.add_capacitor("CL", out, Circuit::GROUND, 1e-12);
        BenchSetup::new(c, out, "VDD".into(), vec![])
    }

    /// Tuner matching [`macro_bench`]: writes the same derived values into
    /// the persistent netlist that a rebuild would produce.
    fn macro_tuner() -> BenchTuner {
        Rc::new(|ckt: &mut Circuit, x: &[f64]| {
            let gm = x[0];
            let (rb, _) = ckt.find_element("RBIAS").unwrap();
            ckt.set_value(rb, 3.3 / (gm * 0.25 * 3.3).max(1e-12) * 3.3);
            let (g, _) = ckt.find_element("GM").unwrap();
            ckt.set_value(g, -gm);
        })
    }

    /// The in-place retuning fast path must match rebuilding the testbench
    /// for every candidate (to within the DC solver tolerance — the
    /// persistent evaluator warm-starts Newton from the previous bias
    /// point).
    #[test]
    fn tuner_path_matches_rebuild() {
        let with_tuner = |x: &[f64]| macro_bench(x).with_tuner(macro_tuner());
        let tuned = HybridOtaEvaluator::new(with_tuner, HybridOptions::default());
        for x in [[1e-3], [2e-3], [0.5e-3], [1e-3]] {
            let fresh = HybridOtaEvaluator::new(macro_bench, HybridOptions::default());
            let (a, b) = match (tuned.evaluate(&x), fresh.evaluate(&x)) {
                (EvalOutcome::Ok(a), EvalOutcome::Ok(b)) => (a, b),
                (a, b) => panic!("unexpected failure: {a:?} vs {b:?}"),
            };
            for (name, va) in a.iter() {
                let vb = b.get(name).unwrap();
                let tol = 1e-6 * vb.abs().max(1e-12);
                assert!(
                    (va - vb).abs() <= tol,
                    "x = {x:?}, {name}: retuned {va} vs rebuilt {vb}"
                );
            }
        }
    }

    #[test]
    fn macromodel_metrics() {
        let ev = HybridOtaEvaluator::new(macro_bench, HybridOptions::default());
        match ev.evaluate(&[1e-3]) {
            EvalOutcome::Ok(p) => {
                // A0 = gm·ro = 100.
                assert!((p.get("a0").unwrap() - 100.0).abs() < 1.0, "{p:?}");
                // fu ≈ gm/(2πC) = 159 MHz.
                let fu = p.get("unity_freq").unwrap();
                assert!((fu - 159.2e6).abs() < 5e6, "fu {fu}");
                // Single pole: PM ≈ 90°.
                let pm = p.get("pm").unwrap();
                assert!((pm - 90.0).abs() < 2.0, "pm {pm}");
                assert!(p.get("power").unwrap() > 0.0);
                assert_eq!(p.get("saturated"), Some(1.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
    }

    #[test]
    fn transistor_bench_works_end_to_end() {
        // Common-source stage as a minimal transistor bench.
        let proc = Process::c025();
        let build = move |x: &[f64]| {
            let w = x[0];
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let g = c.node("g");
            let d = c.node("d");
            c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
            c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
            c.add_resistor("RD", vdd, d, 10e3);
            c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
            c.add_mosfet(
                "M1",
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                proc.nmos,
                w,
                0.5e-6,
            );
            BenchSetup::new(c, d, "VDD".into(), vec!["M1".into()])
        };
        let ev = HybridOtaEvaluator::new(build, HybridOptions::default());
        match ev.evaluate(&[5e-6]) {
            EvalOutcome::Ok(p) => {
                assert!(p.get("a0").unwrap() > 2.0);
                assert_eq!(p.get("saturated"), Some(1.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
        // A 100× wider device leaves saturation (drops into triode).
        match ev.evaluate(&[500e-6]) {
            EvalOutcome::Ok(p) => {
                assert_eq!(p.get("saturated"), Some(0.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
    }
}
