//! The hybrid equation+simulation evaluator (§3 of the paper).
//!
//! Each candidate sizing is evaluated by: (1) **DC simulation** for the
//! operating point, supply power and device saturation; (2) **numeric
//! transfer-function formulation** from the linearized circuit
//! ([`adc_sfg::nettf`]) for low-frequency gain, unity-gain frequency and
//! phase margin. "Combining these approaches has the advantage of high
//! simulation accuracy and fast equation evaluation."

use crate::evaluator::{EvalOutcome, Evaluator, Performance};
use adc_sfg::nettf::{extract_tf, NetTfOptions};
use adc_spice::dc::{dc_operating_point, DcOptions};
use adc_spice::mosfet::Region;
use adc_spice::netlist::{Circuit, NodeId};

/// A simulate-ready testbench for one candidate sizing.
#[derive(Debug, Clone)]
pub struct BenchSetup {
    /// Netlist (amplifier + bias + load).
    pub circuit: Circuit,
    /// Output node whose transfer function is analyzed.
    pub output: NodeId,
    /// Supply source name (power = delivered power of this source).
    pub supply: String,
    /// MOSFET names that must sit in saturation.
    pub devices: Vec<String>,
}

/// Options for the hybrid evaluation.
#[derive(Debug, Clone)]
pub struct HybridOptions {
    /// Frequency (Hz) at which low-frequency gain is probed (above the bias
    /// servo corner, below the amplifier poles).
    pub f_probe: f64,
    /// Upper limit for the unity-crossing search, Hz.
    pub f_max: f64,
    /// Transfer-function extraction options.
    pub nettf: NetTfOptions,
    /// DC solver options.
    pub dc: DcOptions,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            f_probe: 1e4,
            f_max: 50e9,
            nettf: NetTfOptions::default(),
            dc: DcOptions::default(),
        }
    }
}

/// Evaluator wrapping a testbench builder closure.
///
/// Produced metrics: `power` (W), `a0` (linear low-frequency gain),
/// `unity_freq` (Hz, 0 when no crossing), `pm` (degrees, 0 when no
/// crossing), `saturated` (fraction of devices in saturation).
pub struct HybridOtaEvaluator<F> {
    build: F,
    opts: HybridOptions,
}

impl<F> HybridOtaEvaluator<F>
where
    F: Fn(&[f64]) -> BenchSetup,
{
    /// Creates the evaluator from a testbench builder.
    pub fn new(build: F, opts: HybridOptions) -> Self {
        HybridOtaEvaluator { build, opts }
    }
}

impl<F> Evaluator for HybridOtaEvaluator<F>
where
    F: Fn(&[f64]) -> BenchSetup,
{
    fn evaluate(&self, x: &[f64]) -> EvalOutcome {
        let bench = (self.build)(x);
        // Leg 1: DC simulation.
        let op = match dc_operating_point(&bench.circuit, &self.opts.dc) {
            Ok(op) => op,
            Err(e) => return EvalOutcome::Failed(format!("DC: {e}")),
        };
        let power = match op.source_power(&bench.circuit, &bench.supply) {
            Some(p) => p,
            None => return EvalOutcome::Failed(format!("no supply source {}", bench.supply)),
        };
        let mut saturated = 0usize;
        for name in &bench.devices {
            match op.mos_eval(name) {
                Some(ev) if ev.region == Region::Saturation => saturated += 1,
                Some(_) => {}
                None => return EvalOutcome::Failed(format!("no such device {name}")),
            }
        }
        // Leg 2: equation-based TF analysis on the linearized circuit.
        let tf = match extract_tf(&bench.circuit, &op, bench.output, &self.opts.nettf) {
            Ok(tf) => tf.cancel_common_roots(1e-5),
            Err(e) => return EvalOutcome::Failed(format!("TF: {e}")),
        };
        let a0 = tf.magnitude(self.opts.f_probe);
        // Phase margin referenced to the amplifier's own low-frequency
        // phase (works for inverting and non-inverting configurations):
        // PM = 180° − accumulated phase lag at the unity crossing.
        let (fu, pm) = match tf.unity_gain_freq(self.opts.f_probe, self.opts.f_max) {
            Some(fu) => {
                let lag = tf.phase_exact_deg(self.opts.f_probe) - tf.phase_exact_deg(fu);
                (fu, 180.0 - lag)
            }
            None => (0.0, 0.0),
        };

        let mut perf = Performance::new();
        perf.set("power", power);
        perf.set("a0", a0);
        perf.set("unity_freq", fu);
        perf.set("pm", pm);
        perf.set(
            "saturated",
            if bench.devices.is_empty() {
                1.0
            } else {
                saturated as f64 / bench.devices.len() as f64
            },
        );
        EvalOutcome::Ok(perf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_spice::process::Process;

    /// Macromodel testbench: VCCS into RC with the gm set by `x[0]` and the
    /// bias current modeled as a resistor drawing supply power.
    fn macro_bench(x: &[f64]) -> BenchSetup {
        let gm = x[0];
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
        // "Bias": power ∝ gm (models I = gm·Veff).
        c.add_resistor(
            "RBIAS",
            vdd,
            Circuit::GROUND,
            3.3 / (gm * 0.25 * 3.3).max(1e-12) * 3.3,
        );
        c.add_vsource_wave("VIN", vin, Circuit::GROUND, 0.0.into(), 1.0);
        c.add_vccs("GM", Circuit::GROUND, out, vin, Circuit::GROUND, -gm);
        c.add_resistor("RO", out, Circuit::GROUND, 100e3);
        c.add_capacitor("CL", out, Circuit::GROUND, 1e-12);
        BenchSetup {
            circuit: c,
            output: out,
            supply: "VDD".into(),
            devices: vec![],
        }
    }

    #[test]
    fn macromodel_metrics() {
        let ev = HybridOtaEvaluator::new(macro_bench, HybridOptions::default());
        match ev.evaluate(&[1e-3]) {
            EvalOutcome::Ok(p) => {
                // A0 = gm·ro = 100.
                assert!((p.get("a0").unwrap() - 100.0).abs() < 1.0, "{p:?}");
                // fu ≈ gm/(2πC) = 159 MHz.
                let fu = p.get("unity_freq").unwrap();
                assert!((fu - 159.2e6).abs() < 5e6, "fu {fu}");
                // Single pole: PM ≈ 90°.
                let pm = p.get("pm").unwrap();
                assert!((pm - 90.0).abs() < 2.0, "pm {pm}");
                assert!(p.get("power").unwrap() > 0.0);
                assert_eq!(p.get("saturated"), Some(1.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
    }

    #[test]
    fn transistor_bench_works_end_to_end() {
        // Common-source stage as a minimal transistor bench.
        let proc = Process::c025();
        let build = move |x: &[f64]| {
            let w = x[0];
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let g = c.node("g");
            let d = c.node("d");
            c.add_vsource("VDD", vdd, Circuit::GROUND, 3.3);
            c.add_vsource_wave("VG", g, Circuit::GROUND, 0.8.into(), 1.0);
            c.add_resistor("RD", vdd, d, 10e3);
            c.add_capacitor("CL", d, Circuit::GROUND, 1e-12);
            c.add_mosfet(
                "M1",
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                proc.nmos,
                w,
                0.5e-6,
            );
            BenchSetup {
                circuit: c,
                output: d,
                supply: "VDD".into(),
                devices: vec!["M1".into()],
            }
        };
        let ev = HybridOtaEvaluator::new(build, HybridOptions::default());
        match ev.evaluate(&[5e-6]) {
            EvalOutcome::Ok(p) => {
                assert!(p.get("a0").unwrap() > 2.0);
                assert_eq!(p.get("saturated"), Some(1.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
        // A 100× wider device leaves saturation (drops into triode).
        match ev.evaluate(&[500e-6]) {
            EvalOutcome::Ok(p) => {
                assert_eq!(p.get("saturated"), Some(0.0));
            }
            EvalOutcome::Failed(e) => panic!("{e}"),
        }
    }
}
