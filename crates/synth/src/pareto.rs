//! Pareto-front utilities (minimize-all convention).
//!
//! The paper contrasts its hybrid flow with Pareto-surface approaches
//! ([7–9] in its references); these helpers support that comparison and the
//! multi-objective ablation benches.

/// True if `a` dominates `b`: no-worse in every coordinate and strictly
/// better in at least one (all objectives minimized).
///
/// # Panics
/// Panics on length mismatch.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated points.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q, &points[i]))
        })
        .collect()
}

/// Hypervolume-style scalar progress measure: sum over front points of the
/// rectangle to a reference point (2-D only; for reporting trends).
///
/// # Panics
/// Panics if any point is not 2-D.
pub fn hypervolume_2d(front: &[Vec<f64>], reference: (f64, f64)) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .map(|p| {
            assert_eq!(p.len(), 2, "hypervolume_2d needs 2-D points");
            (p[0], p[1])
        })
        .filter(|&(x, y)| x <= reference.0 && y <= reference.1)
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut hv = 0.0;
    let mut prev_y = reference.1;
    for (x, y) in pts {
        if y < prev_y {
            hv += (reference.0 - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal: not strict
    }

    #[test]
    fn front_extraction_matches_brute_force() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2,3)
            vec![4.0, 1.0],
            vec![2.0, 3.0], // duplicate: both stay (neither dominates)
            vec![5.0, 5.0], // dominated
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 1, 3, 4]);
    }

    #[test]
    fn hypervolume_grows_with_better_front() {
        let f1 = vec![vec![2.0, 2.0]];
        let f2 = vec![vec![1.0, 1.0]];
        let r = (3.0, 3.0);
        assert!(hypervolume_2d(&f2, r) > hypervolume_2d(&f1, r));
        // Points beyond the reference contribute nothing.
        assert_eq!(hypervolume_2d(&[vec![4.0, 4.0]], r), 0.0);
    }
}
