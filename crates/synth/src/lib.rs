//! # adc-synth
//!
//! A cell-level analog synthesis engine in the mold of the commercial tools
//! the paper drives (NeoCircuit): a bounded design space, performance
//! constraints with normalized penalties, a simulated-annealing global
//! search with Nelder–Mead refinement, and — key to the paper's
//! methodology — a **hybrid evaluator** that combines DC simulation
//! (operating point, power, saturation checks via `adc-spice`) with
//! equation-based transfer-function analysis (poles/zeros/gain/phase margin
//! via `adc-sfg`) for each candidate sizing.
//!
//! The engine also implements **retargeting**: re-synthesizing a block to a
//! new specification warm-started from a previous solution, which is how the
//! paper's "2–3 weeks for the first synthesis, 1 day for subsequent blocks"
//! asymmetry arises.
//!
//! ## Example: synthesize a toy two-variable design
//!
//! ```
//! use adc_synth::space::{DesignSpace, DesignVar};
//! use adc_synth::constraints::{Constraint, ConstraintKind};
//! use adc_synth::evaluator::{EvalOutcome, Evaluator, Performance};
//! use adc_synth::runner::{SynthConfig, Synthesizer};
//!
//! struct Toy;
//! impl Evaluator for Toy {
//!     fn evaluate(&self, x: &[f64]) -> EvalOutcome {
//!         let mut p = Performance::new();
//!         p.set("power", x[0] * x[0] + x[1] * x[1]);
//!         p.set("gain", 10.0 * x[0] + x[1]);
//!         EvalOutcome::Ok(p)
//!     }
//! }
//!
//! let space = DesignSpace::new(vec![
//!     DesignVar::linear("a", 0.0, 10.0),
//!     DesignVar::linear("b", 0.0, 10.0),
//! ]);
//! let constraints = vec![Constraint::new("gain", ConstraintKind::AtLeast, 20.0)];
//! let synth = Synthesizer::new(space, constraints, "power");
//! let run = synth.synthesize(&Toy, &SynthConfig { iterations: 4000, seed: 7, ..Default::default() });
//! assert!(run.feasible);
//! assert!(run.best_perf.get("gain").unwrap() >= 19.9);
//! ```

pub mod anneal;
pub mod chain;
pub mod constraints;
pub mod evaluator;
pub mod hybrid;
pub mod neldermead;
pub mod pareto;
pub mod runner;
pub mod space;
pub mod tran_chain;

pub use chain::{ChainEvaluator, ChainOptions, ChainReport};
pub use constraints::{Constraint, ConstraintKind};
pub use evaluator::{EvalOutcome, Evaluator, Performance};
pub use runner::{SynthConfig, SynthError, SynthResult, Synthesizer, WarmStart};
pub use space::{DesignSpace, DesignVar};
pub use tran_chain::{
    TranChainEvaluator, TranChainOptions, TranChainReport, TranChainSetup, TranStageReport,
};
