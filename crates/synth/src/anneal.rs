//! Simulated annealing over normalized design coordinates.
//!
//! NeoCircuit-class sizing tools are stochastic global searchers over
//! simulation-in-the-loop cost functions; simulated annealing with a
//! feasibility-first cost (normalized constraint violations strongly
//! weighted over the objective) reproduces that behaviour.

use crate::constraints::{all_satisfied, total_violation, Constraint};
use crate::evaluator::{EvalOutcome, Evaluator, Performance};
use crate::space::DesignSpace;
use adc_numerics::quant::quantize_rel;
use adc_numerics::simd::MAX_LANES;
use adc_numerics::Deadline;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Penalty weight on normalized constraint violations relative to the
/// normalized objective.
pub const PENALTY_WEIGHT: f64 = 1e3;

/// Annealing schedule and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Total candidate evaluations.
    pub iterations: usize,
    /// Starting neighbourhood scale (normalized units).
    pub sigma0: f64,
    /// Final neighbourhood scale.
    pub sigma_end: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Fraction of the schedule's tail run with the evaluator's **local
    /// phase** enabled ([`Evaluator::set_local_phase`]): late-annealing
    /// candidates cluster tightly, so a simulation-backed evaluator may
    /// warm-start its DC solve there. Requires cost quantization to keep
    /// trajectories identical to the cold path; 0.0 disables.
    pub warm_tail_frac: f64,
    /// Significant decimal digits accepted costs are quantized to
    /// ([`adc_numerics::quant::quantize_rel`]). The grid sits well above
    /// DC-solver noise (warm and cold operating points agree to ~1e-9
    /// relative and better), so warm-started tail evaluations make
    /// bit-identical accept/reject decisions to cold ones — the property
    /// that lets [`AnnealConfig::warm_tail_frac`] > 0 leave trajectories
    /// unperturbed. `None` compares raw costs.
    pub cost_quant_digits: Option<u32>,
    /// Cooperative wall-clock budget, checked once per annealing step. An
    /// expired deadline stops the schedule early and marks the result
    /// [`AnnealResult::timed_out`]; the default is unlimited and the check
    /// costs nothing. Never part of any fingerprint — an unexpired
    /// deadline leaves the trajectory bit-identical to no deadline.
    pub deadline: Deadline,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 2000,
            sigma0: 0.25,
            sigma_end: 0.02,
            seed: 1,
            warm_tail_frac: 0.3,
            cost_quant_digits: Some(6),
            deadline: Deadline::none(),
        }
    }
}

/// Result of one annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best point found (normalized coordinates).
    pub best_u: Vec<f64>,
    /// Cost of the best point.
    pub best_cost: f64,
    /// Performance at the best point (`None` if every evaluation failed).
    pub best_perf: Option<Performance>,
    /// Whether the best point satisfies all constraints.
    pub feasible: bool,
    /// Number of candidate evaluations **consumed** by the schedule —
    /// identical to a strictly serial run. Speculative batch evaluations
    /// discarded at an accepted move (see [`Evaluator::batch_width`]) are
    /// not counted.
    pub evaluations: usize,
    /// Best-cost trace (one entry per iteration).
    pub history: Vec<f64>,
    /// The schedule stopped early because [`AnnealConfig::deadline`]
    /// expired. The partial best-so-far is still reported.
    pub timed_out: bool,
}

/// Scalar cost of an outcome: `PENALTY_WEIGHT·Σviolations + obj/obj_ref`.
pub fn outcome_cost(
    outcome: &EvalOutcome,
    constraints: &[Constraint],
    objective: &str,
    obj_ref: f64,
) -> f64 {
    match outcome {
        EvalOutcome::Failed(_) => f64::INFINITY,
        EvalOutcome::Ok(perf) => {
            let viol = total_violation(constraints, perf);
            let obj = perf.get(objective).unwrap_or(f64::INFINITY);
            if !obj.is_finite() {
                return f64::INFINITY;
            }
            PENALTY_WEIGHT * viol + obj / obj_ref.abs().max(1e-30)
        }
    }
}

/// Runs simulated annealing; `start` (normalized) warm-starts the search.
pub fn anneal<E: Evaluator>(
    space: &DesignSpace,
    evaluator: &E,
    constraints: &[Constraint],
    objective: &str,
    cfg: &AnnealConfig,
    start: Option<&[f64]>,
) -> AnnealResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluations = 0usize;

    // Objective reference from a few probe points (scale-free objective).
    let mut obj_ref = 1.0;
    for _ in 0..8 {
        let u = space.random_point(&mut rng);
        if let EvalOutcome::Ok(p) = evaluator.evaluate(&space.denormalize(&u)) {
            evaluations += 1;
            if let Some(v) = p.get(objective) {
                if v.is_finite() && v != 0.0 {
                    obj_ref = v.abs();
                    break;
                }
            }
        } else {
            evaluations += 1;
        }
    }

    // Cost quantization grid (identity when disabled).
    let q = |c: f64| match cfg.cost_quant_digits {
        Some(d) => quantize_rel(c, d),
        None => c,
    };

    let mut cur_u = match start {
        Some(u) => u.to_vec(),
        None => space.random_point(&mut rng),
    };
    let cur_out = evaluator.evaluate(&space.denormalize(&cur_u));
    evaluations += 1;
    let mut cur_cost = q(outcome_cost(&cur_out, constraints, objective, obj_ref));

    let mut best_u = cur_u.clone();
    let mut best_cost = cur_cost;
    let mut best_perf = match cur_out {
        EvalOutcome::Ok(p) => Some(p),
        EvalOutcome::Failed(_) => None,
    };

    // Initial temperature from cost dispersion of random probes.
    let mut probe_costs = Vec::new();
    for _ in 0..10 {
        let u = space.random_point(&mut rng);
        let out = evaluator.evaluate(&space.denormalize(&u));
        evaluations += 1;
        let c = q(outcome_cost(&out, constraints, objective, obj_ref));
        if c.is_finite() {
            probe_costs.push(c);
            if c < best_cost {
                best_cost = c;
                best_u = u.clone();
                cur_u = u.clone();
                cur_cost = c;
                if let EvalOutcome::Ok(p) = out {
                    best_perf = Some(p);
                }
            }
        }
    }
    let spread = if probe_costs.len() >= 2 {
        let mx = probe_costs.iter().cloned().fold(f64::MIN, f64::max);
        let mn = probe_costs.iter().cloned().fold(f64::MAX, f64::min);
        (mx - mn).max(1e-6)
    } else {
        1.0
    };
    let t0 = spread;
    let t_end = spread * 1e-5;

    let mut history = Vec::with_capacity(cfg.iterations);
    let mut timed_out = cfg.deadline.expired();
    let n = cfg.iterations.max(1);
    // First iteration of the warm-start tail (n → tail disabled).
    let tail_len = (cfg.warm_tail_frac.clamp(0.0, 1.0) * n as f64) as usize;
    let tail_start = n - tail_len.min(n);
    let mut local_phase_on = false;
    // Speculative batching: in the cold tail of the schedule (where the
    // acceptance rate is low and candidates cluster), propose up to
    // `spec_width` moves from the current point under the assumption that
    // each intermediate move is **rejected through a consumed Metropolis
    // draw** — the dominant outcome late in the schedule — evaluate them
    // as one batch, then replay the serial acceptance rule over the
    // cached outcomes, consuming them while the assumption holds and
    // discarding the rest at the first accept (or draw-free reject).
    // Proposals come from a cloned RNG and are re-drawn from the real one
    // during replay, so the trajectory, history trace and evaluation
    // count are bit-identical to the strictly serial schedule.
    //
    // The window adapts to the observed acceptance pattern: it starts at
    // 1, doubles (up to the evaluator's width) each time a batch is
    // consumed in full, and resets to 1 the moment a replay breaks the
    // all-rejected assumption. Streaks of rejections — the regime the
    // speculation targets — quickly earn full-width batches, while an
    // accept-heavy stretch pays at most one discarded outcome per step.
    // The window depends only on the replayed trajectory, so it is as
    // deterministic as the trajectory itself.
    let spec_width = evaluator.batch_width().clamp(1, MAX_LANES);
    let mut spec_window = 1usize;
    let mut k = 0usize;
    while k < n {
        // Deadline check at anneal-step granularity; the partial search
        // state (best-so-far, history prefix) is preserved.
        if cfg.deadline.expired() {
            timed_out = true;
            break;
        }
        if tail_len > 0 && k == tail_start {
            evaluator.set_local_phase(true);
            local_phase_on = true;
        }
        let speculating = spec_width > 1 && k >= tail_start;
        let window = if speculating {
            (n - k).min(spec_window)
        } else {
            1
        };
        let mut spec_rng = rng.clone();
        let mut cands = Vec::with_capacity(window);
        for i in k..k + window {
            let frac = i as f64 / n as f64;
            let sigma = cfg.sigma0 * (cfg.sigma_end / cfg.sigma0).powf(frac);
            cands.push(space.neighbor(&cur_u, sigma, &mut spec_rng));
            let _assumed_reject = spec_rng.gen::<f64>();
        }
        let denorm: Vec<Vec<f64>> = cands.iter().map(|u| space.denormalize(u)).collect();
        let outs = if window == 1 {
            vec![evaluator.evaluate(&denorm[0])]
        } else {
            evaluator.evaluate_batch(&denorm)
        };
        assert_eq!(
            outs.len(),
            window,
            "Evaluator::evaluate_batch must return one outcome per candidate"
        );
        // Serial replay over the cached outcomes.
        let mut advanced = 0usize;
        for (idx, out) in outs.into_iter().enumerate() {
            if idx > 0 && cfg.deadline.expired() {
                timed_out = true;
                break;
            }
            let frac = (k + idx) as f64 / n as f64;
            let temp = t0 * (t_end / t0).powf(frac);
            let sigma = cfg.sigma0 * (cfg.sigma_end / cfg.sigma0).powf(frac);
            let cand_u = space.neighbor(&cur_u, sigma, &mut rng);
            debug_assert_eq!(cand_u, cands[idx], "speculative replay out of sync");
            evaluations += 1;
            let cost = q(outcome_cost(&out, constraints, objective, obj_ref));
            let accept = cost <= cur_cost
                || (cost.is_finite() && rng.gen::<f64>() < ((cur_cost - cost) / temp).exp());
            // The next cached outcome is valid only if this move was
            // rejected with a consumed draw, as speculated.
            let path_holds = !accept && cost.is_finite();
            if accept {
                cur_u = cand_u;
                cur_cost = cost;
                if cost < best_cost {
                    best_cost = cost;
                    best_u = cur_u.clone();
                    if let EvalOutcome::Ok(p) = out {
                        best_perf = Some(p);
                    }
                }
            }
            history.push(best_cost);
            advanced = idx + 1;
            if !path_holds {
                break;
            }
        }
        k += advanced;
        if speculating {
            spec_window = if advanced == window {
                (spec_window * 2).min(spec_width)
            } else {
                1
            };
        }
        if timed_out {
            break;
        }
    }
    if local_phase_on {
        evaluator.set_local_phase(false);
    }

    let feasible = best_perf
        .as_ref()
        .is_some_and(|p| all_satisfied(constraints, p));
    AnnealResult {
        best_u,
        best_cost,
        best_perf,
        feasible,
        evaluations,
        history,
        timed_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintKind;
    use crate::space::DesignVar;

    fn sphere_eval(x: &[f64]) -> EvalOutcome {
        let mut p = Performance::new();
        p.set(
            "obj",
            x.iter().map(|v| (v - 3.0) * (v - 3.0)).sum::<f64>() + 1.0,
        );
        p.set("sum", x.iter().sum());
        EvalOutcome::Ok(p)
    }

    fn space2() -> DesignSpace {
        DesignSpace::new(vec![
            DesignVar::linear("a", 0.0, 10.0),
            DesignVar::linear("b", 0.0, 10.0),
        ])
    }

    #[test]
    fn minimizes_sphere() {
        let cfg = AnnealConfig {
            iterations: 3000,
            seed: 3,
            ..Default::default()
        };
        let r = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
        let x = space2().denormalize(&r.best_u);
        assert!((x[0] - 3.0).abs() < 0.3, "{x:?}");
        assert!((x[1] - 3.0).abs() < 0.3, "{x:?}");
        assert!(r.feasible);
    }

    #[test]
    fn respects_constraints() {
        // Minimize distance to (3,3) subject to sum ≥ 12 — optimum on the
        // constraint boundary near (6,6).
        let cs = vec![Constraint::new("sum", ConstraintKind::AtLeast, 12.0)];
        let cfg = AnnealConfig {
            iterations: 6000,
            seed: 4,
            ..Default::default()
        };
        let r = anneal(&space2(), &sphere_eval, &cs, "obj", &cfg, None);
        assert!(r.feasible);
        let x = space2().denormalize(&r.best_u);
        assert!(x[0] + x[1] >= 11.9, "{x:?}");
        assert!(x[0] + x[1] < 13.0, "should sit near the boundary: {x:?}");
    }

    #[test]
    fn reproducible_with_seed() {
        let cfg = AnnealConfig {
            iterations: 500,
            seed: 9,
            ..Default::default()
        };
        let a = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
        let b = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
        assert_eq!(a.best_u, b.best_u);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn warm_start_speeds_convergence() {
        let space = space2();
        let target_u = space.normalize(&[3.0, 3.0]);
        let cfg = AnnealConfig {
            iterations: 150,
            sigma0: 0.05,
            sigma_end: 0.01,
            seed: 5,
            ..Default::default()
        };
        let warm = anneal(&space, &sphere_eval, &[], "obj", &cfg, Some(&target_u));
        let cold_cfg = AnnealConfig {
            iterations: 150,
            seed: 5,
            ..Default::default()
        };
        let cold = anneal(&space, &sphere_eval, &[], "obj", &cold_cfg, None);
        assert!(warm.best_cost <= cold.best_cost + 1e-9);
    }

    #[test]
    fn failed_evaluations_do_not_win() {
        let eval = |x: &[f64]| {
            if x[0] < 5.0 {
                EvalOutcome::Failed("region not simulatable".into())
            } else {
                sphere_eval(x)
            }
        };
        let cfg = AnnealConfig {
            iterations: 2000,
            seed: 6,
            ..Default::default()
        };
        let r = anneal(&space2(), &eval, &[], "obj", &cfg, None);
        let x = space2().denormalize(&r.best_u);
        assert!(x[0] >= 5.0, "{x:?}");
        assert!(r.best_perf.is_some());
    }

    #[test]
    fn expired_deadline_stops_early_with_partial_best() {
        let cfg = AnnealConfig {
            iterations: 3000,
            seed: 3,
            deadline: Deadline::within(std::time::Duration::from_secs(0)),
            ..Default::default()
        };
        let r = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
        assert!(r.timed_out);
        // The probe phase still ran, so a best-so-far exists and history
        // holds no main-loop entries.
        assert!(r.best_perf.is_some());
        assert!(r.history.is_empty());
        // An unlimited deadline is not reported as a timeout.
        let cfg = AnnealConfig {
            iterations: 50,
            seed: 3,
            ..Default::default()
        };
        assert!(!anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None).timed_out);
    }

    /// A batch-capable evaluator must leave the annealing trajectory —
    /// best point, history trace and evaluation count — bit-identical to
    /// the strictly serial schedule, while actually engaging the
    /// speculative batch path in the tail.
    #[test]
    fn speculative_batches_leave_trajectory_bit_identical() {
        struct BatchSphere {
            batch_calls: std::cell::Cell<usize>,
        }
        impl Evaluator for BatchSphere {
            fn evaluate(&self, x: &[f64]) -> EvalOutcome {
                sphere_eval(x)
            }
            fn batch_width(&self) -> usize {
                8
            }
            fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<EvalOutcome> {
                self.batch_calls.set(self.batch_calls.get() + 1);
                xs.iter().map(|x| self.evaluate(x)).collect()
            }
        }
        for seed in [2, 11, 42] {
            let cfg = AnnealConfig {
                iterations: 800,
                seed,
                ..Default::default()
            };
            let serial = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
            let batched = BatchSphere {
                batch_calls: std::cell::Cell::new(0),
            };
            let spec = anneal(&space2(), &batched, &[], "obj", &cfg, None);
            assert!(batched.batch_calls.get() > 0, "speculation must engage");
            assert_eq!(serial.best_u, spec.best_u);
            assert_eq!(serial.best_cost.to_bits(), spec.best_cost.to_bits());
            assert_eq!(serial.best_perf, spec.best_perf);
            assert_eq!(serial.history, spec.history);
            assert_eq!(serial.evaluations, spec.evaluations);
        }
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let cfg = AnnealConfig {
            iterations: 300,
            seed: 7,
            ..Default::default()
        };
        let r = anneal(&space2(), &sphere_eval, &[], "obj", &cfg, None);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}
