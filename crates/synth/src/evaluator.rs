//! Evaluation interface: a candidate sizing vector in, named performance
//! numbers out.

use std::collections::BTreeMap;

/// Named performance metrics of one candidate design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Performance {
    metrics: BTreeMap<String, f64>,
}

impl Performance {
    /// Empty metrics set.
    pub fn new() -> Self {
        Performance::default()
    }

    /// Sets a metric.
    pub fn set(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Reads a metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Result of evaluating one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// Evaluation succeeded.
    Ok(Performance),
    /// The candidate could not be evaluated (DC non-convergence, singular
    /// system, …); the optimizer treats it as maximally infeasible.
    Failed(String),
}

/// Anything that can evaluate a design point (values in real units, in the
/// design space's variable order).
pub trait Evaluator {
    /// Evaluates the candidate.
    fn evaluate(&self, x: &[f64]) -> EvalOutcome;

    /// Phase hint from the optimizer: `true` while a **local** search
    /// (Nelder–Mead polish) probes tightly clustered candidates, where a
    /// simulation-backed evaluator may warm-start from the previous
    /// solution; `false` during global exploration, where evaluations must
    /// be independent of history. Default: ignored (analytic evaluators
    /// have no state to reuse).
    fn set_local_phase(&self, _local: bool) {}

    /// Maximum number of candidates worth proposing to
    /// [`Evaluator::evaluate_batch`] in one speculative batch. `1` (the
    /// default) disables speculation — the optimizer proposes and
    /// evaluates strictly serially. Simulation-backed evaluators whose
    /// batch path amortizes work across candidates report a larger width.
    fn batch_width(&self) -> usize {
        1
    }

    /// Evaluates a batch of candidates, in order. The default maps
    /// [`Evaluator::evaluate`] serially through the same persistent
    /// state. Implementations must return exactly `xs.len()` outcomes
    /// with outcome `i` identical to what `self.evaluate(&xs[i])` would
    /// produce at that point of the sequence — optimizer trajectories
    /// depend on it bitwise.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<EvalOutcome> {
        xs.iter().map(|x| self.evaluate(x)).collect()
    }
}

impl<F> Evaluator for F
where
    F: Fn(&[f64]) -> EvalOutcome,
{
    fn evaluate(&self, x: &[f64]) -> EvalOutcome {
        self(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_set_get_iter() {
        let mut p = Performance::new();
        p.set("power", 1e-3);
        p.set("gain", 80.0);
        assert_eq!(p.get("power"), Some(1e-3));
        assert_eq!(p.get("missing"), None);
        let names: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["gain", "power"]); // name order
    }

    #[test]
    fn closures_are_evaluators() {
        let f = |x: &[f64]| {
            let mut p = Performance::new();
            p.set("sum", x.iter().sum());
            EvalOutcome::Ok(p)
        };
        match f.evaluate(&[1.0, 2.0]) {
            EvalOutcome::Ok(p) => assert_eq!(p.get("sum"), Some(3.0)),
            EvalOutcome::Failed(_) => panic!(),
        }
    }
}
