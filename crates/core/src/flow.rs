//! Block-level synthesis orchestration: spec translation, the MDAC reuse
//! cache across candidates *and resolutions*, and circuit-grounded OTA
//! synthesis with warm-started retargeting.
//!
//! The paper synthesized "eleven MDACs … to enumerate the seven 13-bit ADC
//! configurations": distinct `(m, input-accuracy)` pairs are synthesized
//! once and reused across candidates; retargeting a neighbouring spec
//! warm-starts from the nearest finished design. This module extends that
//! reuse across whole **resolution runs** through the persistent
//! [`BlockCache`], and executes the distinct blocks of a set on the
//! dependency-driven [`executor`](crate::executor) instead of barrier
//! waves.
//!
//! ## Scheduling pipeline
//!
//! 1. `plan_candidate_set` (internal) — serial encounter order, warm-start
//!    DAG from the keys alone (pure function of the candidate list);
//! 2. cache consultation — exact hits skip synthesis, near hits seed warm
//!    starts (policy-gated, see [`CachePolicy`](crate::cache::CachePolicy));
//! 3. [`executor::run_dag`](crate::executor::run_dag) — each block spawns
//!    the moment its warm source completes;
//! 4. deterministic merge (ascending reuse key) + cache commit.
//!
//! [`synthesize_candidate_set_serial`] remains the bit-identical serial
//! oracle, and [`synthesize_candidate_set_waves`] retains the PR-2
//! wave-barrier scheduler as a benchmarking baseline.

use crate::cache::{key_distance, BlockCache, CacheEntry, FlowCache, SharedCache};
use crate::enumerate::Candidate;
use crate::executor::{run_dag_outcomes, BlockFailure, BlockOutcome, ExecutorOptions, FailureKind};
use adc_mdac::opamp::{
    build_telescopic, build_two_stage, TelescopicHandles, TelescopicParams, TwoStageHandles,
    TwoStageParams,
};
use adc_mdac::power::{design_chain, OtaTopology, PowerModelParams, StageDesign};
use adc_mdac::specs::{AdcSpec, SPEC_NORM_DIGITS};
use adc_numerics::quant::Fingerprint;
use adc_numerics::Deadline;
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use adc_spice::SolverChoice;
use adc_synth::hybrid::{BenchSetup, BenchTuner, HybridOptions, HybridOtaEvaluator};
use adc_synth::{
    Constraint, ConstraintKind, DesignSpace, DesignVar, SynthConfig, SynthError, SynthResult,
    Synthesizer, WarmStart,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Version salt folded into every provenance fingerprint. Bump when the
/// synthesis pipeline changes in a way that invalidates cached results
/// (evaluator semantics, annealing schedule, …).
pub const FLOW_CACHE_VERSION: u64 = 1;

/// The hybrid-evaluator options every flow synthesis runs under — the
/// **single source of truth** shared by [`synthesize_ota_start`] (which
/// builds the evaluator from it) and `flow_config_fingerprint` (which
/// folds it into every cache provenance chain). Tuning the options here
/// automatically invalidates stale cache entries.
fn flow_hybrid_options() -> HybridOptions {
    HybridOptions::default()
}

/// Typed failure surface of the guarded flow — replaces ad-hoc panics on
/// the orchestration hot paths.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// An OTA template failed structural validation before synthesis.
    Template {
        /// Template that failed to materialize.
        template: TemplateKind,
        /// What went wrong.
        detail: String,
    },
    /// A block exhausted its wall-clock budget.
    Timeout {
        /// Reuse key of the block.
        key: (u32, u32),
        /// Failure payload.
        message: String,
    },
    /// A block failed all recovery attempts.
    BlockFailed {
        /// Reuse key of the block.
        key: (u32, u32),
        /// Failure payload.
        message: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Template { template, detail } => {
                write!(f, "{template:?} template invalid: {detail}")
            }
            FlowError::Timeout { key, message } => {
                write!(f, "block {key:?} timed out: {message}")
            }
            FlowError::BlockFailed { key, message } => {
                write!(f, "block {key:?} failed: {message}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Bounded retry ladder for a failed block. Attempt 0 runs the block as
/// scheduled; attempt 1 restarts cold with DC warm-start reuse disabled;
/// attempt 2 additionally forces the dense linear solver
/// ([`SolverChoice::Dense`]). Timeouts are final — no rung can buy back an
/// exhausted wall-clock budget, so the ladder stops immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum synthesis attempts per block (≥ 1; the full ladder is 3).
    pub max_attempts: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

/// Fault-tolerance knobs of the guarded flow. The defaults (no budgets,
/// three-rung ladder) leave zero-fault runs bit-identical to the unguarded
/// path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowOptions {
    /// Recovery ladder for failed blocks.
    pub retry: RetryPolicy,
    /// Wall-clock budget per block (all attempts combined); `None` is
    /// unlimited.
    pub block_budget: Option<Duration>,
    /// Wall-clock budget for the whole candidate-set run; `None` is
    /// unlimited.
    pub run_budget: Option<Duration>,
}

/// A block that produced no result: its reuse key plus the recorded
/// failure (kind, payload, attempts, elapsed time).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCasualty {
    /// Reuse key `(m, input_accuracy)` of the failed block.
    pub key: (u32, u32),
    /// What happened.
    pub failure: BlockFailure,
}

/// Collects the distinct MDAC block specs — `(m, input_accuracy)` pairs —
/// across a set of candidates (the paper's reuse set).
pub fn distinct_mdac_specs(spec: &AdcSpec, candidates: &[Candidate]) -> Vec<(u32, u32)> {
    let mut set = std::collections::BTreeSet::new();
    for c in candidates {
        for st in adc_mdac::specs::stage_specs(spec, c.front_bits()) {
            set.insert(st.reuse_key());
        }
    }
    set.into_iter().collect()
}

/// OTA template selected for a block (the gain-boosted class of the
/// analytic model maps onto the two-stage template at circuit level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Telescopic cascode.
    Telescopic,
    /// Two-stage Miller.
    TwoStage,
}

impl TemplateKind {
    /// Stable small-integer tag — the single source of truth for both the
    /// requirement fingerprints and the [`BlockCache`] bucket keys.
    pub(crate) fn tag(self) -> u8 {
        match self {
            TemplateKind::Telescopic => 0,
            TemplateKind::TwoStage => 1,
        }
    }
}

/// Requirements handed to the circuit-level OTA synthesis for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaRequirements {
    /// Minimum low-frequency gain (linear).
    pub a0_min: f64,
    /// Minimum unity-gain frequency with the stage load, Hz.
    pub unity_min: f64,
    /// Minimum phase margin, degrees.
    pub pm_min: f64,
    /// Load capacitance for the testbench, F.
    pub c_load: f64,
    /// Template implied by the analytic topology selection.
    pub template: TemplateKind,
}

impl OtaRequirements {
    /// Fingerprint on the **normalized-spec grid** (template + values
    /// quantized to [`SPEC_NORM_DIGITS`]): the [`BlockCache`] map key.
    /// Independent derivations of the same physical spec — e.g. the same
    /// `(m, input-accuracy)` block reached from two resolutions — collapse
    /// onto one key.
    pub fn normalized_fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(u64::from(self.template.tag()))
            .add_quantized(self.a0_min, SPEC_NORM_DIGITS)
            .add_quantized(self.unity_min, SPEC_NORM_DIGITS)
            .add_quantized(self.pm_min, SPEC_NORM_DIGITS)
            .add_quantized(self.c_load, SPEC_NORM_DIGITS)
            .finish()
    }

    /// Fingerprint over the **exact** requirement bits — the provenance
    /// component attesting that two synthesis runs saw bit-identical
    /// inputs.
    pub fn exact_fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(u64::from(self.template.tag()))
            .add_f64_exact(self.a0_min)
            .add_f64_exact(self.unity_min)
            .add_f64_exact(self.pm_min)
            .add_f64_exact(self.c_load)
            .finish()
    }
}

/// Derives circuit-level OTA requirements from an analytic stage design.
pub fn ota_requirements(design: &StageDesign, spec: &AdcSpec) -> OtaRequirements {
    let t_lin = spec.t_amplify() * (1.0 - 0.368);
    // Closed-loop settling: loop crossover β·ωu ≥ N_τ/t_lin →
    // fu ≥ N_τ/(2π·β·t_lin) with the amp loaded by C_Leff.
    let unity_min = design.n_tau / (2.0 * std::f64::consts::PI * design.caps.beta * t_lin);
    let template = match design.topology {
        OtaTopology::Telescopic | OtaTopology::FoldedCascode => TemplateKind::Telescopic,
        OtaTopology::GainBoostedTelescopic | OtaTopology::TwoStageMiller => TemplateKind::TwoStage,
    };
    OtaRequirements {
        a0_min: design.a0_required,
        unity_min,
        pm_min: 60.0,
        c_load: design.c_load_eff,
        template,
    }
}

/// How one scheduled block executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOrigin {
    /// Cold synthesis (full budget).
    Cold,
    /// Retargeted from another block of the same candidate set.
    Retargeted,
    /// Retargeted from a near-hit [`BlockCache`] entry (no in-run
    /// dependency — ready immediately).
    CacheSeeded,
    /// Exact cache hit: synthesis skipped, stored result returned.
    CacheHit,
}

/// One synthesized MDAC opamp.
#[derive(Debug, Clone)]
pub struct MdacBlock {
    /// Reuse key `(m, input_accuracy)`.
    pub key: (u32, u32),
    /// Requirements used.
    pub requirements: OtaRequirements,
    /// Synthesis result (sizing, performance, evaluation count).
    pub result: SynthResult,
    /// Whether this block was *planned* to warm-start from another block of
    /// the set (a pure function of the candidate keys — identical across
    /// cache modes and executors).
    pub retargeted: bool,
    /// How the block actually executed in this run.
    pub origin: BlockOrigin,
}

fn space_for(template: TemplateKind) -> DesignSpace {
    let bounds = match template {
        TemplateKind::Telescopic => TelescopicParams::bounds(),
        TemplateKind::TwoStage => TwoStageParams::bounds(),
    };
    DesignSpace::new(
        bounds
            .into_iter()
            .map(|b| {
                if b.log {
                    DesignVar::log(b.name, b.lo, b.hi)
                } else {
                    DesignVar::linear(b.name, b.lo, b.hi)
                }
            })
            .collect(),
    )
}

fn constraints_for(req: &OtaRequirements) -> Vec<Constraint> {
    vec![
        Constraint::new("a0", ConstraintKind::AtLeast, req.a0_min),
        Constraint::new("unity_freq", ConstraintKind::AtLeast, req.unity_min),
        Constraint::new("pm", ConstraintKind::AtLeast, req.pm_min),
        Constraint::new("saturated", ConstraintKind::AtLeast, 1.0),
    ]
}

/// Validates that a requirement set's OTA template materializes into a
/// resolvable testbench **before** any synthesis attempt runs — the typed
/// front door that makes the `resolve(..).expect(..)` calls inside the
/// per-candidate builder closure unreachable on the guarded path.
pub fn validate_template(process: &Process, req: &OtaRequirements) -> Result<(), FlowError> {
    let probe: Vec<f64> = match req.template {
        TemplateKind::Telescopic => TelescopicParams::bounds(),
        TemplateKind::TwoStage => TwoStageParams::bounds(),
    }
    .into_iter()
    .map(|b| {
        if b.log {
            (b.lo * b.hi).sqrt()
        } else {
            0.5 * (b.lo + b.hi)
        }
    })
    .collect();
    let resolved = match req.template {
        TemplateKind::Telescopic => {
            let tb = build_telescopic(process, &TelescopicParams::from_vec(&probe), req.c_load);
            TelescopicHandles::resolve(&tb.circuit).is_some()
        }
        TemplateKind::TwoStage => {
            let tb = build_two_stage(process, &TwoStageParams::from_vec(&probe), req.c_load);
            TwoStageHandles::resolve(&tb.circuit).is_some()
        }
    };
    if resolved {
        Ok(())
    } else {
        Err(FlowError::Template {
            template: req.template,
            detail: "testbench element handles did not resolve".to_string(),
        })
    }
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs
/// it under an explicit evaluator configuration and wall-clock deadline —
/// the fallible core every flow path funnels through.
fn run_ota_synthesis(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    start: WarmStart<'_>,
    opts: HybridOptions,
    deadline: Deadline,
) -> Result<SynthResult, SynthError> {
    let space = space_for(req.template);
    let synth = Synthesizer::new(space, constraints_for(req), "power");
    let proc = process.clone();
    let template = req.template;
    let c_load = req.c_load;
    // Builder runs once per evaluator; every later candidate retunes the
    // persistent testbench in place through the resolved element handles.
    // The expects below are unreachable when [`validate_template`] passed.
    let build = move |x: &[f64]| -> BenchSetup {
        match template {
            TemplateKind::Telescopic => {
                let tb = build_telescopic(&proc, &TelescopicParams::from_vec(x), c_load);
                let handles =
                    TelescopicHandles::resolve(&tb.circuit).expect("telescopic template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TelescopicParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
            TemplateKind::TwoStage => {
                let tb = build_two_stage(&proc, &TwoStageParams::from_vec(x), c_load);
                let handles =
                    TwoStageHandles::resolve(&tb.circuit).expect("two-stage template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TwoStageParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
        }
    };
    let evaluator = HybridOtaEvaluator::new(build, opts);
    synth.try_execute(&evaluator, cfg, start, deadline)
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs
/// it from the given [`WarmStart`] mode ([`WarmStart::Reuse`] returns the
/// cached result without touching the evaluator).
pub fn synthesize_ota_start(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    start: WarmStart<'_>,
) -> SynthResult {
    run_ota_synthesis(
        process,
        req,
        cfg,
        start,
        flow_hybrid_options(),
        Deadline::none(),
    )
    .unwrap_or_else(|e| panic!("unbudgeted OTA synthesis cannot time out: {e}"))
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs a
/// cold synthesis (or a retarget from `warm_start`).
pub fn synthesize_ota(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    warm_start: Option<&SynthResult>,
) -> SynthResult {
    let start = match warm_start {
        Some(prev) => WarmStart::Retarget(prev),
        None => WarmStart::Cold,
    };
    synthesize_ota_start(process, req, cfg, start)
}

/// One scheduled block of a candidate-set synthesis: its reuse key, the
/// derived requirements, and the serial-order index of the block whose
/// result warm-starts it (`None` → cold synthesis).
#[derive(Debug, Clone)]
struct PlannedBlock {
    key: (u32, u32),
    req: OtaRequirements,
    /// [`StageSpec::fingerprint`](adc_mdac::specs::StageSpec::fingerprint)
    /// of the block — the stage-level component of the cache key.
    stage_fp: u64,
    warm: Option<usize>,
}

/// Plans the distinct blocks of a candidate set in serial encounter order
/// and precomputes the warm-start DAG. The warm source of each block is a
/// pure function of the *keys* seen before it (nearest same-template block
/// in the paper's `16·Δm + ΔA` metric, ties resolved exactly as the serial
/// cache iteration does), so the schedule is independent of execution
/// order — the basis for the deterministic parallel run.
fn plan_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
) -> Vec<PlannedBlock> {
    let mut planned: Vec<PlannedBlock> = Vec::new();
    // key → planned index, iterated in ascending key order to mirror the
    // serial implementation's `BTreeMap::values` warm-start scan.
    let mut seen: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for cand in candidates {
        let chain = design_chain(spec, cand.front_bits(), params);
        for design in &chain {
            let key = design.spec.reuse_key();
            if seen.contains_key(&key) {
                continue;
            }
            let req = ota_requirements(design, spec);
            let warm = seen
                .iter()
                .filter(|(_, &idx)| planned[idx].req.template == req.template)
                .min_by_key(|(k, _)| key_distance(**k, key))
                .map(|(_, &idx)| idx);
            seen.insert(key, planned.len());
            planned.push(PlannedBlock {
                key,
                req,
                stage_fp: design.spec.fingerprint(),
                warm,
            });
        }
    }
    planned
}

/// Fingerprint of everything a synthesis run shares across blocks: the
/// flow version, the target process, the budget/seed config and the hybrid
/// evaluator options. Part of every block's provenance chain.
fn flow_config_fingerprint(process: &Process, cfg: &SynthConfig) -> u64 {
    Fingerprint::new()
        .add_u64(FLOW_CACHE_VERSION)
        .add_u64(process.fingerprint())
        .add_u64(cfg.fingerprint())
        .add_u64(flow_hybrid_options().fingerprint())
        .finish()
}

/// How a scheduled block starts (after cache consultation).
#[derive(Debug, Clone)]
enum BlockStart {
    Cold,
    /// Warm from the result of an earlier scheduled block.
    Retarget(usize),
    /// Warm from a cached near-hit result (dependency-free).
    SeedFromCache(SynthResult),
    /// Exact cache hit: the stored result is the answer.
    Hit(SynthResult),
}

/// A block after planning + cache consultation, ready for the executor.
#[derive(Debug, Clone)]
struct ScheduledBlock {
    key: (u32, u32),
    req: OtaRequirements,
    /// Planned in-set warm source (kept for the `retargeted` flag).
    planned_warm: bool,
    start: BlockStart,
    /// Provenance fingerprint of the result this block will carry.
    provenance: u64,
    /// Normalized-spec cache key.
    spec_fp: u64,
    /// Run-configuration fingerprint the result is computed under.
    config_fp: u64,
}

/// Per-run synthesis statistics (the cache keeps its own cumulative
/// counters; these describe one candidate-set run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Distinct blocks scheduled.
    pub blocks: usize,
    /// Blocks answered by an exact cache hit (no synthesis).
    pub cache_hits: usize,
    /// Blocks warm-started from a cached near hit.
    pub cache_seeded: usize,
    /// Cold (full-budget) syntheses executed.
    pub cold: usize,
    /// In-set retargets executed.
    pub retargeted: usize,
    /// Evaluator calls actually spent in this run (hits spend none).
    pub evaluations_spent: usize,
    /// Blocks that produced no result after the full recovery ladder.
    pub failed: usize,
    /// Blocks that succeeded only after at least one failed attempt.
    pub recovered: usize,
    /// Blocks demoted from a planned warm retarget to a cold start because
    /// their warm source failed.
    pub demoted: usize,
    /// Total synthesis attempts across all blocks (= `blocks` when nothing
    /// failed).
    pub attempts: usize,
    /// Wall-clock slack left on the run budget at completion, in
    /// milliseconds; `None` when no run budget was set (keeps
    /// [`RunStats`] `Eq`-comparable in deterministic tests).
    pub deadline_slack_ms: Option<i64>,
}

impl RunStats {
    /// Exact-hit fraction of this run's blocks (0.0 for an empty run).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.blocks as f64
        }
    }

    /// Accumulates another run's counters (multi-resolution totals).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.blocks += other.blocks;
        self.cache_hits += other.cache_hits;
        self.cache_seeded += other.cache_seeded;
        self.cold += other.cold;
        self.retargeted += other.retargeted;
        self.evaluations_spent += other.evaluations_spent;
        self.failed += other.failed;
        self.recovered += other.recovered;
        self.demoted += other.demoted;
        self.attempts += other.attempts;
        // Tightest slack observed across the accumulated runs.
        self.deadline_slack_ms = match (self.deadline_slack_ms, other.deadline_slack_ms) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Result of a cache-aware candidate-set synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisRun {
    /// Synthesized blocks in ascending reuse-key order (survivors only).
    pub blocks: Vec<MdacBlock>,
    /// What this run did (hits, seeds, evaluations, recoveries).
    pub stats: RunStats,
    /// Blocks that produced no result, in ascending reuse-key order.
    pub failures: Vec<BlockCasualty>,
}

/// Maps the first casualty of a degraded run to its typed [`FlowError`] —
/// the shared `into_result()` contract of [`SynthesisRun`] and
/// [`ResolutionRun`].
fn first_casualty_error(failures: &[BlockCasualty]) -> Option<FlowError> {
    failures.first().map(|c| {
        if c.failure.kind == FailureKind::Timeout {
            FlowError::Timeout {
                key: c.key,
                message: c.failure.message.clone(),
            }
        } else {
            FlowError::BlockFailed {
                key: c.key,
                message: c.failure.message.clone(),
            }
        }
    })
}

impl SynthesisRun {
    /// Converts a degraded run into a hard error on its first casualty —
    /// for callers that treat any failed block as fatal.
    pub fn into_result(self) -> Result<SynthesisRun, FlowError> {
        match first_casualty_error(&self.failures) {
            None => Ok(self),
            Some(e) => Err(e),
        }
    }
}

/// Plans a candidate set and consults the cache: exact hits become
/// [`BlockStart::Hit`], and under aggressive policy
/// ([`crate::cache::CachePolicy::Aggressive`]) a cached
/// near hit closer (in the `16·Δm + ΔA` metric) than the planned in-set
/// source — or available where no in-set source exists — seeds the warm
/// start instead. Single-threaded and deterministic given the cache state;
/// the executor only ever sees the finished schedule.
fn schedule_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    mut cache: Option<&mut dyn FlowCache>,
) -> Vec<ScheduledBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    let cfg_fp = flow_config_fingerprint(&spec.process, cfg);
    let mut scheduled: Vec<ScheduledBlock> = Vec::with_capacity(planned.len());
    for p in &planned {
        // Cache key: stage-level spec fingerprint ⊕ normalized requirement
        // grid — both components must match for two blocks to share a
        // bucket.
        let spec_fp = Fingerprint::new()
            .add_u64(p.stage_fp)
            .add_u64(p.req.normalized_fingerprint())
            .finish();
        // Provenance chain: shared run config ⊕ problem definition ⊕ exact
        // requirement bits ⊕ warm ancestry. Equal provenance attests that a
        // stored result was produced by a bit-identical computation.
        let problem_fp =
            Synthesizer::new(space_for(p.req.template), constraints_for(&p.req), "power")
                .problem_fingerprint();
        let chain = |warm_prov: u64| {
            Fingerprint::new()
                .add_u64(cfg_fp)
                .add_u64(problem_fp)
                .add_u64(p.req.exact_fingerprint())
                .add_u64(warm_prov)
                .finish()
        };
        // Start from the planned in-set decision.
        let mut start = match p.warm {
            Some(j) => BlockStart::Retarget(j),
            None => BlockStart::Cold,
        };
        let planned_warm_prov = match p.warm {
            Some(j) => scheduled[j].provenance,
            None => 0,
        };
        let mut provenance = chain(planned_warm_prov);
        if let Some(cache) = cache.as_deref_mut() {
            // Exact hit first: it supersedes any warm-source decision, so
            // the (whole-cache) near-hit scan only runs on a miss.
            if let Some(hit) = cache.lookup(p.req.template, spec_fp, &p.req, provenance, cfg_fp) {
                provenance = hit.provenance;
                start = BlockStart::Hit(hit.result);
            } else {
                // Near-hit seeding (aggressive policy only; `nearest`
                // returns an entry only if *strictly* closer in the block
                // metric than the planned in-set source — ties keep the
                // legacy behaviour).
                let planned_dist = p.warm.map(|j| key_distance(scheduled[j].key, p.key));
                if let Some(seed) = cache.nearest(p.req.template, p.key, planned_dist, cfg_fp) {
                    provenance = chain(seed.provenance);
                    start = BlockStart::SeedFromCache(seed.result);
                }
            }
        }
        scheduled.push(ScheduledBlock {
            key: p.key,
            req: p.req.clone(),
            planned_warm: p.warm.is_some(),
            start,
            provenance,
            spec_fp,
            config_fp: cfg_fp,
        });
    }
    scheduled
}

/// One block's execution record — the executor's result type on the
/// guarded path. Carries the synthesis result plus the fault-tolerance
/// bookkeeping [`finish_run`] folds into [`RunStats`].
#[derive(Debug, Clone)]
struct ExecutedBlock {
    result: SynthResult,
    /// Synthesis attempts consumed (1 = first try succeeded).
    attempts: usize,
    /// Planned warm retarget ran cold because its source failed.
    demoted: bool,
    /// Succeeded only after at least one failed attempt.
    recovered: bool,
    /// `true` only when the result is exactly what the schedule planned
    /// (first attempt, no demotion, warm ancestry intact) — the cache
    /// commit gate: a recovered or demoted result was produced off the
    /// planned provenance chain and must never be stored under it.
    as_planned: bool,
}

/// Runs the deterministic fault-injection registry under a block-keyed
/// scope (no-op without the `faults` feature).
fn with_block_scope<T>(scope: &str, f: impl FnOnce() -> T) -> T {
    #[cfg(feature = "faults")]
    {
        adc_numerics::faults::with_scope(scope, f)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = scope;
        f()
    }
}

/// Evaluator options for one rung of the recovery ladder (see
/// [`RetryPolicy`]): rung 0 is the stock flow configuration, rung 1
/// disables DC warm-start reuse, rung 2 additionally forces the dense
/// linear solver. The active deadline rides along into the DC options so
/// Newton loops observe the same budget as the annealer.
fn ladder_options(attempt: usize, deadline: Deadline) -> HybridOptions {
    let mut opts = flow_hybrid_options();
    opts.dc.deadline = deadline;
    if attempt >= 1 {
        opts.warm_start_local = false;
    }
    if attempt >= 2 {
        opts.solver = SolverChoice::Dense;
    }
    opts
}

/// Executes one scheduled block under failure isolation: template
/// validation up front, then the bounded retry ladder, each attempt behind
/// `catch_unwind` with the combined run/block deadline. Timeouts are
/// final; panics and typed errors escalate to the next rung.
fn run_block_guarded(
    process: &Process,
    b: &ScheduledBlock,
    cfg: &SynthConfig,
    warm: Option<&ExecutedBlock>,
    flow: &FlowOptions,
    run_deadline: Deadline,
) -> Result<ExecutedBlock, BlockFailure> {
    let started = Instant::now();
    let elapsed = |t0: Instant| t0.elapsed().as_secs_f64();
    // Exact hits skip synthesis entirely — nothing to guard.
    if let BlockStart::Hit(hit) = &b.start {
        return Ok(ExecutedBlock {
            result: hit.clone(),
            attempts: 1,
            demoted: false,
            recovered: false,
            as_planned: true,
        });
    }
    if let Err(e) = validate_template(process, &b.req) {
        return Err(BlockFailure::new(
            FailureKind::Error,
            e.to_string(),
            elapsed(started),
        ));
    }
    // Planned-warm bookkeeping: a missing warm source (its block failed)
    // demotes this block to a cold start; a tainted warm source (its block
    // recovered off-plan) still retargets but poisons `as_planned`.
    let demoted = matches!(b.start, BlockStart::Retarget(_)) && warm.is_none();
    let ancestry_ok = match &b.start {
        BlockStart::Retarget(_) => warm.is_some_and(|w| w.as_planned),
        _ => true,
    };
    let block_deadline = match flow.block_budget {
        Some(budget) => Deadline::within(budget),
        None => Deadline::none(),
    };
    let deadline = run_deadline.earliest(block_deadline);
    let max_attempts = flow.retry.max_attempts.max(1);
    let mut last: Option<BlockFailure> = None;
    for attempt in 0..max_attempts {
        if deadline.expired() {
            let mut f = BlockFailure::new(
                FailureKind::Timeout,
                "wall-clock budget exhausted before attempt",
                elapsed(started),
            );
            f.attempts = attempt.max(1);
            last = Some(f);
            break;
        }
        let start = if attempt == 0 && !demoted {
            match &b.start {
                BlockStart::Cold => WarmStart::Cold,
                BlockStart::Retarget(_) => {
                    WarmStart::Retarget(&warm.expect("demotion handled above").result)
                }
                BlockStart::SeedFromCache(seed) => WarmStart::Retarget(seed),
                BlockStart::Hit(_) => unreachable!("hits returned above"),
            }
        } else {
            WarmStart::Cold
        };
        let opts = ladder_options(attempt, deadline);
        let scope = format!("m{}a{}r{attempt}", b.key.0, b.key.1);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            with_block_scope(&scope, || {
                run_ota_synthesis(process, &b.req, cfg, start, opts, deadline)
            })
        }));
        match outcome {
            Ok(Ok(result)) => {
                return Ok(ExecutedBlock {
                    result,
                    attempts: attempt + 1,
                    demoted,
                    recovered: attempt > 0,
                    as_planned: attempt == 0 && !demoted && ancestry_ok,
                });
            }
            Ok(Err(SynthError::Timeout { evaluations })) => {
                // Budget exhausted is final: no rung can buy time back.
                let mut f = BlockFailure::new(
                    FailureKind::Timeout,
                    format!("synthesis budget expired after {evaluations} evaluations"),
                    elapsed(started),
                );
                f.attempts = attempt + 1;
                return Err(f);
            }
            Ok(Err(e @ SynthError::Failed(_))) => {
                let mut f = BlockFailure::new(FailureKind::Error, e.to_string(), elapsed(started));
                f.attempts = attempt + 1;
                last = Some(f);
            }
            Err(payload) => {
                let mut f = BlockFailure::new(
                    FailureKind::Panic,
                    crate::executor::panic_message(payload.as_ref()),
                    elapsed(started),
                );
                f.attempts = attempt + 1;
                last = Some(f);
            }
        }
    }
    Err(last.expect("ladder ran at least one attempt"))
}

/// Executes a schedule on the dependency-driven executor under failure
/// isolation: each block runs [`run_block_guarded`]; dependents of failed
/// blocks are demoted to cold starts instead of unwinding.
fn execute_schedule(
    process: &Process,
    scheduled: &[ScheduledBlock],
    cfg: &SynthConfig,
    exec: &ExecutorOptions,
    flow: &FlowOptions,
    run_deadline: Deadline,
) -> Vec<BlockOutcome<ExecutedBlock>> {
    let deps: Vec<Option<usize>> = scheduled
        .iter()
        .map(|b| match b.start {
            BlockStart::Retarget(j) => Some(j),
            _ => None,
        })
        .collect();
    run_dag_outcomes(&deps, exec, |i, warm: Option<&ExecutedBlock>| {
        run_block_guarded(process, &scheduled[i], cfg, warm, flow, run_deadline)
    })
}

/// Executes a schedule strictly serially in encounter order — the
/// determinism oracle for [`execute_schedule`], sharing the same guarded
/// block runner.
fn execute_schedule_serial(
    process: &Process,
    scheduled: &[ScheduledBlock],
    cfg: &SynthConfig,
    flow: &FlowOptions,
    run_deadline: Deadline,
) -> Vec<BlockOutcome<ExecutedBlock>> {
    let mut results: Vec<BlockOutcome<ExecutedBlock>> = Vec::with_capacity(scheduled.len());
    for b in scheduled {
        let warm: Option<ExecutedBlock> = match b.start {
            BlockStart::Retarget(j) => results[j].ok().cloned(),
            _ => None,
        };
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            run_block_guarded(process, b, cfg, warm.as_ref(), flow, run_deadline)
        })) {
            Ok(Ok(eb)) => BlockOutcome::Ok(eb),
            Ok(Err(f)) => BlockOutcome::Failed(f),
            Err(payload) => BlockOutcome::Failed(BlockFailure::new(
                FailureKind::Panic,
                crate::executor::panic_message(payload.as_ref()),
                0.0,
            )),
        };
        results.push(outcome);
    }
    results
}

/// Commits freshly synthesized blocks to the cache and assembles the
/// merged block list, casualty list and per-run statistics. Failed blocks
/// never reach the cache; neither do recovered or demoted results, whose
/// trajectories diverged from the provenance chain computed at schedule
/// time.
fn finish_run(
    scheduled: Vec<ScheduledBlock>,
    outcomes: Vec<BlockOutcome<ExecutedBlock>>,
    mut cache: Option<&mut dyn FlowCache>,
    deadline_slack_ms: Option<i64>,
) -> SynthesisRun {
    let mut stats = RunStats {
        blocks: scheduled.len(),
        deadline_slack_ms,
        ..RunStats::default()
    };
    let mut blocks: Vec<MdacBlock> = Vec::with_capacity(scheduled.len());
    let mut failures: Vec<BlockCasualty> = Vec::new();
    for (b, outcome) in scheduled.into_iter().zip(outcomes) {
        let executed = match outcome {
            BlockOutcome::Ok(eb) => eb,
            BlockOutcome::Failed(failure) => {
                stats.failed += 1;
                stats.attempts += failure.attempts;
                failures.push(BlockCasualty {
                    key: b.key,
                    failure,
                });
                continue;
            }
        };
        let origin = match &b.start {
            BlockStart::Cold => BlockOrigin::Cold,
            BlockStart::Retarget(_) => BlockOrigin::Retargeted,
            BlockStart::SeedFromCache(_) => BlockOrigin::CacheSeeded,
            BlockStart::Hit(_) => BlockOrigin::CacheHit,
        };
        match origin {
            BlockOrigin::Cold => stats.cold += 1,
            BlockOrigin::Retargeted => stats.retargeted += 1,
            BlockOrigin::CacheSeeded => stats.cache_seeded += 1,
            BlockOrigin::CacheHit => stats.cache_hits += 1,
        }
        stats.attempts += executed.attempts;
        stats.recovered += usize::from(executed.recovered);
        stats.demoted += usize::from(executed.demoted);
        if origin != BlockOrigin::CacheHit {
            stats.evaluations_spent += executed.result.evaluations;
            // Cache-commit gate: only results produced exactly as planned
            // carry the provenance computed at schedule time.
            if executed.as_planned {
                if let Some(cache) = cache.as_deref_mut() {
                    cache.insert(
                        b.req.template,
                        b.spec_fp,
                        CacheEntry {
                            key: b.key,
                            req: b.req.clone(),
                            result: executed.result.clone(),
                            provenance: b.provenance,
                            config: b.config_fp,
                        },
                    );
                }
            }
        }
        blocks.push(MdacBlock {
            key: b.key,
            requirements: b.req,
            result: executed.result,
            retargeted: b.planned_warm,
            origin,
        });
    }
    blocks.sort_by_key(|b| b.key);
    failures.sort_by_key(|c| c.key);
    SynthesisRun {
        blocks,
        stats,
        failures,
    }
}

/// How the scheduled blocks of a [`FlowRequest`] execute.
#[derive(Debug, Clone)]
pub enum ExecutionMode {
    /// Dependency-driven parallel executor (the production path): each
    /// block spawns the moment its warm source completes.
    Parallel(ExecutorOptions),
    /// Strictly serial encounter order — the determinism oracle; results
    /// are bit-identical to the parallel mode for any thread count.
    Serial,
}

impl Default for ExecutionMode {
    fn default() -> Self {
        ExecutionMode::Parallel(ExecutorOptions::default())
    }
}

/// One complete candidate-set synthesis request: the spec, the candidates
/// under consideration, the power-model and synthesis configurations, the
/// fault-tolerance [`FlowOptions`], and the [`ExecutionMode`] — the single
/// entry contract that replaced the six historical
/// `synthesize_candidate_set*` functions. Cache policy rides separately
/// (as the `cache` argument of [`run_flow`] / [`run_flow_shared`]) because
/// the cache outlives any one request.
#[derive(Debug, Clone)]
pub struct FlowRequest<'a> {
    /// Converter specification (resolution, rate, supply, process).
    pub spec: &'a AdcSpec,
    /// Candidate configurations whose distinct blocks are synthesized.
    pub candidates: &'a [Candidate],
    /// Analytic power-model parameters.
    pub params: &'a PowerModelParams,
    /// Synthesis budget/seed configuration.
    pub cfg: &'a SynthConfig,
    /// Fault-tolerance knobs (retry ladder, block/run budgets).
    pub options: FlowOptions,
    /// Parallel executor or the serial oracle.
    pub mode: ExecutionMode,
}

impl<'a> FlowRequest<'a> {
    /// A request with default [`FlowOptions`] and the parallel executor.
    pub fn new(
        spec: &'a AdcSpec,
        candidates: &'a [Candidate],
        params: &'a PowerModelParams,
        cfg: &'a SynthConfig,
    ) -> Self {
        FlowRequest {
            spec,
            candidates,
            params,
            cfg,
            options: FlowOptions::default(),
            mode: ExecutionMode::default(),
        }
    }

    /// Replaces the fault-tolerance options.
    #[must_use]
    pub fn with_options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs on the parallel executor with explicit options.
    #[must_use]
    pub fn with_executor(mut self, exec: ExecutorOptions) -> Self {
        self.mode = ExecutionMode::Parallel(exec);
        self
    }

    /// Runs strictly serially (the determinism oracle).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.mode = ExecutionMode::Serial;
        self
    }

    fn run_deadline(&self) -> Deadline {
        match self.options.run_budget {
            Some(budget) => Deadline::within(budget),
            None => Deadline::none(),
        }
    }
}

/// Runs one [`FlowRequest`] end to end — schedule (with cache
/// consultation), guarded execution in the requested mode, deterministic
/// merge + cache commit. Failed blocks are isolated, retried up the
/// recovery ladder, and reported as [`SynthesisRun::failures`] while the
/// survivors are ranked normally; with default [`FlowOptions`] and no
/// faults the result is bit-identical to the historical
/// `synthesize_candidate_set*` paths (enforced by a regression test).
pub fn run_flow(req: &FlowRequest<'_>, mut cache: Option<&mut BlockCache>) -> SynthesisRun {
    let run_deadline = req.run_deadline();
    let scheduled = schedule_candidate_set(
        req.spec,
        req.candidates,
        req.params,
        req.cfg,
        cache.as_deref_mut().map(|c| c as &mut dyn FlowCache),
    );
    let outcomes = match &req.mode {
        ExecutionMode::Parallel(exec) => execute_schedule(
            &req.spec.process,
            &scheduled,
            req.cfg,
            exec,
            &req.options,
            run_deadline,
        ),
        ExecutionMode::Serial => execute_schedule_serial(
            &req.spec.process,
            &scheduled,
            req.cfg,
            &req.options,
            run_deadline,
        ),
    };
    let slack = run_deadline
        .slack_seconds()
        .map(|s| (s * 1e3).round() as i64);
    finish_run(
        scheduled,
        outcomes,
        cache.map(|c| c as &mut dyn FlowCache),
        slack,
    )
}

/// [`run_flow`] against a **sharded** [`SharedCache`] — the resident
/// flow-server entry point. Each lookup during scheduling and each commit
/// afterwards locks exactly the one shard owning that block's
/// normalized-spec fingerprint; the synthesis itself runs unlocked, so
/// concurrent requests interleave their block executions (and their cache
/// consultations on distinct shards) while every shard stays consistent.
/// Poisoned shard locks are recovered (the cache's integrity fingerprints
/// already guard against torn entries). The result is deterministic given
/// the per-shard cache state observed at each lookup; under
/// [`crate::cache::CachePolicy::Reproducible`] it is bit-identical to a
/// cache-cold serial run for any shard or thread count.
pub fn run_flow_shared(req: &FlowRequest<'_>, cache: &SharedCache) -> SynthesisRun {
    let run_deadline = req.run_deadline();
    let mut handle: &SharedCache = cache;
    let scheduled = schedule_candidate_set(
        req.spec,
        req.candidates,
        req.params,
        req.cfg,
        Some(&mut handle as &mut dyn FlowCache),
    );
    let outcomes = match &req.mode {
        ExecutionMode::Parallel(exec) => execute_schedule(
            &req.spec.process,
            &scheduled,
            req.cfg,
            exec,
            &req.options,
            run_deadline,
        ),
        ExecutionMode::Serial => execute_schedule_serial(
            &req.spec.process,
            &scheduled,
            req.cfg,
            &req.options,
            run_deadline,
        ),
    };
    let slack = run_deadline
        .slack_seconds()
        .map(|s| (s * 1e3).round() as i64);
    let mut handle: &SharedCache = cache;
    finish_run(
        scheduled,
        outcomes,
        Some(&mut handle as &mut dyn FlowCache),
        slack,
    )
}

/// Synthesizes every distinct MDAC of a candidate set with reuse: exact
/// key hits are returned from the cache; otherwise the nearest same-template
/// block (by input accuracy) warm-starts a retargeting run.
#[deprecated(note = "use `run_flow` with a `FlowRequest`")]
pub fn synthesize_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    run_flow(&FlowRequest::new(spec, candidates, params, cfg), None).blocks
}

/// [`synthesize_candidate_set`] with an optional persistent [`BlockCache`]
/// and explicit executor options.
#[deprecated(note = "use `run_flow` with a `FlowRequest`")]
pub fn synthesize_candidate_set_with(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: Option<&mut BlockCache>,
    exec: &ExecutorOptions,
) -> SynthesisRun {
    run_flow(
        &FlowRequest::new(spec, candidates, params, cfg).with_executor(exec.clone()),
        cache,
    )
}

/// [`synthesize_candidate_set_with`] with explicit fault-tolerance options.
#[deprecated(note = "use `run_flow` with a `FlowRequest`")]
pub fn synthesize_candidate_set_guarded(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: Option<&mut BlockCache>,
    exec: &ExecutorOptions,
    flow: &FlowOptions,
) -> SynthesisRun {
    run_flow(
        &FlowRequest::new(spec, candidates, params, cfg)
            .with_executor(exec.clone())
            .with_options(*flow),
        cache,
    )
}

/// Sequential reference implementation of [`synthesize_candidate_set`].
#[deprecated(note = "use `run_flow` with a serial `FlowRequest`")]
pub fn synthesize_candidate_set_serial(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    run_flow(
        &FlowRequest::new(spec, candidates, params, cfg).serial(),
        None,
    )
    .blocks
}

/// [`synthesize_candidate_set_serial`] with an optional cache.
#[deprecated(note = "use `run_flow` with a serial `FlowRequest`")]
pub fn synthesize_candidate_set_serial_with(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: Option<&mut BlockCache>,
) -> SynthesisRun {
    run_flow(
        &FlowRequest::new(spec, candidates, params, cfg).serial(),
        cache,
    )
}

/// Serial oracle with explicit fault-tolerance options.
#[deprecated(note = "use `run_flow` with a serial `FlowRequest`")]
pub fn synthesize_candidate_set_serial_guarded(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: Option<&mut BlockCache>,
    flow: &FlowOptions,
) -> SynthesisRun {
    run_flow(
        &FlowRequest::new(spec, candidates, params, cfg)
            .serial()
            .with_options(*flow),
        cache,
    )
}

/// Candidates whose every required MDAC block survived a (possibly
/// degraded) synthesis run — the basis for ranking under casualties: a
/// candidate is rankable only if all of its stage reuse keys produced
/// results.
pub fn surviving_candidates(
    spec: &AdcSpec,
    candidates: &[Candidate],
    run: &SynthesisRun,
) -> Vec<Candidate> {
    let have: std::collections::BTreeSet<(u32, u32)> = run.blocks.iter().map(|b| b.key).collect();
    candidates
        .iter()
        .filter(|c| {
            adc_mdac::specs::stage_specs(spec, c.front_bits())
                .iter()
                .all(|st| have.contains(&st.reuse_key()))
        })
        .cloned()
        .collect()
}

/// The PR-2 wave-barrier scheduler, retained verbatim as the benchmarking
/// baseline for the dependency-driven executor (`bench_eval`'s
/// `multi_res_flow_waves` row): blocks whose warm sources finished run in
/// scoped-thread waves with a barrier between waves.
pub fn synthesize_candidate_set_waves(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    // Wave index: a block runs one wave after its warm source. (`warm` only
    // ever points at an earlier serial index, so one forward pass settles.)
    let mut wave = vec![0usize; planned.len()];
    for i in 0..planned.len() {
        if let Some(j) = planned[i].warm {
            wave[i] = wave[j] + 1;
        }
    }
    let max_wave = wave.iter().copied().max().unwrap_or(0);
    let mut results: Vec<Option<SynthResult>> = vec![None; planned.len()];
    for w in 0..=max_wave {
        let batch: Vec<(usize, SynthResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = planned
                .iter()
                .enumerate()
                .filter(|(i, _)| wave[*i] == w)
                .map(|(i, p)| {
                    let warm = p.warm.map(|j| {
                        results[j]
                            .as_ref()
                            .expect("warm source finished in an earlier wave")
                    });
                    scope.spawn(move || (i, synthesize_ota(&spec.process, &p.req, cfg, warm)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("MDAC synthesis panicked"))
                .collect()
        });
        for (i, r) in batch {
            results[i] = Some(r);
        }
    }
    let mut blocks: Vec<MdacBlock> = planned
        .into_iter()
        .zip(results)
        .map(|(p, r)| MdacBlock {
            key: p.key,
            requirements: p.req,
            result: r.expect("every planned block is synthesized"),
            retargeted: p.warm.is_some(),
            origin: if p.warm.is_some() {
                BlockOrigin::Retargeted
            } else {
                BlockOrigin::Cold
            },
        })
        .collect();
    blocks.sort_by_key(|b| b.key);
    blocks
}

/// One resolution's worth of a multi-resolution flow.
#[derive(Debug, Clone)]
pub struct ResolutionRun {
    /// Converter resolution K, bits.
    pub resolution: u32,
    /// Synthesized candidate-set blocks.
    pub blocks: Vec<MdacBlock>,
    /// Per-run statistics.
    pub stats: RunStats,
    /// Blocks that produced no result at this resolution.
    pub failures: Vec<BlockCasualty>,
    /// Wall-clock seconds this resolution took.
    pub wall_seconds: f64,
}

impl ResolutionRun {
    /// Converts a degraded resolution run into a hard error on its first
    /// casualty — the same typed-error contract as
    /// [`SynthesisRun::into_result`]. Replaces the historical behaviour
    /// where a poisoned run silently dropped blocks and downstream
    /// consumers panicked on the missing keys.
    pub fn into_result(self) -> Result<ResolutionRun, FlowError> {
        match first_casualty_error(&self.failures) {
            None => Ok(self),
            Some(e) => Err(e),
        }
    }
}

/// Runs candidate-set synthesis for each spec in order, sharing one
/// persistent [`BlockCache`] across resolutions — the cross-resolution
/// reuse ROADMAP item: later resolutions hit blocks the earlier ones
/// synthesized (exact hits skip synthesis; under
/// [`crate::cache::CachePolicy::Aggressive`], near hits turn would-be cold roots into
/// retargets).
///
/// # Errors
/// The first resolution whose run records a casualty aborts the sweep with
/// that block's typed [`FlowError`] (the [`ResolutionRun::into_result`]
/// contract). Callers that want degraded-but-ranked semantics drive
/// [`run_flow`] per resolution themselves and keep the failures.
pub fn synthesize_multi_resolution(
    specs: &[AdcSpec],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: &mut BlockCache,
    exec: &ExecutorOptions,
) -> Result<Vec<ResolutionRun>, FlowError> {
    specs
        .iter()
        .map(|spec| {
            let t0 = std::time::Instant::now();
            let candidates = crate::enumerate::enumerate_candidates(spec.resolution, 7);
            let run = run_flow(
                &FlowRequest::new(spec, &candidates, params, cfg).with_executor(exec.clone()),
                Some(cache),
            );
            ResolutionRun {
                resolution: spec.resolution,
                blocks: run.blocks,
                stats: run.stats,
                failures: run.failures,
                wall_seconds: t0.elapsed().as_secs_f64(),
            }
            .into_result()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use crate::enumerate::enumerate_candidates;

    #[test]
    fn distinct_specs_for_13_bit_are_about_eleven() {
        let spec = AdcSpec::date05(13);
        let cands = enumerate_candidates(13, 7);
        let keys = distinct_mdac_specs(&spec, &cands);
        // The paper reports eleven; our accuracy bookkeeping yields 12
        // distinct (m, A) pairs — documented in DESIGN.md.
        assert!(
            (11..=12).contains(&keys.len()),
            "expected ~11 distinct MDACs, got {}: {keys:?}",
            keys.len()
        );
        assert!(keys.contains(&(4, 13)));
        assert!(keys.contains(&(2, 8)));
    }

    #[test]
    fn requirements_scale_with_accuracy() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r1 = ota_requirements(&chain[0], &spec);
        let r3 = ota_requirements(&chain[2], &spec);
        assert!(r1.a0_min > r3.a0_min);
        assert!(r1.unity_min > r3.unity_min);
        assert!(r1.c_load > r3.c_load);
        assert_eq!(r3.template, TemplateKind::Telescopic);
        assert_eq!(r1.template, TemplateKind::TwoStage);
    }

    #[test]
    fn requirement_fingerprints_separate_normalization_from_exactness() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r = ota_requirements(&chain[2], &spec);
        // Last-ulp jitter collapses on the normalized grid but not in the
        // exact provenance fingerprint.
        let mut jittered = r.clone();
        jittered.a0_min *= 1.0 + 1e-14;
        assert_eq!(
            r.normalized_fingerprint(),
            jittered.normalized_fingerprint()
        );
        assert_ne!(r.exact_fingerprint(), jittered.exact_fingerprint());
        // A genuinely different spec separates on both.
        let other = ota_requirements(&chain[1], &spec);
        assert_ne!(r.normalized_fingerprint(), other.normalized_fingerprint());
    }

    /// Cross-resolution reuse premise: the (2, 8) last-front-stage block of
    /// the 13-bit 4-3-2 and the 11-bit 4-2 candidates derives bit-identical
    /// requirements — what makes the persistent cache hit across `flow`
    /// resolution runs.
    #[test]
    fn shared_blocks_across_resolutions_have_identical_requirements() {
        let params = PowerModelParams::calibrated();
        let s13 = AdcSpec::date05(13);
        let s11 = AdcSpec::date05(11);
        let c13 = design_chain(&s13, &[4, 3, 2], &params);
        let c11 = design_chain(&s11, &[4, 2], &params);
        let r13 = ota_requirements(&c13[2], &s13);
        let r11 = ota_requirements(&c11[1], &s11);
        assert_eq!(r13, r11);
        assert_eq!(r13.exact_fingerprint(), r11.exact_fingerprint());
    }

    /// Determinism regression: the executor-driven candidate-set synthesis
    /// must produce bit-identical results (sizing, cost, evaluation counts
    /// and ordering) to the serial reference for the 13-bit candidate set.
    #[test]
    fn parallel_candidate_set_matches_serial() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(13, 7);
        let cfg = SynthConfig {
            iterations: 12,
            nm_iterations: 3,
            seed: 3,
            ..Default::default()
        };
        let serial = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg).serial(),
            None,
        )
        .blocks;
        let parallel = run_flow(&FlowRequest::new(&spec, &cands, &params, &cfg), None).blocks;
        assert_eq!(serial.len(), parallel.len());
        assert!(serial.len() >= 11, "expected the paper's ~11 blocks");
        assert!(serial.iter().any(|b| b.retargeted));
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.retargeted, b.retargeted);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.result.best_x, b.result.best_x, "key {:?}", a.key);
            assert_eq!(a.result.best_cost, b.result.best_cost, "key {:?}", a.key);
            assert_eq!(
                a.result.evaluations, b.result.evaluations,
                "key {:?}",
                a.key
            );
            assert_eq!(a.result.feasible, b.result.feasible, "key {:?}", a.key);
        }
    }

    /// The retained wave-barrier baseline still agrees with the executor
    /// (same plan, different scheduling) — it exists purely as the
    /// benchmark baseline.
    #[test]
    fn wave_baseline_matches_executor() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 5,
            ..Default::default()
        };
        let waves = synthesize_candidate_set_waves(&spec, &cands, &params, &cfg);
        let exec = run_flow(&FlowRequest::new(&spec, &cands, &params, &cfg), None).blocks;
        assert_eq!(waves.len(), exec.len());
        for (a, b) in waves.iter().zip(exec.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
        }
    }

    /// A reproducible cache warmed by one run answers a repeat of the same
    /// run entirely from provenance-exact hits, bit-identically.
    #[test]
    fn reproducible_cache_replays_identical_run() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 7,
            ..Default::default()
        };
        let mut cache = BlockCache::new(CachePolicy::Reproducible);
        let req = FlowRequest::new(&spec, &cands, &params, &cfg);
        let first = run_flow(&req, Some(&mut cache));
        assert_eq!(first.stats.cache_hits, 0);
        assert!(cache.len() >= first.blocks.len());
        let second = run_flow(&req, Some(&mut cache));
        assert_eq!(
            second.stats.cache_hits, second.stats.blocks,
            "repeat run must be all hits: {:?}",
            second.stats
        );
        assert_eq!(second.stats.evaluations_spent, 0);
        for (a, b) in first.blocks.iter().zip(second.blocks.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
            assert_eq!(b.origin, BlockOrigin::CacheHit);
        }
    }

    /// A cache warmed under one synthesis config must never answer a run
    /// under a different config — hits and seeds are config-isolated even
    /// under the aggressive policy.
    #[test]
    fn cache_never_crosses_synthesis_configs() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg_a = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 7,
            ..Default::default()
        };
        let cfg_b = SynthConfig {
            iterations: 14,
            ..cfg_a.clone()
        };
        let mut cache = BlockCache::new(CachePolicy::Aggressive);
        run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg_a),
            Some(&mut cache),
        );
        let run_b = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg_b),
            Some(&mut cache),
        );
        assert_eq!(run_b.stats.cache_hits, 0, "{:?}", run_b.stats);
        assert_eq!(run_b.stats.cache_seeded, 0, "{:?}", run_b.stats);
        // And the isolated run is bit-identical to a cache-free one.
        let plain = run_flow(&FlowRequest::new(&spec, &cands, &params, &cfg_b), None).blocks;
        for (a, b) in run_b.blocks.iter().zip(plain.iter()) {
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
        }
    }

    /// Failure isolation bookkeeping: a failed block leaves no cache
    /// entry, is reported as a casualty, and removes the candidates that
    /// needed it from the survivor set; an off-plan (recovered/demoted)
    /// result is ranked but never committed under the planned provenance.
    #[test]
    fn failed_and_off_plan_blocks_never_reach_the_cache() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 1,
            ..Default::default()
        };
        let mut cache = BlockCache::new(CachePolicy::Reproducible);
        let scheduled = schedule_candidate_set(&spec, &cands, &params, &cfg, Some(&mut cache));
        let n = scheduled.len();
        assert!(n > 0);
        // Every block fails → no survivors, no cache entries, full report.
        let outcomes: Vec<BlockOutcome<ExecutedBlock>> = (0..n)
            .map(|i| {
                BlockOutcome::Failed(BlockFailure::new(
                    FailureKind::Error,
                    format!("fabricated failure {i}"),
                    0.0,
                ))
            })
            .collect();
        let run = finish_run(scheduled, outcomes, Some(&mut cache), None);
        assert!(run.blocks.is_empty());
        assert_eq!(run.failures.len(), n);
        assert_eq!(run.stats.failed, n);
        assert_eq!(cache.len(), 0, "failed blocks must never be cached");
        assert!(surviving_candidates(&spec, &cands, &run).is_empty());
        assert!(run.into_result().is_err());
        // Every block "recovers" off-plan → ranked survivors, still no
        // cache commits (the planned provenance no longer attests them).
        let scheduled = schedule_candidate_set(&spec, &cands, &params, &cfg, Some(&mut cache));
        let fake = SynthResult {
            best_x: vec![1.0],
            best_u: vec![0.5],
            best_perf: Default::default(),
            best_cost: 1.0,
            feasible: true,
            evaluations: 5,
        };
        let outcomes: Vec<BlockOutcome<ExecutedBlock>> = (0..n)
            .map(|_| {
                BlockOutcome::Ok(ExecutedBlock {
                    result: fake.clone(),
                    attempts: 2,
                    demoted: false,
                    recovered: true,
                    as_planned: false,
                })
            })
            .collect();
        let run = finish_run(scheduled, outcomes, Some(&mut cache), None);
        assert_eq!(run.blocks.len(), n);
        assert_eq!(run.stats.recovered, n);
        assert_eq!(run.stats.attempts, 2 * n);
        assert_eq!(cache.len(), 0, "off-plan results must never be cached");
        assert_eq!(surviving_candidates(&spec, &cands, &run).len(), cands.len());
    }

    /// The six deprecated entry points are thin wrappers over [`run_flow`]:
    /// every one of them must stay bit-identical to the equivalent
    /// [`FlowRequest`] — trajectories, origins, stats and all.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_are_bit_identical_to_run_flow() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 13,
            ..Default::default()
        };
        let exec = ExecutorOptions::default();
        let flow = FlowOptions::default();
        let assert_same = |a: &[MdacBlock], b: &[MdacBlock], label: &str| {
            assert_eq!(a.len(), b.len(), "{label}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.key, y.key, "{label}");
                assert_eq!(x.origin, y.origin, "{label}: key {:?}", x.key);
                assert_eq!(x.result.best_x, y.result.best_x, "{label}: key {:?}", x.key);
                assert_eq!(
                    x.result.evaluations, y.result.evaluations,
                    "{label}: key {:?}",
                    x.key
                );
            }
        };
        let base = run_flow(&FlowRequest::new(&spec, &cands, &params, &cfg), None);
        let base_serial = run_flow(
            &FlowRequest::new(&spec, &cands, &params, &cfg).serial(),
            None,
        );

        let w = synthesize_candidate_set(&spec, &cands, &params, &cfg);
        assert_same(&w, &base.blocks, "synthesize_candidate_set");
        let w = synthesize_candidate_set_with(&spec, &cands, &params, &cfg, None, &exec);
        assert_same(&w.blocks, &base.blocks, "synthesize_candidate_set_with");
        assert_eq!(w.stats, base.stats);
        let w = synthesize_candidate_set_guarded(&spec, &cands, &params, &cfg, None, &exec, &flow);
        assert_same(&w.blocks, &base.blocks, "synthesize_candidate_set_guarded");
        assert_eq!(w.stats, base.stats);
        let w = synthesize_candidate_set_serial(&spec, &cands, &params, &cfg);
        assert_same(&w, &base_serial.blocks, "synthesize_candidate_set_serial");
        let w = synthesize_candidate_set_serial_with(&spec, &cands, &params, &cfg, None);
        assert_same(
            &w.blocks,
            &base_serial.blocks,
            "synthesize_candidate_set_serial_with",
        );
        assert_eq!(w.stats, base_serial.stats);
        let w = synthesize_candidate_set_serial_guarded(&spec, &cands, &params, &cfg, None, &flow);
        assert_same(
            &w.blocks,
            &base_serial.blocks,
            "synthesize_candidate_set_serial_guarded",
        );
        assert_eq!(w.stats, base_serial.stats);
        // The serial oracle agrees with the parallel path (long-standing
        // contract, restated here across the consolidated entry).
        assert_same(&base.blocks, &base_serial.blocks, "parallel vs serial");
    }

    /// [`run_flow_shared`] (per-shard-locked schedule/commit, the server
    /// path) is bit-identical to [`run_flow`] with exclusive cache access
    /// — for **every** shard count — and a second shared run replays from
    /// provenance-exact hits regardless of how the entries are sharded.
    #[test]
    fn shared_cache_flow_matches_exclusive() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 17,
            ..Default::default()
        };
        let req = FlowRequest::new(&spec, &cands, &params, &cfg);
        let mut exclusive_cache = BlockCache::new(CachePolicy::Reproducible);
        let exclusive = run_flow(&req, Some(&mut exclusive_cache));
        for shards in [1, 3, 8] {
            let shared_cache = SharedCache::new(CachePolicy::Reproducible, shards);
            let shared = run_flow_shared(&req, &shared_cache);
            assert_eq!(exclusive.stats, shared.stats, "{shards} shards");
            for (a, b) in exclusive.blocks.iter().zip(shared.blocks.iter()) {
                assert_eq!(a.key, b.key, "{shards} shards");
                assert_eq!(a.result.best_x, b.result.best_x, "{shards} shards");
                assert_eq!(
                    a.result.evaluations, b.result.evaluations,
                    "{shards} shards"
                );
            }
            let replay = run_flow_shared(&req, &shared_cache);
            assert_eq!(
                replay.stats.cache_hits, replay.stats.blocks,
                "{shards} shards"
            );
            assert_eq!(replay.stats.evaluations_spent, 0, "{shards} shards");
            // The merged counters see both runs: every block looked up
            // twice, hit on the replay, inserted once.
            let merged = shared_cache.stats();
            assert_eq!(merged.lookups, 2 * replay.stats.blocks);
            assert_eq!(merged.hits, replay.stats.blocks);
            assert_eq!(merged.insertions, shared_cache.len());
        }
    }

    /// A degraded [`ResolutionRun`] converts to the typed error through the
    /// same `into_result()` contract as [`SynthesisRun`].
    #[test]
    fn resolution_run_into_result_is_typed() {
        let clean = ResolutionRun {
            resolution: 10,
            blocks: Vec::new(),
            stats: RunStats::default(),
            failures: Vec::new(),
            wall_seconds: 0.0,
        };
        assert!(clean.into_result().is_ok());
        let poisoned = ResolutionRun {
            resolution: 10,
            blocks: Vec::new(),
            stats: RunStats::default(),
            failures: vec![BlockCasualty {
                key: (3, 10),
                failure: BlockFailure::new(FailureKind::Timeout, "budget", 0.1),
            }],
            wall_seconds: 0.0,
        };
        match poisoned.into_result() {
            Err(FlowError::Timeout { key, .. }) => assert_eq!(key, (3, 10)),
            other => panic!("expected typed timeout, got {other:?}"),
        }
    }

    /// End-to-end circuit synthesis of the cheapest block (the 2-bit last
    /// stage of the 13-bit 4-3-2 candidate) with a small budget.
    #[test]
    fn synthesize_last_stage_ota_meets_spec() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let req = ota_requirements(&chain[2], &spec);
        let cfg = SynthConfig {
            iterations: 350,
            nm_iterations: 60,
            seed: 21,
            ..Default::default()
        };
        let run = synthesize_ota(&spec.process, &req, &cfg, None);
        // With a tiny budget we at least approach feasibility; the block
        // must have a real gain and a unity crossing.
        let a0 = run.best_perf.get("a0").unwrap_or(0.0);
        let fu = run.best_perf.get("unity_freq").unwrap_or(0.0);
        assert!(a0 > req.a0_min * 0.3, "a0 {a0} vs req {}", req.a0_min);
        assert!(fu > req.unity_min * 0.3, "fu {fu} vs req {}", req.unity_min);
    }
}
