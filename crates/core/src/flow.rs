//! Block-level synthesis orchestration: spec translation, the MDAC reuse
//! cache across candidates, and circuit-grounded OTA synthesis with
//! warm-started retargeting.
//!
//! The paper synthesized "eleven MDACs … to enumerate the seven 13-bit ADC
//! configurations": distinct `(m, input-accuracy)` pairs are synthesized
//! once and reused across candidates; retargeting a neighbouring spec
//! warm-starts from the nearest finished design.

use crate::enumerate::Candidate;
use adc_mdac::opamp::{build_telescopic, build_two_stage, TelescopicParams, TwoStageParams};
use adc_mdac::power::{design_chain, OtaTopology, PowerModelParams, StageDesign};
use adc_mdac::specs::AdcSpec;
use adc_spice::process::Process;
use adc_synth::hybrid::{BenchSetup, HybridOptions, HybridOtaEvaluator};
use adc_synth::{
    Constraint, ConstraintKind, DesignSpace, DesignVar, SynthConfig, SynthResult, Synthesizer,
};
use std::collections::BTreeMap;

/// Collects the distinct MDAC block specs — `(m, input_accuracy)` pairs —
/// across a set of candidates (the paper's reuse set).
pub fn distinct_mdac_specs(spec: &AdcSpec, candidates: &[Candidate]) -> Vec<(u32, u32)> {
    let mut set = std::collections::BTreeSet::new();
    for c in candidates {
        for st in adc_mdac::specs::stage_specs(spec, c.front_bits()) {
            set.insert(st.reuse_key());
        }
    }
    set.into_iter().collect()
}

/// OTA template selected for a block (the gain-boosted class of the
/// analytic model maps onto the two-stage template at circuit level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Telescopic cascode.
    Telescopic,
    /// Two-stage Miller.
    TwoStage,
}

/// Requirements handed to the circuit-level OTA synthesis for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaRequirements {
    /// Minimum low-frequency gain (linear).
    pub a0_min: f64,
    /// Minimum unity-gain frequency with the stage load, Hz.
    pub unity_min: f64,
    /// Minimum phase margin, degrees.
    pub pm_min: f64,
    /// Load capacitance for the testbench, F.
    pub c_load: f64,
    /// Template implied by the analytic topology selection.
    pub template: TemplateKind,
}

/// Derives circuit-level OTA requirements from an analytic stage design.
pub fn ota_requirements(design: &StageDesign, spec: &AdcSpec) -> OtaRequirements {
    let t_lin = spec.t_amplify() * (1.0 - 0.368);
    // Closed-loop settling: loop crossover β·ωu ≥ N_τ/t_lin →
    // fu ≥ N_τ/(2π·β·t_lin) with the amp loaded by C_Leff.
    let unity_min = design.n_tau / (2.0 * std::f64::consts::PI * design.caps.beta * t_lin);
    let template = match design.topology {
        OtaTopology::Telescopic | OtaTopology::FoldedCascode => TemplateKind::Telescopic,
        OtaTopology::GainBoostedTelescopic | OtaTopology::TwoStageMiller => TemplateKind::TwoStage,
    };
    OtaRequirements {
        a0_min: design.a0_required,
        unity_min,
        pm_min: 60.0,
        c_load: design.c_load_eff,
        template,
    }
}

/// One synthesized MDAC opamp.
#[derive(Debug, Clone)]
pub struct MdacBlock {
    /// Reuse key `(m, input_accuracy)`.
    pub key: (u32, u32),
    /// Requirements used.
    pub requirements: OtaRequirements,
    /// Synthesis result (sizing, performance, evaluation count).
    pub result: SynthResult,
    /// Whether this block was warm-started from a previous one.
    pub retargeted: bool,
}

fn space_for(template: TemplateKind) -> DesignSpace {
    let bounds = match template {
        TemplateKind::Telescopic => TelescopicParams::bounds(),
        TemplateKind::TwoStage => TwoStageParams::bounds(),
    };
    DesignSpace::new(
        bounds
            .into_iter()
            .map(|b| {
                if b.log {
                    DesignVar::log(b.name, b.lo, b.hi)
                } else {
                    DesignVar::linear(b.name, b.lo, b.hi)
                }
            })
            .collect(),
    )
}

fn constraints_for(req: &OtaRequirements) -> Vec<Constraint> {
    vec![
        Constraint::new("a0", ConstraintKind::AtLeast, req.a0_min),
        Constraint::new("unity_freq", ConstraintKind::AtLeast, req.unity_min),
        Constraint::new("pm", ConstraintKind::AtLeast, req.pm_min),
        Constraint::new("saturated", ConstraintKind::AtLeast, 1.0),
    ]
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs a
/// cold synthesis (or a retarget from `warm_start`).
pub fn synthesize_ota(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    warm_start: Option<&SynthResult>,
) -> SynthResult {
    let space = space_for(req.template);
    let synth = Synthesizer::new(space, constraints_for(req), "power");
    let proc = process.clone();
    let template = req.template;
    let c_load = req.c_load;
    let build = move |x: &[f64]| -> BenchSetup {
        let tb = match template {
            TemplateKind::Telescopic => {
                build_telescopic(&proc, &TelescopicParams::from_vec(x), c_load)
            }
            TemplateKind::TwoStage => build_two_stage(&proc, &TwoStageParams::from_vec(x), c_load),
        };
        BenchSetup {
            circuit: tb.circuit,
            output: tb.output,
            supply: tb.supply,
            devices: tb.devices,
        }
    };
    let evaluator = HybridOtaEvaluator::new(build, HybridOptions::default());
    match warm_start {
        Some(prev) => synth.retarget(&evaluator, prev, cfg),
        None => synth.synthesize(&evaluator, cfg),
    }
}

/// Synthesizes every distinct MDAC of a candidate set with reuse: exact
/// key hits are returned from the cache; otherwise the nearest same-template
/// block (by input accuracy) warm-starts a retargeting run.
pub fn synthesize_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    let mut cache: BTreeMap<(u32, u32), MdacBlock> = BTreeMap::new();
    for cand in candidates {
        let chain = design_chain(spec, cand.front_bits(), params);
        for design in &chain {
            let key = design.spec.reuse_key();
            if cache.contains_key(&key) {
                continue;
            }
            let req = ota_requirements(design, spec);
            // Nearest finished block with the same template → warm start.
            let warm = cache
                .values()
                .filter(|b| b.requirements.template == req.template)
                .min_by_key(|b| {
                    (b.key.0 as i64 - key.0 as i64).abs() * 16
                        + (b.key.1 as i64 - key.1 as i64).abs()
                })
                .map(|b| b.result.clone());
            let retargeted = warm.is_some();
            let result = synthesize_ota(&spec.process, &req, cfg, warm.as_ref());
            cache.insert(
                key,
                MdacBlock {
                    key,
                    requirements: req,
                    result,
                    retargeted,
                },
            );
        }
    }
    cache.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_candidates;

    #[test]
    fn distinct_specs_for_13_bit_are_about_eleven() {
        let spec = AdcSpec::date05(13);
        let cands = enumerate_candidates(13, 7);
        let keys = distinct_mdac_specs(&spec, &cands);
        // The paper reports eleven; our accuracy bookkeeping yields 12
        // distinct (m, A) pairs — documented in DESIGN.md.
        assert!(
            (11..=12).contains(&keys.len()),
            "expected ~11 distinct MDACs, got {}: {keys:?}",
            keys.len()
        );
        assert!(keys.contains(&(4, 13)));
        assert!(keys.contains(&(2, 8)));
    }

    #[test]
    fn requirements_scale_with_accuracy() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r1 = ota_requirements(&chain[0], &spec);
        let r3 = ota_requirements(&chain[2], &spec);
        assert!(r1.a0_min > r3.a0_min);
        assert!(r1.unity_min > r3.unity_min);
        assert!(r1.c_load > r3.c_load);
        assert_eq!(r3.template, TemplateKind::Telescopic);
        assert_eq!(r1.template, TemplateKind::TwoStage);
    }

    /// End-to-end circuit synthesis of the cheapest block (the 2-bit last
    /// stage of the 13-bit 4-3-2 candidate) with a small budget.
    #[test]
    fn synthesize_last_stage_ota_meets_spec() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let req = ota_requirements(&chain[2], &spec);
        let cfg = SynthConfig {
            iterations: 350,
            nm_iterations: 60,
            seed: 21,
            ..Default::default()
        };
        let run = synthesize_ota(&spec.process, &req, &cfg, None);
        // With a tiny budget we at least approach feasibility; the block
        // must have a real gain and a unity crossing.
        let a0 = run.best_perf.get("a0").unwrap_or(0.0);
        let fu = run.best_perf.get("unity_freq").unwrap_or(0.0);
        assert!(a0 > req.a0_min * 0.3, "a0 {a0} vs req {}", req.a0_min);
        assert!(fu > req.unity_min * 0.3, "fu {fu} vs req {}", req.unity_min);
    }
}
