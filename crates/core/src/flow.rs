//! Block-level synthesis orchestration: spec translation, the MDAC reuse
//! cache across candidates *and resolutions*, and circuit-grounded OTA
//! synthesis with warm-started retargeting.
//!
//! The paper synthesized "eleven MDACs … to enumerate the seven 13-bit ADC
//! configurations": distinct `(m, input-accuracy)` pairs are synthesized
//! once and reused across candidates; retargeting a neighbouring spec
//! warm-starts from the nearest finished design. This module extends that
//! reuse across whole **resolution runs** through the persistent
//! [`BlockCache`], and executes the distinct blocks of a set on the
//! dependency-driven [`executor`](crate::executor) instead of barrier
//! waves.
//!
//! ## Scheduling pipeline
//!
//! 1. `plan_candidate_set` (internal) — serial encounter order, warm-start
//!    DAG from the keys alone (pure function of the candidate list);
//! 2. cache consultation — exact hits skip synthesis, near hits seed warm
//!    starts (policy-gated, see [`CachePolicy`](crate::cache::CachePolicy));
//! 3. [`executor::run_dag`](crate::executor::run_dag) — each block spawns
//!    the moment its warm source completes;
//! 4. deterministic merge (ascending reuse key) + cache commit.
//!
//! [`synthesize_candidate_set_serial`] remains the bit-identical serial
//! oracle, and [`synthesize_candidate_set_waves`] retains the PR-2
//! wave-barrier scheduler as a benchmarking baseline.

use crate::cache::{key_distance, BlockCache, CacheEntry};
use crate::enumerate::Candidate;
use crate::executor::{run_dag, ExecutorOptions};
use adc_mdac::opamp::{
    build_telescopic, build_two_stage, TelescopicHandles, TelescopicParams, TwoStageHandles,
    TwoStageParams,
};
use adc_mdac::power::{design_chain, OtaTopology, PowerModelParams, StageDesign};
use adc_mdac::specs::{AdcSpec, SPEC_NORM_DIGITS};
use adc_numerics::quant::Fingerprint;
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use adc_synth::hybrid::{BenchSetup, BenchTuner, HybridOptions, HybridOtaEvaluator};
use adc_synth::{
    Constraint, ConstraintKind, DesignSpace, DesignVar, SynthConfig, SynthResult, Synthesizer,
    WarmStart,
};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Version salt folded into every provenance fingerprint. Bump when the
/// synthesis pipeline changes in a way that invalidates cached results
/// (evaluator semantics, annealing schedule, …).
pub const FLOW_CACHE_VERSION: u64 = 1;

/// The hybrid-evaluator options every flow synthesis runs under — the
/// **single source of truth** shared by [`synthesize_ota_start`] (which
/// builds the evaluator from it) and `flow_config_fingerprint` (which
/// folds it into every cache provenance chain). Tuning the options here
/// automatically invalidates stale cache entries.
fn flow_hybrid_options() -> HybridOptions {
    HybridOptions::default()
}

/// Collects the distinct MDAC block specs — `(m, input_accuracy)` pairs —
/// across a set of candidates (the paper's reuse set).
pub fn distinct_mdac_specs(spec: &AdcSpec, candidates: &[Candidate]) -> Vec<(u32, u32)> {
    let mut set = std::collections::BTreeSet::new();
    for c in candidates {
        for st in adc_mdac::specs::stage_specs(spec, c.front_bits()) {
            set.insert(st.reuse_key());
        }
    }
    set.into_iter().collect()
}

/// OTA template selected for a block (the gain-boosted class of the
/// analytic model maps onto the two-stage template at circuit level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Telescopic cascode.
    Telescopic,
    /// Two-stage Miller.
    TwoStage,
}

impl TemplateKind {
    /// Stable small-integer tag — the single source of truth for both the
    /// requirement fingerprints and the [`BlockCache`] bucket keys.
    pub(crate) fn tag(self) -> u8 {
        match self {
            TemplateKind::Telescopic => 0,
            TemplateKind::TwoStage => 1,
        }
    }
}

/// Requirements handed to the circuit-level OTA synthesis for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaRequirements {
    /// Minimum low-frequency gain (linear).
    pub a0_min: f64,
    /// Minimum unity-gain frequency with the stage load, Hz.
    pub unity_min: f64,
    /// Minimum phase margin, degrees.
    pub pm_min: f64,
    /// Load capacitance for the testbench, F.
    pub c_load: f64,
    /// Template implied by the analytic topology selection.
    pub template: TemplateKind,
}

impl OtaRequirements {
    /// Fingerprint on the **normalized-spec grid** (template + values
    /// quantized to [`SPEC_NORM_DIGITS`]): the [`BlockCache`] map key.
    /// Independent derivations of the same physical spec — e.g. the same
    /// `(m, input-accuracy)` block reached from two resolutions — collapse
    /// onto one key.
    pub fn normalized_fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(u64::from(self.template.tag()))
            .add_quantized(self.a0_min, SPEC_NORM_DIGITS)
            .add_quantized(self.unity_min, SPEC_NORM_DIGITS)
            .add_quantized(self.pm_min, SPEC_NORM_DIGITS)
            .add_quantized(self.c_load, SPEC_NORM_DIGITS)
            .finish()
    }

    /// Fingerprint over the **exact** requirement bits — the provenance
    /// component attesting that two synthesis runs saw bit-identical
    /// inputs.
    pub fn exact_fingerprint(&self) -> u64 {
        Fingerprint::new()
            .add_u64(u64::from(self.template.tag()))
            .add_f64_exact(self.a0_min)
            .add_f64_exact(self.unity_min)
            .add_f64_exact(self.pm_min)
            .add_f64_exact(self.c_load)
            .finish()
    }
}

/// Derives circuit-level OTA requirements from an analytic stage design.
pub fn ota_requirements(design: &StageDesign, spec: &AdcSpec) -> OtaRequirements {
    let t_lin = spec.t_amplify() * (1.0 - 0.368);
    // Closed-loop settling: loop crossover β·ωu ≥ N_τ/t_lin →
    // fu ≥ N_τ/(2π·β·t_lin) with the amp loaded by C_Leff.
    let unity_min = design.n_tau / (2.0 * std::f64::consts::PI * design.caps.beta * t_lin);
    let template = match design.topology {
        OtaTopology::Telescopic | OtaTopology::FoldedCascode => TemplateKind::Telescopic,
        OtaTopology::GainBoostedTelescopic | OtaTopology::TwoStageMiller => TemplateKind::TwoStage,
    };
    OtaRequirements {
        a0_min: design.a0_required,
        unity_min,
        pm_min: 60.0,
        c_load: design.c_load_eff,
        template,
    }
}

/// How one scheduled block executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOrigin {
    /// Cold synthesis (full budget).
    Cold,
    /// Retargeted from another block of the same candidate set.
    Retargeted,
    /// Retargeted from a near-hit [`BlockCache`] entry (no in-run
    /// dependency — ready immediately).
    CacheSeeded,
    /// Exact cache hit: synthesis skipped, stored result returned.
    CacheHit,
}

/// One synthesized MDAC opamp.
#[derive(Debug, Clone)]
pub struct MdacBlock {
    /// Reuse key `(m, input_accuracy)`.
    pub key: (u32, u32),
    /// Requirements used.
    pub requirements: OtaRequirements,
    /// Synthesis result (sizing, performance, evaluation count).
    pub result: SynthResult,
    /// Whether this block was *planned* to warm-start from another block of
    /// the set (a pure function of the candidate keys — identical across
    /// cache modes and executors).
    pub retargeted: bool,
    /// How the block actually executed in this run.
    pub origin: BlockOrigin,
}

fn space_for(template: TemplateKind) -> DesignSpace {
    let bounds = match template {
        TemplateKind::Telescopic => TelescopicParams::bounds(),
        TemplateKind::TwoStage => TwoStageParams::bounds(),
    };
    DesignSpace::new(
        bounds
            .into_iter()
            .map(|b| {
                if b.log {
                    DesignVar::log(b.name, b.lo, b.hi)
                } else {
                    DesignVar::linear(b.name, b.lo, b.hi)
                }
            })
            .collect(),
    )
}

fn constraints_for(req: &OtaRequirements) -> Vec<Constraint> {
    vec![
        Constraint::new("a0", ConstraintKind::AtLeast, req.a0_min),
        Constraint::new("unity_freq", ConstraintKind::AtLeast, req.unity_min),
        Constraint::new("pm", ConstraintKind::AtLeast, req.pm_min),
        Constraint::new("saturated", ConstraintKind::AtLeast, 1.0),
    ]
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs
/// it from the given [`WarmStart`] mode ([`WarmStart::Reuse`] returns the
/// cached result without touching the evaluator).
pub fn synthesize_ota_start(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    start: WarmStart<'_>,
) -> SynthResult {
    let space = space_for(req.template);
    let synth = Synthesizer::new(space, constraints_for(req), "power");
    let proc = process.clone();
    let template = req.template;
    let c_load = req.c_load;
    // Builder runs once per evaluator; every later candidate retunes the
    // persistent testbench in place through the resolved element handles.
    let build = move |x: &[f64]| -> BenchSetup {
        match template {
            TemplateKind::Telescopic => {
                let tb = build_telescopic(&proc, &TelescopicParams::from_vec(x), c_load);
                let handles =
                    TelescopicHandles::resolve(&tb.circuit).expect("telescopic template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TelescopicParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
            TemplateKind::TwoStage => {
                let tb = build_two_stage(&proc, &TwoStageParams::from_vec(x), c_load);
                let handles =
                    TwoStageHandles::resolve(&tb.circuit).expect("two-stage template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TwoStageParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
        }
    };
    let evaluator = HybridOtaEvaluator::new(build, flow_hybrid_options());
    synth.execute(&evaluator, cfg, start)
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs a
/// cold synthesis (or a retarget from `warm_start`).
pub fn synthesize_ota(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    warm_start: Option<&SynthResult>,
) -> SynthResult {
    let start = match warm_start {
        Some(prev) => WarmStart::Retarget(prev),
        None => WarmStart::Cold,
    };
    synthesize_ota_start(process, req, cfg, start)
}

/// One scheduled block of a candidate-set synthesis: its reuse key, the
/// derived requirements, and the serial-order index of the block whose
/// result warm-starts it (`None` → cold synthesis).
#[derive(Debug, Clone)]
struct PlannedBlock {
    key: (u32, u32),
    req: OtaRequirements,
    /// [`StageSpec::fingerprint`](adc_mdac::specs::StageSpec::fingerprint)
    /// of the block — the stage-level component of the cache key.
    stage_fp: u64,
    warm: Option<usize>,
}

/// Plans the distinct blocks of a candidate set in serial encounter order
/// and precomputes the warm-start DAG. The warm source of each block is a
/// pure function of the *keys* seen before it (nearest same-template block
/// in the paper's `16·Δm + ΔA` metric, ties resolved exactly as the serial
/// cache iteration does), so the schedule is independent of execution
/// order — the basis for the deterministic parallel run.
fn plan_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
) -> Vec<PlannedBlock> {
    let mut planned: Vec<PlannedBlock> = Vec::new();
    // key → planned index, iterated in ascending key order to mirror the
    // serial implementation's `BTreeMap::values` warm-start scan.
    let mut seen: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for cand in candidates {
        let chain = design_chain(spec, cand.front_bits(), params);
        for design in &chain {
            let key = design.spec.reuse_key();
            if seen.contains_key(&key) {
                continue;
            }
            let req = ota_requirements(design, spec);
            let warm = seen
                .iter()
                .filter(|(_, &idx)| planned[idx].req.template == req.template)
                .min_by_key(|(k, _)| key_distance(**k, key))
                .map(|(_, &idx)| idx);
            seen.insert(key, planned.len());
            planned.push(PlannedBlock {
                key,
                req,
                stage_fp: design.spec.fingerprint(),
                warm,
            });
        }
    }
    planned
}

/// Fingerprint of everything a synthesis run shares across blocks: the
/// flow version, the target process, the budget/seed config and the hybrid
/// evaluator options. Part of every block's provenance chain.
fn flow_config_fingerprint(process: &Process, cfg: &SynthConfig) -> u64 {
    Fingerprint::new()
        .add_u64(FLOW_CACHE_VERSION)
        .add_u64(process.fingerprint())
        .add_u64(cfg.fingerprint())
        .add_u64(flow_hybrid_options().fingerprint())
        .finish()
}

/// How a scheduled block starts (after cache consultation).
#[derive(Debug, Clone)]
enum BlockStart {
    Cold,
    /// Warm from the result of an earlier scheduled block.
    Retarget(usize),
    /// Warm from a cached near-hit result (dependency-free).
    SeedFromCache(SynthResult),
    /// Exact cache hit: the stored result is the answer.
    Hit(SynthResult),
}

/// A block after planning + cache consultation, ready for the executor.
#[derive(Debug, Clone)]
struct ScheduledBlock {
    key: (u32, u32),
    req: OtaRequirements,
    /// Planned in-set warm source (kept for the `retargeted` flag).
    planned_warm: bool,
    start: BlockStart,
    /// Provenance fingerprint of the result this block will carry.
    provenance: u64,
    /// Normalized-spec cache key.
    spec_fp: u64,
    /// Run-configuration fingerprint the result is computed under.
    config_fp: u64,
}

/// Per-run synthesis statistics (the cache keeps its own cumulative
/// counters; these describe one candidate-set run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Distinct blocks scheduled.
    pub blocks: usize,
    /// Blocks answered by an exact cache hit (no synthesis).
    pub cache_hits: usize,
    /// Blocks warm-started from a cached near hit.
    pub cache_seeded: usize,
    /// Cold (full-budget) syntheses executed.
    pub cold: usize,
    /// In-set retargets executed.
    pub retargeted: usize,
    /// Evaluator calls actually spent in this run (hits spend none).
    pub evaluations_spent: usize,
}

impl RunStats {
    /// Exact-hit fraction of this run's blocks (0.0 for an empty run).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.blocks as f64
        }
    }

    /// Accumulates another run's counters (multi-resolution totals).
    pub fn accumulate(&mut self, other: &RunStats) {
        self.blocks += other.blocks;
        self.cache_hits += other.cache_hits;
        self.cache_seeded += other.cache_seeded;
        self.cold += other.cold;
        self.retargeted += other.retargeted;
        self.evaluations_spent += other.evaluations_spent;
    }
}

/// Result of a cache-aware candidate-set synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisRun {
    /// Synthesized blocks in ascending reuse-key order.
    pub blocks: Vec<MdacBlock>,
    /// What this run did (hits, seeds, evaluations).
    pub stats: RunStats,
}

/// Plans a candidate set and consults the cache: exact hits become
/// [`BlockStart::Hit`], and under aggressive policy
/// ([`crate::cache::CachePolicy::Aggressive`]) a cached
/// near hit closer (in the `16·Δm + ΔA` metric) than the planned in-set
/// source — or available where no in-set source exists — seeds the warm
/// start instead. Single-threaded and deterministic given the cache state;
/// the executor only ever sees the finished schedule.
fn schedule_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    mut cache: Option<&mut BlockCache>,
) -> Vec<ScheduledBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    let cfg_fp = flow_config_fingerprint(&spec.process, cfg);
    let mut scheduled: Vec<ScheduledBlock> = Vec::with_capacity(planned.len());
    for p in &planned {
        // Cache key: stage-level spec fingerprint ⊕ normalized requirement
        // grid — both components must match for two blocks to share a
        // bucket.
        let spec_fp = Fingerprint::new()
            .add_u64(p.stage_fp)
            .add_u64(p.req.normalized_fingerprint())
            .finish();
        // Provenance chain: shared run config ⊕ problem definition ⊕ exact
        // requirement bits ⊕ warm ancestry. Equal provenance attests that a
        // stored result was produced by a bit-identical computation.
        let problem_fp =
            Synthesizer::new(space_for(p.req.template), constraints_for(&p.req), "power")
                .problem_fingerprint();
        let chain = |warm_prov: u64| {
            Fingerprint::new()
                .add_u64(cfg_fp)
                .add_u64(problem_fp)
                .add_u64(p.req.exact_fingerprint())
                .add_u64(warm_prov)
                .finish()
        };
        // Start from the planned in-set decision.
        let mut start = match p.warm {
            Some(j) => BlockStart::Retarget(j),
            None => BlockStart::Cold,
        };
        let planned_warm_prov = match p.warm {
            Some(j) => scheduled[j].provenance,
            None => 0,
        };
        let mut provenance = chain(planned_warm_prov);
        if let Some(cache) = cache.as_deref_mut() {
            // Exact hit first: it supersedes any warm-source decision, so
            // the (whole-cache) near-hit scan only runs on a miss.
            if let Some(hit) = cache.lookup(p.req.template, spec_fp, &p.req, provenance, cfg_fp) {
                provenance = hit.provenance;
                start = BlockStart::Hit(hit.result);
            } else {
                // Near-hit seeding (aggressive policy only; `nearest`
                // returns an entry only if *strictly* closer in the block
                // metric than the planned in-set source — ties keep the
                // legacy behaviour).
                let planned_dist = p.warm.map(|j| key_distance(scheduled[j].key, p.key));
                if let Some(seed) = cache.nearest(p.req.template, p.key, planned_dist, cfg_fp) {
                    provenance = chain(seed.provenance);
                    start = BlockStart::SeedFromCache(seed.result);
                }
            }
        }
        scheduled.push(ScheduledBlock {
            key: p.key,
            req: p.req.clone(),
            planned_warm: p.warm.is_some(),
            start,
            provenance,
            spec_fp,
            config_fp: cfg_fp,
        });
    }
    scheduled
}

/// Executes a schedule on the dependency-driven executor and merges the
/// results in ascending key order.
fn execute_schedule(
    process: &Process,
    scheduled: &[ScheduledBlock],
    cfg: &SynthConfig,
    exec: &ExecutorOptions,
) -> Vec<SynthResult> {
    let deps: Vec<Option<usize>> = scheduled
        .iter()
        .map(|b| match b.start {
            BlockStart::Retarget(j) => Some(j),
            _ => None,
        })
        .collect();
    run_dag(&deps, exec, |i, warm: Option<&SynthResult>| {
        let b = &scheduled[i];
        let start = match &b.start {
            BlockStart::Cold => WarmStart::Cold,
            BlockStart::Retarget(_) => {
                WarmStart::Retarget(warm.expect("executor delivered the warm source"))
            }
            BlockStart::SeedFromCache(seed) => WarmStart::Retarget(seed),
            BlockStart::Hit(hit) => WarmStart::Reuse(hit),
        };
        synthesize_ota_start(process, &b.req, cfg, start)
    })
}

/// Executes a schedule strictly serially in encounter order — the
/// determinism oracle for [`execute_schedule`].
fn execute_schedule_serial(
    process: &Process,
    scheduled: &[ScheduledBlock],
    cfg: &SynthConfig,
) -> Vec<SynthResult> {
    let mut results: Vec<SynthResult> = Vec::with_capacity(scheduled.len());
    for b in scheduled {
        let start = match &b.start {
            BlockStart::Cold => WarmStart::Cold,
            BlockStart::Retarget(j) => WarmStart::Retarget(&results[*j]),
            BlockStart::SeedFromCache(seed) => WarmStart::Retarget(seed),
            BlockStart::Hit(hit) => WarmStart::Reuse(hit),
        };
        results.push(synthesize_ota_start(process, &b.req, cfg, start));
    }
    results
}

/// Commits freshly synthesized blocks to the cache and assembles the
/// merged block list + per-run statistics.
fn finish_run(
    scheduled: Vec<ScheduledBlock>,
    results: Vec<SynthResult>,
    mut cache: Option<&mut BlockCache>,
) -> SynthesisRun {
    let mut stats = RunStats {
        blocks: scheduled.len(),
        ..RunStats::default()
    };
    let mut blocks: Vec<MdacBlock> = Vec::with_capacity(scheduled.len());
    for (b, result) in scheduled.into_iter().zip(results) {
        let origin = match &b.start {
            BlockStart::Cold => BlockOrigin::Cold,
            BlockStart::Retarget(_) => BlockOrigin::Retargeted,
            BlockStart::SeedFromCache(_) => BlockOrigin::CacheSeeded,
            BlockStart::Hit(_) => BlockOrigin::CacheHit,
        };
        match origin {
            BlockOrigin::Cold => stats.cold += 1,
            BlockOrigin::Retargeted => stats.retargeted += 1,
            BlockOrigin::CacheSeeded => stats.cache_seeded += 1,
            BlockOrigin::CacheHit => stats.cache_hits += 1,
        }
        if origin != BlockOrigin::CacheHit {
            stats.evaluations_spent += result.evaluations;
            if let Some(cache) = cache.as_deref_mut() {
                cache.insert(
                    b.req.template,
                    b.spec_fp,
                    CacheEntry {
                        key: b.key,
                        req: b.req.clone(),
                        result: result.clone(),
                        provenance: b.provenance,
                        config: b.config_fp,
                    },
                );
            }
        }
        blocks.push(MdacBlock {
            key: b.key,
            requirements: b.req,
            result,
            retargeted: b.planned_warm,
            origin,
        });
    }
    blocks.sort_by_key(|b| b.key);
    SynthesisRun { blocks, stats }
}

/// Synthesizes every distinct MDAC of a candidate set with reuse: exact
/// key hits are returned from the cache; otherwise the nearest same-template
/// block (by input accuracy) warm-starts a retargeting run.
///
/// The distinct blocks run **concurrently** on the dependency-driven
/// executor: the warm-start DAG is planned up front from the keys alone,
/// each block spawns the moment its warm source completes, and the merge is
/// deterministic — results are bit-identical to
/// [`synthesize_candidate_set_serial`] (enforced by a regression test).
pub fn synthesize_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    synthesize_candidate_set_with(
        spec,
        candidates,
        params,
        cfg,
        None,
        &ExecutorOptions::default(),
    )
    .blocks
}

/// [`synthesize_candidate_set`] with an optional persistent [`BlockCache`]
/// and explicit executor options — the cache-aware entry point the
/// multi-resolution flow drives.
pub fn synthesize_candidate_set_with(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    mut cache: Option<&mut BlockCache>,
    exec: &ExecutorOptions,
) -> SynthesisRun {
    let scheduled = schedule_candidate_set(spec, candidates, params, cfg, cache.as_deref_mut());
    let results = execute_schedule(&spec.process, &scheduled, cfg, exec);
    finish_run(scheduled, results, cache)
}

/// Sequential reference implementation of [`synthesize_candidate_set`]:
/// one block after another in serial encounter order. Kept as the
/// determinism oracle for the parallel path.
pub fn synthesize_candidate_set_serial(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    synthesize_candidate_set_serial_with(spec, candidates, params, cfg, None).blocks
}

/// [`synthesize_candidate_set_serial`] with an optional cache — the serial
/// oracle for the cache-aware paths (same schedule, strictly sequential
/// execution).
pub fn synthesize_candidate_set_serial_with(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    mut cache: Option<&mut BlockCache>,
) -> SynthesisRun {
    let scheduled = schedule_candidate_set(spec, candidates, params, cfg, cache.as_deref_mut());
    let results = execute_schedule_serial(&spec.process, &scheduled, cfg);
    finish_run(scheduled, results, cache)
}

/// The PR-2 wave-barrier scheduler, retained verbatim as the benchmarking
/// baseline for the dependency-driven executor (`bench_eval`'s
/// `multi_res_flow_waves` row): blocks whose warm sources finished run in
/// scoped-thread waves with a barrier between waves.
pub fn synthesize_candidate_set_waves(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    // Wave index: a block runs one wave after its warm source. (`warm` only
    // ever points at an earlier serial index, so one forward pass settles.)
    let mut wave = vec![0usize; planned.len()];
    for i in 0..planned.len() {
        if let Some(j) = planned[i].warm {
            wave[i] = wave[j] + 1;
        }
    }
    let max_wave = wave.iter().copied().max().unwrap_or(0);
    let mut results: Vec<Option<SynthResult>> = vec![None; planned.len()];
    for w in 0..=max_wave {
        let batch: Vec<(usize, SynthResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = planned
                .iter()
                .enumerate()
                .filter(|(i, _)| wave[*i] == w)
                .map(|(i, p)| {
                    let warm = p.warm.map(|j| {
                        results[j]
                            .as_ref()
                            .expect("warm source finished in an earlier wave")
                    });
                    scope.spawn(move || (i, synthesize_ota(&spec.process, &p.req, cfg, warm)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("MDAC synthesis panicked"))
                .collect()
        });
        for (i, r) in batch {
            results[i] = Some(r);
        }
    }
    let mut blocks: Vec<MdacBlock> = planned
        .into_iter()
        .zip(results)
        .map(|(p, r)| MdacBlock {
            key: p.key,
            requirements: p.req,
            result: r.expect("every planned block is synthesized"),
            retargeted: p.warm.is_some(),
            origin: if p.warm.is_some() {
                BlockOrigin::Retargeted
            } else {
                BlockOrigin::Cold
            },
        })
        .collect();
    blocks.sort_by_key(|b| b.key);
    blocks
}

/// One resolution's worth of a multi-resolution flow.
#[derive(Debug, Clone)]
pub struct ResolutionRun {
    /// Converter resolution K, bits.
    pub resolution: u32,
    /// Synthesized candidate-set blocks.
    pub blocks: Vec<MdacBlock>,
    /// Per-run statistics.
    pub stats: RunStats,
    /// Wall-clock seconds this resolution took.
    pub wall_seconds: f64,
}

/// Runs candidate-set synthesis for each spec in order, sharing one
/// persistent [`BlockCache`] across resolutions — the cross-resolution
/// reuse ROADMAP item: later resolutions hit blocks the earlier ones
/// synthesized (exact hits skip synthesis; under
/// [`crate::cache::CachePolicy::Aggressive`], near hits turn would-be cold roots into
/// retargets).
pub fn synthesize_multi_resolution(
    specs: &[AdcSpec],
    params: &PowerModelParams,
    cfg: &SynthConfig,
    cache: &mut BlockCache,
    exec: &ExecutorOptions,
) -> Vec<ResolutionRun> {
    specs
        .iter()
        .map(|spec| {
            let t0 = std::time::Instant::now();
            let candidates = crate::enumerate::enumerate_candidates(spec.resolution, 7);
            let run =
                synthesize_candidate_set_with(spec, &candidates, params, cfg, Some(cache), exec);
            ResolutionRun {
                resolution: spec.resolution,
                blocks: run.blocks,
                stats: run.stats,
                wall_seconds: t0.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use crate::enumerate::enumerate_candidates;

    #[test]
    fn distinct_specs_for_13_bit_are_about_eleven() {
        let spec = AdcSpec::date05(13);
        let cands = enumerate_candidates(13, 7);
        let keys = distinct_mdac_specs(&spec, &cands);
        // The paper reports eleven; our accuracy bookkeeping yields 12
        // distinct (m, A) pairs — documented in DESIGN.md.
        assert!(
            (11..=12).contains(&keys.len()),
            "expected ~11 distinct MDACs, got {}: {keys:?}",
            keys.len()
        );
        assert!(keys.contains(&(4, 13)));
        assert!(keys.contains(&(2, 8)));
    }

    #[test]
    fn requirements_scale_with_accuracy() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r1 = ota_requirements(&chain[0], &spec);
        let r3 = ota_requirements(&chain[2], &spec);
        assert!(r1.a0_min > r3.a0_min);
        assert!(r1.unity_min > r3.unity_min);
        assert!(r1.c_load > r3.c_load);
        assert_eq!(r3.template, TemplateKind::Telescopic);
        assert_eq!(r1.template, TemplateKind::TwoStage);
    }

    #[test]
    fn requirement_fingerprints_separate_normalization_from_exactness() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r = ota_requirements(&chain[2], &spec);
        // Last-ulp jitter collapses on the normalized grid but not in the
        // exact provenance fingerprint.
        let mut jittered = r.clone();
        jittered.a0_min *= 1.0 + 1e-14;
        assert_eq!(
            r.normalized_fingerprint(),
            jittered.normalized_fingerprint()
        );
        assert_ne!(r.exact_fingerprint(), jittered.exact_fingerprint());
        // A genuinely different spec separates on both.
        let other = ota_requirements(&chain[1], &spec);
        assert_ne!(r.normalized_fingerprint(), other.normalized_fingerprint());
    }

    /// Cross-resolution reuse premise: the (2, 8) last-front-stage block of
    /// the 13-bit 4-3-2 and the 11-bit 4-2 candidates derives bit-identical
    /// requirements — what makes the persistent cache hit across `flow`
    /// resolution runs.
    #[test]
    fn shared_blocks_across_resolutions_have_identical_requirements() {
        let params = PowerModelParams::calibrated();
        let s13 = AdcSpec::date05(13);
        let s11 = AdcSpec::date05(11);
        let c13 = design_chain(&s13, &[4, 3, 2], &params);
        let c11 = design_chain(&s11, &[4, 2], &params);
        let r13 = ota_requirements(&c13[2], &s13);
        let r11 = ota_requirements(&c11[1], &s11);
        assert_eq!(r13, r11);
        assert_eq!(r13.exact_fingerprint(), r11.exact_fingerprint());
    }

    /// Determinism regression: the executor-driven candidate-set synthesis
    /// must produce bit-identical results (sizing, cost, evaluation counts
    /// and ordering) to the serial reference for the 13-bit candidate set.
    #[test]
    fn parallel_candidate_set_matches_serial() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(13, 7);
        let cfg = SynthConfig {
            iterations: 12,
            nm_iterations: 3,
            seed: 3,
            ..Default::default()
        };
        let serial = synthesize_candidate_set_serial(&spec, &cands, &params, &cfg);
        let parallel = synthesize_candidate_set(&spec, &cands, &params, &cfg);
        assert_eq!(serial.len(), parallel.len());
        assert!(serial.len() >= 11, "expected the paper's ~11 blocks");
        assert!(serial.iter().any(|b| b.retargeted));
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.retargeted, b.retargeted);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.result.best_x, b.result.best_x, "key {:?}", a.key);
            assert_eq!(a.result.best_cost, b.result.best_cost, "key {:?}", a.key);
            assert_eq!(
                a.result.evaluations, b.result.evaluations,
                "key {:?}",
                a.key
            );
            assert_eq!(a.result.feasible, b.result.feasible, "key {:?}", a.key);
        }
    }

    /// The retained wave-barrier baseline still agrees with the executor
    /// (same plan, different scheduling) — it exists purely as the
    /// benchmark baseline.
    #[test]
    fn wave_baseline_matches_executor() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 5,
            ..Default::default()
        };
        let waves = synthesize_candidate_set_waves(&spec, &cands, &params, &cfg);
        let exec = synthesize_candidate_set(&spec, &cands, &params, &cfg);
        assert_eq!(waves.len(), exec.len());
        for (a, b) in waves.iter().zip(exec.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
        }
    }

    /// A reproducible cache warmed by one run answers a repeat of the same
    /// run entirely from provenance-exact hits, bit-identically.
    #[test]
    fn reproducible_cache_replays_identical_run() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let cfg = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 7,
            ..Default::default()
        };
        let exec = ExecutorOptions::default();
        let mut cache = BlockCache::new(CachePolicy::Reproducible);
        let first =
            synthesize_candidate_set_with(&spec, &cands, &params, &cfg, Some(&mut cache), &exec);
        assert_eq!(first.stats.cache_hits, 0);
        assert!(cache.len() >= first.blocks.len());
        let second =
            synthesize_candidate_set_with(&spec, &cands, &params, &cfg, Some(&mut cache), &exec);
        assert_eq!(
            second.stats.cache_hits, second.stats.blocks,
            "repeat run must be all hits: {:?}",
            second.stats
        );
        assert_eq!(second.stats.evaluations_spent, 0);
        for (a, b) in first.blocks.iter().zip(second.blocks.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
            assert_eq!(b.origin, BlockOrigin::CacheHit);
        }
    }

    /// A cache warmed under one synthesis config must never answer a run
    /// under a different config — hits and seeds are config-isolated even
    /// under the aggressive policy.
    #[test]
    fn cache_never_crosses_synthesis_configs() {
        let spec = AdcSpec::date05(10);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(10, 7);
        let exec = ExecutorOptions::default();
        let cfg_a = SynthConfig {
            iterations: 10,
            nm_iterations: 2,
            seed: 7,
            ..Default::default()
        };
        let cfg_b = SynthConfig {
            iterations: 14,
            ..cfg_a.clone()
        };
        let mut cache = BlockCache::new(CachePolicy::Aggressive);
        synthesize_candidate_set_with(&spec, &cands, &params, &cfg_a, Some(&mut cache), &exec);
        let run_b =
            synthesize_candidate_set_with(&spec, &cands, &params, &cfg_b, Some(&mut cache), &exec);
        assert_eq!(run_b.stats.cache_hits, 0, "{:?}", run_b.stats);
        assert_eq!(run_b.stats.cache_seeded, 0, "{:?}", run_b.stats);
        // And the isolated run is bit-identical to a cache-free one.
        let plain = synthesize_candidate_set(&spec, &cands, &params, &cfg_b);
        for (a, b) in run_b.blocks.iter().zip(plain.iter()) {
            assert_eq!(a.result.best_x, b.result.best_x);
            assert_eq!(a.result.evaluations, b.result.evaluations);
        }
    }

    /// End-to-end circuit synthesis of the cheapest block (the 2-bit last
    /// stage of the 13-bit 4-3-2 candidate) with a small budget.
    #[test]
    fn synthesize_last_stage_ota_meets_spec() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let req = ota_requirements(&chain[2], &spec);
        let cfg = SynthConfig {
            iterations: 350,
            nm_iterations: 60,
            seed: 21,
            ..Default::default()
        };
        let run = synthesize_ota(&spec.process, &req, &cfg, None);
        // With a tiny budget we at least approach feasibility; the block
        // must have a real gain and a unity crossing.
        let a0 = run.best_perf.get("a0").unwrap_or(0.0);
        let fu = run.best_perf.get("unity_freq").unwrap_or(0.0);
        assert!(a0 > req.a0_min * 0.3, "a0 {a0} vs req {}", req.a0_min);
        assert!(fu > req.unity_min * 0.3, "fu {fu} vs req {}", req.unity_min);
    }
}
