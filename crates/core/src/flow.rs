//! Block-level synthesis orchestration: spec translation, the MDAC reuse
//! cache across candidates, and circuit-grounded OTA synthesis with
//! warm-started retargeting.
//!
//! The paper synthesized "eleven MDACs … to enumerate the seven 13-bit ADC
//! configurations": distinct `(m, input-accuracy)` pairs are synthesized
//! once and reused across candidates; retargeting a neighbouring spec
//! warm-starts from the nearest finished design.

use crate::enumerate::Candidate;
use adc_mdac::opamp::{
    build_telescopic, build_two_stage, TelescopicHandles, TelescopicParams, TwoStageHandles,
    TwoStageParams,
};
use adc_mdac::power::{design_chain, OtaTopology, PowerModelParams, StageDesign};
use adc_mdac::specs::AdcSpec;
use adc_spice::netlist::Circuit;
use adc_spice::process::Process;
use adc_synth::hybrid::{BenchSetup, BenchTuner, HybridOptions, HybridOtaEvaluator};
use adc_synth::{
    Constraint, ConstraintKind, DesignSpace, DesignVar, SynthConfig, SynthResult, Synthesizer,
};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Collects the distinct MDAC block specs — `(m, input_accuracy)` pairs —
/// across a set of candidates (the paper's reuse set).
pub fn distinct_mdac_specs(spec: &AdcSpec, candidates: &[Candidate]) -> Vec<(u32, u32)> {
    let mut set = std::collections::BTreeSet::new();
    for c in candidates {
        for st in adc_mdac::specs::stage_specs(spec, c.front_bits()) {
            set.insert(st.reuse_key());
        }
    }
    set.into_iter().collect()
}

/// OTA template selected for a block (the gain-boosted class of the
/// analytic model maps onto the two-stage template at circuit level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Telescopic cascode.
    Telescopic,
    /// Two-stage Miller.
    TwoStage,
}

/// Requirements handed to the circuit-level OTA synthesis for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OtaRequirements {
    /// Minimum low-frequency gain (linear).
    pub a0_min: f64,
    /// Minimum unity-gain frequency with the stage load, Hz.
    pub unity_min: f64,
    /// Minimum phase margin, degrees.
    pub pm_min: f64,
    /// Load capacitance for the testbench, F.
    pub c_load: f64,
    /// Template implied by the analytic topology selection.
    pub template: TemplateKind,
}

/// Derives circuit-level OTA requirements from an analytic stage design.
pub fn ota_requirements(design: &StageDesign, spec: &AdcSpec) -> OtaRequirements {
    let t_lin = spec.t_amplify() * (1.0 - 0.368);
    // Closed-loop settling: loop crossover β·ωu ≥ N_τ/t_lin →
    // fu ≥ N_τ/(2π·β·t_lin) with the amp loaded by C_Leff.
    let unity_min = design.n_tau / (2.0 * std::f64::consts::PI * design.caps.beta * t_lin);
    let template = match design.topology {
        OtaTopology::Telescopic | OtaTopology::FoldedCascode => TemplateKind::Telescopic,
        OtaTopology::GainBoostedTelescopic | OtaTopology::TwoStageMiller => TemplateKind::TwoStage,
    };
    OtaRequirements {
        a0_min: design.a0_required,
        unity_min,
        pm_min: 60.0,
        c_load: design.c_load_eff,
        template,
    }
}

/// One synthesized MDAC opamp.
#[derive(Debug, Clone)]
pub struct MdacBlock {
    /// Reuse key `(m, input_accuracy)`.
    pub key: (u32, u32),
    /// Requirements used.
    pub requirements: OtaRequirements,
    /// Synthesis result (sizing, performance, evaluation count).
    pub result: SynthResult,
    /// Whether this block was warm-started from a previous one.
    pub retargeted: bool,
}

fn space_for(template: TemplateKind) -> DesignSpace {
    let bounds = match template {
        TemplateKind::Telescopic => TelescopicParams::bounds(),
        TemplateKind::TwoStage => TwoStageParams::bounds(),
    };
    DesignSpace::new(
        bounds
            .into_iter()
            .map(|b| {
                if b.log {
                    DesignVar::log(b.name, b.lo, b.hi)
                } else {
                    DesignVar::linear(b.name, b.lo, b.hi)
                }
            })
            .collect(),
    )
}

fn constraints_for(req: &OtaRequirements) -> Vec<Constraint> {
    vec![
        Constraint::new("a0", ConstraintKind::AtLeast, req.a0_min),
        Constraint::new("unity_freq", ConstraintKind::AtLeast, req.unity_min),
        Constraint::new("pm", ConstraintKind::AtLeast, req.pm_min),
        Constraint::new("saturated", ConstraintKind::AtLeast, 1.0),
    ]
}

/// Builds the synthesizer + evaluator pair for a requirement set and runs a
/// cold synthesis (or a retarget from `warm_start`).
pub fn synthesize_ota(
    process: &Process,
    req: &OtaRequirements,
    cfg: &SynthConfig,
    warm_start: Option<&SynthResult>,
) -> SynthResult {
    let space = space_for(req.template);
    let synth = Synthesizer::new(space, constraints_for(req), "power");
    let proc = process.clone();
    let template = req.template;
    let c_load = req.c_load;
    // Builder runs once per evaluator; every later candidate retunes the
    // persistent testbench in place through the resolved element handles.
    let build = move |x: &[f64]| -> BenchSetup {
        match template {
            TemplateKind::Telescopic => {
                let tb = build_telescopic(&proc, &TelescopicParams::from_vec(x), c_load);
                let handles =
                    TelescopicHandles::resolve(&tb.circuit).expect("telescopic template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TelescopicParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
            TemplateKind::TwoStage => {
                let tb = build_two_stage(&proc, &TwoStageParams::from_vec(x), c_load);
                let handles =
                    TwoStageHandles::resolve(&tb.circuit).expect("two-stage template handles");
                let tuner: BenchTuner = Rc::new(move |ckt: &mut Circuit, x: &[f64]| {
                    handles.retune(ckt, &TwoStageParams::from_vec(x));
                });
                BenchSetup::new(tb.circuit, tb.output, tb.supply, tb.devices).with_tuner(tuner)
            }
        }
    };
    let evaluator = HybridOtaEvaluator::new(build, HybridOptions::default());
    match warm_start {
        Some(prev) => synth.retarget(&evaluator, prev, cfg),
        None => synth.synthesize(&evaluator, cfg),
    }
}

/// One scheduled block of a candidate-set synthesis: its reuse key, the
/// derived requirements, and the serial-order index of the block whose
/// result warm-starts it (`None` → cold synthesis).
#[derive(Debug, Clone)]
struct PlannedBlock {
    key: (u32, u32),
    req: OtaRequirements,
    warm: Option<usize>,
}

/// Plans the distinct blocks of a candidate set in serial encounter order
/// and precomputes the warm-start DAG. The warm source of each block is a
/// pure function of the *keys* seen before it (nearest same-template block
/// in the paper's `16·Δm + ΔA` metric, ties resolved exactly as the serial
/// cache iteration does), so the schedule is independent of execution
/// order — the basis for the deterministic parallel run.
fn plan_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
) -> Vec<PlannedBlock> {
    let mut planned: Vec<PlannedBlock> = Vec::new();
    // key → planned index, iterated in ascending key order to mirror the
    // serial implementation's `BTreeMap::values` warm-start scan.
    let mut seen: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for cand in candidates {
        let chain = design_chain(spec, cand.front_bits(), params);
        for design in &chain {
            let key = design.spec.reuse_key();
            if seen.contains_key(&key) {
                continue;
            }
            let req = ota_requirements(design, spec);
            let warm = seen
                .iter()
                .filter(|(_, &idx)| planned[idx].req.template == req.template)
                .min_by_key(|(k, _)| {
                    (k.0 as i64 - key.0 as i64).abs() * 16 + (k.1 as i64 - key.1 as i64).abs()
                })
                .map(|(_, &idx)| idx);
            seen.insert(key, planned.len());
            planned.push(PlannedBlock { key, req, warm });
        }
    }
    planned
}

/// Assembles the final block list (ascending key order, matching the serial
/// cache's `into_values`) from the planned schedule and its results.
fn merge_blocks(planned: Vec<PlannedBlock>, results: Vec<Option<SynthResult>>) -> Vec<MdacBlock> {
    let mut blocks: Vec<MdacBlock> = planned
        .into_iter()
        .zip(results)
        .map(|(p, r)| MdacBlock {
            key: p.key,
            requirements: p.req,
            result: r.expect("every planned block is synthesized"),
            retargeted: p.warm.is_some(),
        })
        .collect();
    blocks.sort_by_key(|b| b.key);
    blocks
}

/// Synthesizes every distinct MDAC of a candidate set with reuse: exact
/// key hits are returned from the cache; otherwise the nearest same-template
/// block (by input accuracy) warm-starts a retargeting run.
///
/// The distinct blocks run **concurrently** on scoped threads: the
/// warm-start DAG is planned up front from the keys alone, blocks whose
/// warm sources are finished execute in parallel waves, and the merge is
/// deterministic — results are bit-identical to
/// [`synthesize_candidate_set_serial`] (enforced by a regression test).
pub fn synthesize_candidate_set(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    // Wave index: a block runs one wave after its warm source. (`warm` only
    // ever points at an earlier serial index, so one forward pass settles.)
    let mut wave = vec![0usize; planned.len()];
    for i in 0..planned.len() {
        if let Some(j) = planned[i].warm {
            wave[i] = wave[j] + 1;
        }
    }
    let max_wave = wave.iter().copied().max().unwrap_or(0);
    let mut results: Vec<Option<SynthResult>> = vec![None; planned.len()];
    for w in 0..=max_wave {
        let batch: Vec<(usize, SynthResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = planned
                .iter()
                .enumerate()
                .filter(|(i, _)| wave[*i] == w)
                .map(|(i, p)| {
                    let warm = p.warm.map(|j| {
                        results[j]
                            .as_ref()
                            .expect("warm source finished in an earlier wave")
                    });
                    scope.spawn(move || (i, synthesize_ota(&spec.process, &p.req, cfg, warm)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("MDAC synthesis panicked"))
                .collect()
        });
        for (i, r) in batch {
            results[i] = Some(r);
        }
    }
    merge_blocks(planned, results)
}

/// Sequential reference implementation of [`synthesize_candidate_set`]:
/// one block after another in serial encounter order. Kept as the
/// determinism oracle for the parallel path.
pub fn synthesize_candidate_set_serial(
    spec: &AdcSpec,
    candidates: &[Candidate],
    params: &PowerModelParams,
    cfg: &SynthConfig,
) -> Vec<MdacBlock> {
    let planned = plan_candidate_set(spec, candidates, params);
    let mut results: Vec<Option<SynthResult>> = vec![None; planned.len()];
    for (i, p) in planned.iter().enumerate() {
        let warm = p.warm.map(|j| {
            results[j]
                .as_ref()
                .expect("warm source has a lower serial index")
        });
        results[i] = Some(synthesize_ota(&spec.process, &p.req, cfg, warm));
    }
    merge_blocks(planned, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_candidates;

    #[test]
    fn distinct_specs_for_13_bit_are_about_eleven() {
        let spec = AdcSpec::date05(13);
        let cands = enumerate_candidates(13, 7);
        let keys = distinct_mdac_specs(&spec, &cands);
        // The paper reports eleven; our accuracy bookkeeping yields 12
        // distinct (m, A) pairs — documented in DESIGN.md.
        assert!(
            (11..=12).contains(&keys.len()),
            "expected ~11 distinct MDACs, got {}: {keys:?}",
            keys.len()
        );
        assert!(keys.contains(&(4, 13)));
        assert!(keys.contains(&(2, 8)));
    }

    #[test]
    fn requirements_scale_with_accuracy() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let r1 = ota_requirements(&chain[0], &spec);
        let r3 = ota_requirements(&chain[2], &spec);
        assert!(r1.a0_min > r3.a0_min);
        assert!(r1.unity_min > r3.unity_min);
        assert!(r1.c_load > r3.c_load);
        assert_eq!(r3.template, TemplateKind::Telescopic);
        assert_eq!(r1.template, TemplateKind::TwoStage);
    }

    /// Determinism regression: the parallel candidate-set synthesis must
    /// produce bit-identical results (sizing, cost, evaluation counts and
    /// ordering) to the serial reference for the 13-bit candidate set.
    #[test]
    fn parallel_candidate_set_matches_serial() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let cands = enumerate_candidates(13, 7);
        let cfg = SynthConfig {
            iterations: 12,
            nm_iterations: 3,
            seed: 3,
            ..Default::default()
        };
        let serial = synthesize_candidate_set_serial(&spec, &cands, &params, &cfg);
        let parallel = synthesize_candidate_set(&spec, &cands, &params, &cfg);
        assert_eq!(serial.len(), parallel.len());
        assert!(serial.len() >= 11, "expected the paper's ~11 blocks");
        assert!(serial.iter().any(|b| b.retargeted));
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.retargeted, b.retargeted);
            assert_eq!(a.result.best_x, b.result.best_x, "key {:?}", a.key);
            assert_eq!(a.result.best_cost, b.result.best_cost, "key {:?}", a.key);
            assert_eq!(
                a.result.evaluations, b.result.evaluations,
                "key {:?}",
                a.key
            );
            assert_eq!(a.result.feasible, b.result.feasible, "key {:?}", a.key);
        }
    }

    /// End-to-end circuit synthesis of the cheapest block (the 2-bit last
    /// stage of the 13-bit 4-3-2 candidate) with a small budget.
    #[test]
    fn synthesize_last_stage_ota_meets_spec() {
        let spec = AdcSpec::date05(13);
        let params = PowerModelParams::calibrated();
        let chain = design_chain(&spec, &[4, 3, 2], &params);
        let req = ota_requirements(&chain[2], &spec);
        let cfg = SynthConfig {
            iterations: 350,
            nm_iterations: 60,
            seed: 21,
            ..Default::default()
        };
        let run = synthesize_ota(&spec.process, &req, &cfg, None);
        // With a tiny budget we at least approach feasibility; the block
        // must have a real gain and a unity crossing.
        let a0 = run.best_perf.get("a0").unwrap_or(0.0);
        let fu = run.best_perf.get("unity_freq").unwrap_or(0.0);
        assert!(a0 > req.a0_min * 0.3, "a0 {a0} vs req {}", req.a0_min);
        assert!(fu > req.unity_min * 0.3, "fu {fu} vs req {}", req.unity_min);
    }
}
