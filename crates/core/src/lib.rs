//! # adc-topopt
//!
//! **Designer-driven topology optimization for pipelined ADCs** — the
//! paper's primary contribution, built on the workspace substrates:
//!
//! 1. [`enumerate`] — candidate enumeration of stage-resolution
//!    configurations `m₁-m₂-…` under the paper's §2 constraints
//!    (`Σ(mᵢ−1) = K − backend`, `mᵢ ∈ {2,3,4}`, `mᵢ ≥ mᵢ₊₁`), yielding
//!    exactly seven candidates for a 13-bit converter;
//! 2. [`flow`] — block-level synthesis orchestration: ADC→MDAC spec
//!    translation, the MDAC-reuse cache across candidates (the paper's
//!    eleven-ish distinct MDACs for the seven 13-bit candidates), and
//!    circuit-grounded OTA synthesis with warm-started retargeting,
//!    scheduled on [`executor`] with cross-resolution reuse through
//!    [`cache`];
//! 3. [`optimize`] — stage- and total-power evaluation of every candidate
//!    (Fig. 1 and Fig. 2 of the paper);
//! 4. [`rules`] — derivation of the optimum-enumeration decision rules the
//!    paper summarizes in Fig. 3;
//! 5. [`verify`] — circuit-level sign-off: the winning candidate's stages
//!    are assembled into a full-pipeline chain testbench (hierarchical
//!    subcircuits, real inter-stage loading) and evaluated end to end
//!    through the same workspaces the synthesis used;
//! 6. [`report`] — plain-text/CSV emitters used by the benchmark harness;
//! 7. [`wire`] — the hand-rolled JSON serialization surface shared by the
//!    `adc-serve` wire protocol and the `bench_serve` load generator, so
//!    the library API and the wire API cannot drift.
//!
//! ## Example
//!
//! ```
//! use adc_topopt::enumerate::enumerate_candidates;
//! use adc_topopt::optimize::optimize_topology;
//! use adc_mdac::{specs::AdcSpec, power::PowerModelParams};
//!
//! let cands = enumerate_candidates(13, 7);
//! assert_eq!(cands.len(), 7);
//! let report = optimize_topology(&AdcSpec::date05(13), &PowerModelParams::calibrated());
//! assert_eq!(report.best().candidate.to_string(), "4-3-2");
//! ```

pub mod cache;
pub mod enumerate;
pub mod executor;
pub mod flow;
pub mod optimize;
pub mod report;
pub mod rules;
pub mod verify;
pub mod wire;

pub use cache::{BlockCache, CachePolicy, CacheStats, SharedCache, SnapshotEntry};
pub use enumerate::{enumerate_candidates, Candidate};
pub use executor::{BlockFailure, BlockOutcome, ExecutorOptions, FailureKind};
pub use flow::{
    run_flow, run_flow_shared, surviving_candidates, synthesize_multi_resolution, BlockCasualty,
    ExecutionMode, FlowError, FlowOptions, FlowRequest, ResolutionRun, RetryPolicy, RunStats,
    SynthesisRun,
};
pub use optimize::{optimize_topology, TopologyReport};
pub use verify::{verify_candidate, ChainVerification, VerifyOptions};
pub use wire::{JsonValue, WireError};
