//! Dependency-driven task executor for block synthesis.
//!
//! The PR-2 scheduler ran warm-start DAGs in scoped-thread **waves**: every
//! block of wave *w* had to finish before any block of wave *w + 1*
//! started, so a long retarget chain serialized each wave's tail. This
//! executor replaces the barrier with a shared **ready queue**: a block is
//! enqueued the moment its (single) warm-start dependency completes, and
//! idle workers steal the next ready block regardless of which chain it
//! belongs to — occupancy is limited only by the DAG's critical path.
//!
//! ## Failure isolation
//!
//! [`run_dag_outcomes`] is the fault-tolerant entry point the flow layer
//! builds on: each task returns `Result<R, BlockFailure>` and each slot of
//! the output is a [`BlockOutcome`] — a panicking or failing task is
//! *recorded*, never unwound across the scope. Dependents of a failed task
//! still run, with `warm = None` (the flow demotes them from a warm
//! retarget to a cold start). A worker that panics while holding the mutex
//! can no longer cascade: every lock acquisition recovers from poisoning
//! via [`PoisonError::into_inner`], so the first failure is the one
//! reported, not a secondary `PoisonError` unwind.
//!
//! [`run_dag`] keeps the original panic-propagating contract (it is a thin
//! wrapper that re-raises the first recorded failure) for callers that
//! treat any failure as fatal.
//!
//! ## Determinism contract
//!
//! Scheduling order is *not* deterministic; results are. Each task is a
//! pure function of its index and its dependency's outcome, every task
//! runs exactly once, and result slots are written exactly once — so the
//! output vector is bit-identical for any thread count and any
//! interleaving. The flow layer's serial oracle plus the thread-count
//! stress tests enforce this end to end.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Executor tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ExecutorOptions {
    /// Worker-thread count; `None` uses [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
}

impl ExecutorOptions {
    /// A fixed thread count (tests / benchmarks).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ExecutorOptions {
            threads: Some(threads),
        }
    }

    /// Resolves the worker count for `task_count` tasks: at least 1, at
    /// most one worker per task.
    #[must_use]
    pub fn resolve(&self, task_count: usize) -> usize {
        let hw = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        hw.clamp(1, task_count.max(1))
    }
}

/// Why a block failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The task panicked; the payload is captured in the message.
    Panic,
    /// The task ran out of its wall-clock budget.
    Timeout,
    /// The task reported a typed error.
    Error,
}

/// Record of a block that did not produce a result: the failure payload
/// plus how much work was spent discovering it.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFailure {
    /// Failure classification.
    pub kind: FailureKind,
    /// Human-readable payload (panic message or error display).
    pub message: String,
    /// Execution attempts consumed (≥ 1; retries counted by the caller's
    /// recovery ladder).
    pub attempts: usize,
    /// Wall-clock seconds spent across all attempts.
    pub elapsed_seconds: f64,
}

impl BlockFailure {
    /// Failure with a single attempt and the given elapsed time.
    pub fn new(kind: FailureKind, message: impl Into<String>, elapsed_seconds: f64) -> Self {
        BlockFailure {
            kind,
            message: message.into(),
            attempts: 1,
            elapsed_seconds,
        }
    }
}

impl std::fmt::Display for BlockFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Error => "error",
        };
        write!(
            f,
            "{kind} after {} attempt(s) ({:.3} s): {}",
            self.attempts, self.elapsed_seconds, self.message
        )
    }
}

/// Per-block result of a fault-isolated run.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockOutcome<R> {
    /// The block produced a result.
    Ok(R),
    /// The block failed; the failure is recorded, not propagated.
    Failed(BlockFailure),
}

impl<R> BlockOutcome<R> {
    /// The result, if the block succeeded.
    pub fn ok(&self) -> Option<&R> {
        match self {
            BlockOutcome::Ok(r) => Some(r),
            BlockOutcome::Failed(_) => None,
        }
    }

    /// The result by value, if the block succeeded.
    pub fn into_ok(self) -> Option<R> {
        match self {
            BlockOutcome::Ok(r) => Some(r),
            BlockOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the block failed.
    pub fn failure(&self) -> Option<&BlockFailure> {
        match self {
            BlockOutcome::Ok(_) => None,
            BlockOutcome::Failed(f) => Some(f),
        }
    }

    /// `true` when the block produced a result.
    pub fn is_ok(&self) -> bool {
        matches!(self, BlockOutcome::Ok(_))
    }
}

/// Renders a panic payload for a [`BlockFailure`] message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Shared scheduler state behind one mutex.
struct State<R> {
    ready: VecDeque<usize>,
    results: Vec<Option<BlockOutcome<R>>>,
    finished: usize,
}

/// Fault-isolated DAG execution: runs `task(i, warm)` for every
/// `i < deps.len()`, where `warm` is the **successful** result of task
/// `deps[i]` (`None` for root tasks *and* for dependents of a failed
/// task — the caller decides how to degrade). Returns one
/// [`BlockOutcome`] per task, in task order.
///
/// A task that returns `Err` or panics is recorded as
/// [`BlockOutcome::Failed`]; execution of the rest of the DAG continues.
/// The executor-level `catch_unwind` is a last-resort backstop — callers
/// running their own recovery ladder should catch panics per attempt and
/// return a fully attributed [`BlockFailure`] instead.
///
/// `deps[i]`, when present, must point at an **earlier** index; the
/// planners that feed this executor produce exactly that shape (a forest
/// of warm-start chains in serial encounter order).
///
/// # Panics
/// Panics only if a dependency is not strictly earlier than its task —
/// task failures never unwind.
pub fn run_dag_outcomes<R, F>(
    deps: &[Option<usize>],
    opts: &ExecutorOptions,
    task: F,
) -> Vec<BlockOutcome<R>>
where
    R: Clone + Send,
    F: Fn(usize, Option<&R>) -> Result<R, BlockFailure> + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, d) in deps.iter().enumerate() {
        if let Some(j) = *d {
            assert!(j < i, "dependency {j} of task {i} is not earlier");
        }
    }
    // dependents[j] = tasks unblocked by j finishing.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = VecDeque::new();
    for (i, d) in deps.iter().enumerate() {
        match *d {
            Some(j) => dependents[j].push(i),
            None => roots.push_back(i),
        }
    }
    let workers = opts.resolve(n);
    let state = Mutex::new(State {
        ready: roots,
        results: vec![None; n],
        finished: 0,
    });
    let cv = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next ready task (and its warm input) under the
                // lock, run it outside. Lock poisoning is recovered
                // everywhere: a panicking sibling must not kill this
                // worker with a secondary PoisonError unwind.
                let (idx, warm) = {
                    let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
                    loop {
                        if st.finished == n {
                            return;
                        }
                        if let Some(idx) = st.ready.pop_front() {
                            // A failed dependency yields no warm value;
                            // the task sees `None` and degrades.
                            let warm = deps[idx].and_then(|j| {
                                st.results[j]
                                    .as_ref()
                                    .expect("dependency finished before enqueue")
                                    .ok()
                                    .cloned()
                            });
                            break (idx, warm);
                        }
                        st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                let started = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| run_task(&task, idx, warm.as_ref())));
                let outcome = match out {
                    Ok(Ok(r)) => BlockOutcome::Ok(r),
                    Ok(Err(failure)) => BlockOutcome::Failed(failure),
                    // Backstop: a panic that escaped the caller's own
                    // per-attempt catch still only fails this block.
                    Err(payload) => BlockOutcome::Failed(BlockFailure::new(
                        FailureKind::Panic,
                        panic_message(payload.as_ref()),
                        started.elapsed().as_secs_f64(),
                    )),
                };
                let mut st = state.lock().unwrap_or_else(PoisonError::into_inner);
                st.results[idx] = Some(outcome);
                st.finished += 1;
                for &d in &dependents[idx] {
                    st.ready.push_back(d);
                }
                drop(st);
                cv.notify_all();
            });
        }
    });

    let st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    st.results
        .into_iter()
        .map(|r| r.expect("every task completed"))
        .collect()
}

/// Runs one task body, giving the deterministic fault-injection registry a
/// per-task scope keyed by index (not by scheduling order, which races).
fn run_task<R, F>(task: &F, idx: usize, warm: Option<&R>) -> Result<R, BlockFailure>
where
    F: Fn(usize, Option<&R>) -> Result<R, BlockFailure>,
{
    #[cfg(feature = "faults")]
    return adc_numerics::faults::with_scope(&format!("task{idx}"), || {
        use adc_numerics::faults::{self, FaultAction};
        if let Some(action) = faults::check(faults::SITE_EXECUTOR_TASK) {
            match action {
                FaultAction::Panic => panic!("injected fault: executor task panic"),
                FaultAction::Timeout => {
                    return Err(BlockFailure::new(
                        FailureKind::Timeout,
                        "injected fault: executor task timeout",
                        0.0,
                    ))
                }
                FaultAction::FailConvergence | FaultAction::Corrupt => {
                    return Err(BlockFailure::new(
                        FailureKind::Error,
                        "injected fault: executor task error",
                        0.0,
                    ))
                }
            }
        }
        task(idx, warm)
    });
    #[cfg(not(feature = "faults"))]
    task(idx, warm)
}

/// Runs `task(i, warm)` for every `i < deps.len()`, where `warm` is the
/// result of task `deps[i]` (`None` for root tasks), spawning each task the
/// moment its dependency completes. Returns the results in task order.
///
/// This is the all-or-nothing wrapper over [`run_dag_outcomes`]: any
/// recorded failure (panic included) is re-raised here, after the rest of
/// the DAG has drained.
///
/// # Panics
/// Panics if a dependency is not strictly earlier than its task, or
/// if any task panics (the first recorded failure is re-raised).
pub fn run_dag<R, F>(deps: &[Option<usize>], opts: &ExecutorOptions, task: F) -> Vec<R>
where
    R: Clone + Send,
    F: Fn(usize, Option<&R>) -> R + Sync,
{
    run_dag_outcomes(deps, opts, |i, warm| Ok(task(i, warm)))
        .into_iter()
        .map(|outcome| match outcome {
            BlockOutcome::Ok(r) => r,
            BlockOutcome::Failed(f) => panic!("{}", f.message),
        })
        .collect()
}

/// Runs an embarrassingly parallel map (no dependencies) on the executor —
/// the degenerate DAG used by candidate-level evaluation.
pub fn run_parallel<R, F>(n: usize, opts: &ExecutorOptions, task: F) -> Vec<R>
where
    R: Clone + Send,
    F: Fn(usize) -> R + Sync,
{
    let deps = vec![None; n];
    run_dag(&deps, opts, |i, _| task(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A synthetic "synthesis": result encodes the whole warm chain, so any
    /// scheduling error shows up as a wrong value somewhere.
    fn chain_task(i: usize, warm: Option<&Vec<usize>>) -> Vec<usize> {
        let mut v = warm.cloned().unwrap_or_default();
        v.push(i);
        v
    }

    fn diamond_deps() -> Vec<Option<usize>> {
        // Two roots; interleaved chains of different lengths.
        vec![
            None,
            Some(0),
            None,
            Some(1),
            Some(2),
            Some(3),
            Some(3),
            Some(2),
            Some(6),
        ]
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let deps = diamond_deps();
        let serial = run_dag(&deps, &ExecutorOptions::with_threads(1), chain_task);
        for threads in [2, 4, 8] {
            let parallel = run_dag(&deps, &ExecutorOptions::with_threads(threads), chain_task);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // And the auto-sized default.
        assert_eq!(
            serial,
            run_dag(&deps, &ExecutorOptions::default(), chain_task)
        );
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let deps = diamond_deps();
        let count = AtomicUsize::new(0);
        let out = run_dag(&deps, &ExecutorOptions::with_threads(4), |i, w| {
            count.fetch_add(1, Ordering::SeqCst);
            chain_task(i, w)
        });
        assert_eq!(out.len(), deps.len());
        assert_eq!(count.load(Ordering::SeqCst), deps.len());
    }

    #[test]
    fn dependency_ready_before_task_starts() {
        // A long chain: each task asserts its warm input is the full
        // prefix — catches premature scheduling.
        let deps: Vec<Option<usize>> = (0..32)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let out = run_dag(
            &deps,
            &ExecutorOptions::with_threads(4),
            |i, warm: Option<&Vec<usize>>| {
                if i > 0 {
                    assert_eq!(warm.expect("warm present").len(), i);
                }
                chain_task(i, warm)
            },
        );
        assert_eq!(out[31], (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dag_is_fine() {
        let out: Vec<u8> = run_dag(&[], &ExecutorOptions::default(), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let a = run_parallel(17, &ExecutorOptions::with_threads(1), |i| i * i);
        let b = run_parallel(17, &ExecutorOptions::with_threads(4), |i| i * i);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "block 5 exploded")]
    fn task_panics_propagate() {
        let deps: Vec<Option<usize>> = (0..8)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        run_dag(
            &deps,
            &ExecutorOptions::with_threads(2),
            |i, w: Option<&usize>| {
                if i == 5 {
                    panic!("block 5 exploded");
                }
                w.copied().unwrap_or(0) + 1
            },
        );
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn forward_dependency_rejected() {
        run_dag(
            &[Some(1), None],
            &ExecutorOptions::default(),
            |_, _: Option<&u8>| 0u8,
        );
    }

    #[test]
    fn resolve_clamps_thread_count() {
        assert_eq!(ExecutorOptions::with_threads(16).resolve(3), 3);
        assert_eq!(ExecutorOptions::with_threads(0).resolve(3), 1);
        assert!(ExecutorOptions::default().resolve(100) >= 1);
        assert_eq!(ExecutorOptions::default().resolve(0), 1);
    }

    /// A panicking task is recorded, the rest of the DAG still runs, and
    /// dependents of the failure see `warm = None` instead of dying.
    #[test]
    fn outcomes_isolate_panics_and_demote_dependents() {
        let deps: Vec<Option<usize>> = (0..8)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        for threads in [1, 2, 4] {
            let out = run_dag_outcomes(
                &deps,
                &ExecutorOptions::with_threads(threads),
                |i, w: Option<&usize>| {
                    if i == 3 {
                        panic!("block 3 exploded");
                    }
                    Ok(w.copied().unwrap_or(100) + 1)
                },
            );
            assert_eq!(out.len(), 8);
            let f = out[3].failure().expect("block 3 failed");
            assert_eq!(f.kind, FailureKind::Panic);
            assert!(f.message.contains("block 3 exploded"), "{}", f.message);
            // Upstream of the failure: the chain accumulated normally.
            assert_eq!(out[2].ok(), Some(&103));
            // Immediately downstream: warm degraded to None → restarts
            // from the root value; the rest of the chain rebuilds on it.
            assert_eq!(out[4].ok(), Some(&101));
            assert_eq!(out[7].ok(), Some(&104));
        }
    }

    /// Typed task errors are recorded with their attempt accounting
    /// intact, and the outcome vector is thread-count invariant.
    #[test]
    fn outcomes_record_typed_errors_deterministically() {
        let deps = diamond_deps();
        let run = |threads| {
            run_dag_outcomes(
                &deps,
                &ExecutorOptions::with_threads(threads),
                |i, w: Option<&usize>| {
                    if i == 2 {
                        return Err(BlockFailure {
                            kind: FailureKind::Timeout,
                            message: "budget exhausted".into(),
                            attempts: 3,
                            elapsed_seconds: 0.0,
                        });
                    }
                    Ok(w.copied().unwrap_or(0) + i)
                },
            )
        };
        let serial = run(1);
        assert_eq!(serial[2].failure().map(|f| f.attempts), Some(3));
        assert_eq!(
            serial[2].failure().map(|f| f.kind),
            Some(FailureKind::Timeout)
        );
        // Task 4 depends on failed task 2: cold restart (warm = None).
        assert_eq!(serial[4].ok(), Some(&4));
        for threads in [2, 4] {
            assert_eq!(serial, run(threads), "threads = {threads}");
        }
    }

    /// The first failure's payload survives even when other workers
    /// contend on the (previously poisonable) mutex afterwards.
    #[test]
    fn first_failure_payload_not_masked_by_poisoning() {
        let out = run_dag_outcomes(
            &vec![None; 16],
            &ExecutorOptions::with_threads(4),
            |i, _: Option<&usize>| {
                if i == 0 {
                    panic!("original payload");
                }
                Ok(i)
            },
        );
        let f = out[0].failure().expect("task 0 failed");
        assert!(f.message.contains("original payload"), "{}", f.message);
        assert_eq!(out.iter().filter(|o| o.is_ok()).count(), 15);
    }
}
