//! Dependency-driven task executor for block synthesis.
//!
//! The PR-2 scheduler ran warm-start DAGs in scoped-thread **waves**: every
//! block of wave *w* had to finish before any block of wave *w + 1*
//! started, so a long retarget chain serialized each wave's tail. This
//! executor replaces the barrier with a shared **ready queue**: a block is
//! enqueued the moment its (single) warm-start dependency completes, and
//! idle workers steal the next ready block regardless of which chain it
//! belongs to — occupancy is limited only by the DAG's critical path.
//!
//! ## Determinism contract
//!
//! Scheduling order is *not* deterministic; results are. Each task is a
//! pure function of its index and its dependency's result, every task runs
//! exactly once, and result slots are written exactly once — so the output
//! vector is bit-identical for any thread count and any interleaving. The
//! flow layer's serial oracle plus the thread-count stress tests enforce
//! this end to end.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Executor tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct ExecutorOptions {
    /// Worker-thread count; `None` uses [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
}

impl ExecutorOptions {
    /// A fixed thread count (tests / benchmarks).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ExecutorOptions {
            threads: Some(threads),
        }
    }

    /// Resolves the worker count for `task_count` tasks: at least 1, at
    /// most one worker per task.
    #[must_use]
    pub fn resolve(&self, task_count: usize) -> usize {
        let hw = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        hw.clamp(1, task_count.max(1))
    }
}

/// Shared scheduler state behind one mutex.
struct State<R> {
    ready: VecDeque<usize>,
    results: Vec<Option<R>>,
    finished: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Runs `task(i, warm)` for every `i < deps.len()`, where `warm` is the
/// result of task `deps[i]` (`None` for root tasks), spawning each task the
/// moment its dependency completes. Returns the results in task order.
///
/// `deps[i]`, when present, must point at an **earlier** index; the
/// planners that feed this executor produce exactly that shape (a forest of
/// warm-start chains in serial encounter order).
///
/// # Panics
/// Panics if a dependency is not strictly earlier than its task, or
/// (propagated) if a task panics on a worker thread.
pub fn run_dag<R, F>(deps: &[Option<usize>], opts: &ExecutorOptions, task: F) -> Vec<R>
where
    R: Clone + Send,
    F: Fn(usize, Option<&R>) -> R + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, d) in deps.iter().enumerate() {
        if let Some(j) = *d {
            assert!(j < i, "dependency {j} of task {i} is not earlier");
        }
    }
    // dependents[j] = tasks unblocked by j finishing.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = VecDeque::new();
    for (i, d) in deps.iter().enumerate() {
        match *d {
            Some(j) => dependents[j].push(i),
            None => roots.push_back(i),
        }
    }
    let workers = opts.resolve(n);
    let state = Mutex::new(State {
        ready: roots,
        results: vec![None; n],
        finished: 0,
        panic: None,
    });
    let cv = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next ready task (and its warm input) under the
                // lock, run it outside.
                let (idx, warm) = {
                    let mut st = state.lock().expect("executor mutex");
                    loop {
                        if st.panic.is_some() || st.finished == n {
                            return;
                        }
                        if let Some(idx) = st.ready.pop_front() {
                            let warm = deps[idx].map(|j| {
                                st.results[j]
                                    .clone()
                                    .expect("dependency finished before enqueue")
                            });
                            break (idx, warm);
                        }
                        st = cv.wait(st).expect("executor condvar");
                    }
                };
                let out = catch_unwind(AssertUnwindSafe(|| task(idx, warm.as_ref())));
                let mut st = state.lock().expect("executor mutex");
                match out {
                    Ok(r) => {
                        st.results[idx] = Some(r);
                        st.finished += 1;
                        for &d in &dependents[idx] {
                            st.ready.push_back(d);
                        }
                    }
                    Err(payload) => {
                        st.panic.get_or_insert(payload);
                    }
                }
                drop(st);
                cv.notify_all();
            });
        }
    });

    let mut st = state.into_inner().expect("executor mutex");
    if let Some(payload) = st.panic.take() {
        resume_unwind(payload);
    }
    st.results
        .into_iter()
        .map(|r| r.expect("every task completed"))
        .collect()
}

/// Runs an embarrassingly parallel map (no dependencies) on the executor —
/// the degenerate DAG used by candidate-level evaluation.
pub fn run_parallel<R, F>(n: usize, opts: &ExecutorOptions, task: F) -> Vec<R>
where
    R: Clone + Send,
    F: Fn(usize) -> R + Sync,
{
    let deps = vec![None; n];
    run_dag(&deps, opts, |i, _| task(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A synthetic "synthesis": result encodes the whole warm chain, so any
    /// scheduling error shows up as a wrong value somewhere.
    fn chain_task(i: usize, warm: Option<&Vec<usize>>) -> Vec<usize> {
        let mut v = warm.cloned().unwrap_or_default();
        v.push(i);
        v
    }

    fn diamond_deps() -> Vec<Option<usize>> {
        // Two roots; interleaved chains of different lengths.
        vec![
            None,
            Some(0),
            None,
            Some(1),
            Some(2),
            Some(3),
            Some(3),
            Some(2),
            Some(6),
        ]
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let deps = diamond_deps();
        let serial = run_dag(&deps, &ExecutorOptions::with_threads(1), chain_task);
        for threads in [2, 4, 8] {
            let parallel = run_dag(&deps, &ExecutorOptions::with_threads(threads), chain_task);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // And the auto-sized default.
        assert_eq!(
            serial,
            run_dag(&deps, &ExecutorOptions::default(), chain_task)
        );
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let deps = diamond_deps();
        let count = AtomicUsize::new(0);
        let out = run_dag(&deps, &ExecutorOptions::with_threads(4), |i, w| {
            count.fetch_add(1, Ordering::SeqCst);
            chain_task(i, w)
        });
        assert_eq!(out.len(), deps.len());
        assert_eq!(count.load(Ordering::SeqCst), deps.len());
    }

    #[test]
    fn dependency_ready_before_task_starts() {
        // A long chain: each task asserts its warm input is the full
        // prefix — catches premature scheduling.
        let deps: Vec<Option<usize>> = (0..32)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let out = run_dag(
            &deps,
            &ExecutorOptions::with_threads(4),
            |i, warm: Option<&Vec<usize>>| {
                if i > 0 {
                    assert_eq!(warm.expect("warm present").len(), i);
                }
                chain_task(i, warm)
            },
        );
        assert_eq!(out[31], (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dag_is_fine() {
        let out: Vec<u8> = run_dag(&[], &ExecutorOptions::default(), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_matches_serial() {
        let a = run_parallel(17, &ExecutorOptions::with_threads(1), |i| i * i);
        let b = run_parallel(17, &ExecutorOptions::with_threads(4), |i| i * i);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "block 5 exploded")]
    fn task_panics_propagate() {
        let deps: Vec<Option<usize>> = (0..8)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        run_dag(
            &deps,
            &ExecutorOptions::with_threads(2),
            |i, w: Option<&usize>| {
                if i == 5 {
                    panic!("block 5 exploded");
                }
                w.copied().unwrap_or(0) + 1
            },
        );
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn forward_dependency_rejected() {
        run_dag(
            &[Some(1), None],
            &ExecutorOptions::default(),
            |_, _: Option<&u8>| 0u8,
        );
    }

    #[test]
    fn resolve_clamps_thread_count() {
        assert_eq!(ExecutorOptions::with_threads(16).resolve(3), 3);
        assert_eq!(ExecutorOptions::with_threads(0).resolve(3), 1);
        assert!(ExecutorOptions::default().resolve(100) >= 1);
        assert_eq!(ExecutorOptions::default().resolve(0), 1);
    }
}
