//! Plain-text and CSV emitters for the figure-regeneration binaries.

use crate::flow::ResolutionRun;
use crate::optimize::TopologyReport;
use crate::rules::RuleTable;
use crate::verify::ChainVerification;
use std::fmt::Write as _;

/// Renders the Fig. 1 data: per-stage power of every candidate.
pub fn fig1_table(report: &TopologyReport) -> String {
    let mut out = String::new();
    let max_stages = report
        .rows
        .iter()
        .map(|r| r.stage_power.len())
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "Stage power [mW] for {}-bit {} MSPS pipelined ADC configurations",
        report.spec.resolution,
        report.spec.fs / 1e6
    );
    let mut header = format!("{:<14}", "config");
    for i in 1..=max_stages {
        header.push_str(&format!("{:>10}", format!("stage {i}")));
    }
    header.push_str(&format!("{:>10}", "total"));
    let _ = writeln!(out, "{header}");
    for row in &report.rows {
        let mut line = format!("{:<14}", row.candidate.to_string());
        for i in 0..max_stages {
            match row.stage_power.get(i) {
                Some(p) => line.push_str(&format!("{:>10.3}", p * 1e3)),
                None => line.push_str(&format!("{:>10}", "-")),
            }
        }
        line.push_str(&format!("{:>10.3}", row.total_power * 1e3));
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Renders a Fig. 2 row: total power per candidate at one resolution.
pub fn fig2_table(reports: &[TopologyReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Total front-end power [mW] per configuration and resolution"
    );
    for report in reports {
        let _ = writeln!(out, "K = {} bits:", report.spec.resolution);
        for row in &report.rows {
            let marker = if std::ptr::eq(row, report.best()) {
                "  << optimum"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<14}{:>10.3}{}",
                row.candidate.to_string(),
                row.total_power * 1e3,
                marker
            );
        }
    }
    out
}

/// Renders the Fig. 3 rule table.
pub fn fig3_table(rules: &RuleTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Optimum candidate enumeration rules (derived)");
    let _ = writeln!(
        out,
        "{:<6}{:<16}{:<10}{:<14}resolutions used",
        "K", "optimum", "max m_i", "last stage"
    );
    for r in &rules.rows {
        let used: Vec<String> = r.used_bits.iter().map(|m| m.to_string()).collect();
        let _ = writeln!(
            out,
            "{:<6}{:<16}{:<10}{:<14}{{{}}}",
            r.resolution,
            r.optimum,
            r.max_stage_bits,
            r.last_stage_bits,
            used.join(",")
        );
    }
    out
}

/// Renders chain-level verification records next to their summed-stage
/// estimates (one block per verified candidate).
pub fn verify_table(verifications: &[ChainVerification]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Circuit-level chain verification (full-pipeline testbench)"
    );
    for v in verifications {
        let r = &v.report;
        let _ = writeln!(
            out,
            "{} ({}-bit): MNA dim {}, fill {:.1} %, sparse dc/tf {}/{}",
            v.config,
            v.resolution,
            r.mna_dim,
            r.fill_ratio * 100.0,
            r.dc_sparse,
            r.tf_sparse
        );
        let _ = writeln!(
            out,
            "  gain      {:>10.3} measured vs {:>6.1} ideal ({:+.2} % error; TF probe {:.3})",
            r.gain,
            v.gain_expected,
            100.0 * (r.gain - v.gain_expected) / v.gain_expected,
            r.tf_gain
        );
        let _ = writeln!(
            out,
            "  settling  {:>10.1} MHz −3 dB, τ = {:.2} ns, unity {:.1} MHz",
            r.bw_3db / 1e6,
            r.settle_tau * 1e9,
            r.unity_freq / 1e6
        );
        let _ = writeln!(
            out,
            "  power     {:>10.3} mW chain vs {:.3} mW summed blocks vs {:.3} mW analytic",
            r.power * 1e3,
            v.power_summed * 1e3,
            v.power_analytic * 1e3
        );
        let _ = writeln!(
            out,
            "  devices   {:>10.0} % of OTA MOSFETs saturated",
            r.saturated * 100.0
        );
        if let Some(tr) = &v.tran {
            let settled = tr.stages.iter().filter(|s| s.settled).count();
            let worst = tr
                .stages
                .iter()
                .map(|s| s.settle_err / s.half_lsb.max(f64::MIN_POSITIVE))
                .fold(0.0f64, f64::max);
            let gains: Vec<String> = tr
                .stages
                .iter()
                .map(|s| format!("{:.2}", s.residue_gain))
                .collect();
            let _ = writeln!(
                out,
                "  transient {:>7} stages settled to ½ LSB (worst err/½LSB {:.3}), residue gains [{}]",
                format!("{settled}/{}", tr.stages.len()),
                worst,
                gains.join(", ")
            );
            let _ = writeln!(
                out,
                "            {:>10} adaptive steps ({} rejected, min dt {:.1} ps, sparse {})",
                tr.accepted,
                tr.rejected,
                tr.min_dt * 1e12,
                tr.sparse
            );
        }
    }
    out
}

/// Renders the fault-tolerance health of a multi-resolution flow: per-run
/// attempts, recoveries, demotions, casualties and remaining deadline
/// slack — the observability surface of the guarded executor.
pub fn run_health_table(runs: &[ResolutionRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Flow run health (guarded executor)");
    let _ = writeln!(
        out,
        "{:<6}{:>8}{:>10}{:>8}{:>11}{:>9}{:>8}{:>12}",
        "bits", "blocks", "attempts", "failed", "recovered", "demoted", "hits", "slack [ms]"
    );
    for run in runs {
        let slack = match run.stats.deadline_slack_ms {
            Some(ms) => ms.to_string(),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<6}{:>8}{:>10}{:>8}{:>11}{:>9}{:>8}{:>12}",
            run.resolution,
            run.stats.blocks,
            run.stats.attempts,
            run.stats.failed,
            run.stats.recovered,
            run.stats.demoted,
            run.stats.cache_hits,
            slack
        );
        for c in &run.failures {
            let _ = writeln!(
                out,
                "  casualty (m={}, A={}): {}",
                c.key.0, c.key.1, c.failure
            );
        }
    }
    out
}

/// CSV of total power per candidate (one line per candidate).
pub fn totals_csv(report: &TopologyReport) -> String {
    let mut out = String::from("config,total_power_mw\n");
    for row in &report.rows {
        let _ = writeln!(out, "{},{:.6}", row.candidate, row.total_power * 1e3);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::optimize_topology;
    use crate::rules::derive_rules;
    use adc_mdac::power::PowerModelParams;
    use adc_mdac::specs::AdcSpec;

    #[test]
    fn fig1_contains_all_configs() {
        let r = optimize_topology(&AdcSpec::date05(13), &PowerModelParams::calibrated());
        let t = fig1_table(&r);
        for cfg in ["4-3-2", "2-2-2-2-2-2", "4-4"] {
            assert!(t.contains(cfg), "missing {cfg} in:\n{t}");
        }
        assert!(t.contains("stage 1"));
    }

    #[test]
    fn fig2_marks_optimum() {
        let reports: Vec<_> = [10u32, 11]
            .iter()
            .map(|&k| optimize_topology(&AdcSpec::date05(k), &PowerModelParams::calibrated()))
            .collect();
        let t = fig2_table(&reports);
        assert!(t.contains("<< optimum"));
        assert!(t.contains("K = 10 bits"));
    }

    #[test]
    fn verify_table_renders() {
        use crate::verify::ChainVerification;
        use adc_synth::chain::ChainReport;
        use adc_synth::tran_chain::{TranChainReport, TranStageReport};
        let v = ChainVerification {
            config: "4-3-2".into(),
            resolution: 13,
            report: ChainReport {
                power: 21e-3,
                gain: 63.2,
                tf_gain: 63.1,
                unity_freq: 4e8,
                bw_3db: 1e7,
                settle_tau: 1.6e-8,
                saturated: 1.0,
                mna_dim: 119,
                dc_sparse: true,
                tf_sparse: true,
                fill_ratio: 0.031,
            },
            tran: Some(TranChainReport {
                stages: vec![TranStageReport {
                    amplitude: 12e-3,
                    settle_err: 0.1e-3,
                    half_lsb: 0.49e-3,
                    settled: true,
                    residue_gain: 3.97,
                    ideal_gain: 4.0,
                    settle_frac: 0.4,
                    max_slew: 2e6,
                    slew_frac: 0.1,
                }],
                all_settled: true,
                accepted: 4211,
                rejected: 37,
                newton_iters: 9000,
                min_dt: 12e-12,
                sparse: true,
            }),
            gain_expected: 64.0,
            power_summed: 20e-3,
            power_analytic: 19e-3,
        };
        let t = verify_table(&[v]);
        assert!(t.contains("4-3-2"), "{t}");
        assert!(t.contains("MNA dim 119"), "{t}");
        assert!(t.contains("summed blocks"), "{t}");
        assert!(t.contains("ideal"), "{t}");
        assert!(t.contains("1/1 stages settled"), "{t}");
        assert!(t.contains("4211 adaptive steps"), "{t}");
        assert!(t.contains("residue gains [3.97]"), "{t}");
    }

    #[test]
    fn fig3_and_csv_render() {
        let rules = derive_rules(9..=11, &PowerModelParams::calibrated());
        let t = fig3_table(&rules);
        assert!(t.contains("max m_i"));
        let r = optimize_topology(&AdcSpec::date05(10), &PowerModelParams::calibrated());
        let csv = totals_csv(&r);
        assert!(csv.lines().count() >= 4);
        assert!(csv.starts_with("config,"));
    }
}
