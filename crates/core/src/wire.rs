//! Single serialization surface for the flow API: hand-rolled JSON
//! (mirroring `bench_check`'s parser idiom — no serde, the workspace is
//! registry-free) so the library API and the wire API cannot drift.
//!
//! The server (`adc-serve`) and the load generator (`bench_serve`) both
//! speak through these functions; any field added to [`AdcSpec`],
//! [`FlowOptions`], [`RunStats`] or the verify reports shows up here or
//! the round-trip tests fail.
//!
//! Grammar notes:
//! - objects preserve insertion order ([`JsonValue::Obj`] is a pair list,
//!   not a map), so rendered payloads are byte-deterministic;
//! - numbers render through Rust's shortest round-trip `f64` formatter;
//!   non-finite values render as `null` and read back as NaN, keeping
//!   `power: NaN` blocks representable;
//! - durations ride as fractional milliseconds (`*_ms` keys).

use crate::cache::{CacheEntry, SharedCache, SnapshotEntry};
use crate::flow::{
    FlowOptions, OtaRequirements, ResolutionRun, RetryPolicy, RunStats, TemplateKind,
};
use crate::verify::ChainVerification;
use adc_mdac::specs::AdcSpec;
use adc_spice::process::Process;
use adc_synth::chain::ChainReport;
use adc_synth::evaluator::Performance;
use adc_synth::tran_chain::{TranChainReport, TranStageReport};
use adc_synth::SynthConfig;
use adc_synth::SynthResult;
use std::fmt;
use std::time::Duration;

/// A parsed JSON document (the subset the wire protocol uses: no
/// distinction between integer and float numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered pair list (insertion order preserved).
    Obj(Vec<(String, JsonValue)>),
}

/// Typed serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON: byte offset and reason.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A required field is absent.
    MissingField(String),
    /// A field holds the wrong JSON type.
    BadType {
        /// Dotted field path.
        field: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// The spec names a process this build does not know.
    UnknownProcess(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Parse { offset, reason } => {
                write!(f, "JSON parse error at byte {offset}: {reason}")
            }
            WireError::MissingField(name) => write!(f, "missing field `{name}`"),
            WireError::BadType { field, expected } => {
                write!(f, "field `{field}` is not {expected}")
            }
            WireError::UnknownProcess(name) => write!(f, "unknown process `{name}`"),
        }
    }
}

impl std::error::Error for WireError {}

impl JsonValue {
    /// Wraps a float, mapping non-finite values to `null` (JSON has no
    /// NaN/∞ literal).
    pub fn num(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(v)
        } else {
            JsonValue::Null
        }
    }

    /// Wraps an optional number; `None` becomes `null`.
    pub fn opt_num(v: Option<f64>) -> JsonValue {
        match v {
            Some(x) => JsonValue::num(x),
            None => JsonValue::Null,
        }
    }

    /// Looks a field up on an object (`None` on non-objects too).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The field as a float; `null` reads back as NaN (the writer's image
    /// of a non-finite value).
    fn f64_field(&self, field: &str) -> Result<f64, WireError> {
        match self.get(field) {
            Some(JsonValue::Num(v)) => Ok(*v),
            Some(JsonValue::Null) => Ok(f64::NAN),
            Some(_) => Err(WireError::BadType {
                field: field.to_string(),
                expected: "a number",
            }),
            None => Err(WireError::MissingField(field.to_string())),
        }
    }

    /// The field as a non-negative integer.
    fn usize_field(&self, field: &str) -> Result<usize, WireError> {
        match self.get(field) {
            Some(JsonValue::Num(v)) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v as usize),
            Some(_) => Err(WireError::BadType {
                field: field.to_string(),
                expected: "a non-negative integer",
            }),
            None => Err(WireError::MissingField(field.to_string())),
        }
    }

    /// The field as a string slice.
    fn str_field(&self, field: &str) -> Result<&str, WireError> {
        match self.get(field) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(_) => Err(WireError::BadType {
                field: field.to_string(),
                expected: "a string",
            }),
            None => Err(WireError::MissingField(field.to_string())),
        }
    }

    /// An optional numeric field: absent or `null` reads as `None`.
    fn opt_f64_field(&self, field: &str) -> Result<Option<f64>, WireError> {
        match self.get(field) {
            Some(JsonValue::Num(v)) => Ok(Some(*v)),
            Some(JsonValue::Null) | None => Ok(None),
            Some(_) => Err(WireError::BadType {
                field: field.to_string(),
                expected: "a number or null",
            }),
        }
    }

    /// Renders compact single-line JSON (byte-deterministic: object order
    /// is insertion order, floats use the shortest round-trip form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    // Shortest decimal that parses back to the same bits.
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    /// [`WireError::Parse`] with the byte offset of the first offence.
    pub fn parse(text: &str) -> Result<JsonValue, WireError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(WireError::Parse {
                offset: pos,
                reason: "trailing garbage after document".to_string(),
            });
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, reason: &str) -> WireError {
    WireError::Parse {
        offset: pos,
        reason: reason.to_string(),
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), WireError> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(fail(*pos, &format!("expected `{}`", want as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, WireError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(fail(*pos, "unexpected byte at value position")),
        None => Err(fail(*pos, "unexpected end of input")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, WireError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(fail(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, WireError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| fail(start, "non-UTF-8 number"))?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| fail(start, "malformed number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| fail(*pos, "invalid UTF-8 in string"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| fail(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| fail(*pos, "non-UTF-8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| fail(*pos, "malformed \\u escape"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| fail(*pos, "\\u escape is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(fail(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
            None => return Err(fail(*pos, "unterminated string")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, WireError> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(fail(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, WireError> {
    expect_byte(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(fail(*pos, "expected `,` or `}` in object")),
        }
    }
}

// ---------------------------------------------------------------------------
// Typed conversions: the wire image of the flow API.
// ---------------------------------------------------------------------------

/// Wire image of an [`AdcSpec`]: the process rides by *name* (the server
/// resolves it against its built-in nodes; shipping full model cards over
/// the wire would let clients desynchronize the provenance fingerprints).
pub fn spec_to_json(spec: &AdcSpec) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "resolution".to_string(),
            JsonValue::Num(f64::from(spec.resolution)),
        ),
        ("fs".to_string(), JsonValue::num(spec.fs)),
        ("full_scale".to_string(), JsonValue::num(spec.full_scale)),
        (
            "t_nonoverlap".to_string(),
            JsonValue::num(spec.t_nonoverlap),
        ),
        (
            "process".to_string(),
            JsonValue::Str(spec.process.name.clone()),
        ),
    ])
}

/// Rebuilds an [`AdcSpec`] from its wire image.
///
/// # Errors
/// Missing/ill-typed fields, or a process name this build does not know
/// (only `"c025"` ships today).
pub fn spec_from_json(v: &JsonValue) -> Result<AdcSpec, WireError> {
    let process = match v.str_field("process")? {
        "c025" => Process::c025(),
        other => return Err(WireError::UnknownProcess(other.to_string())),
    };
    let resolution = v.usize_field("resolution")?;
    let resolution = u32::try_from(resolution).map_err(|_| WireError::BadType {
        field: "resolution".to_string(),
        expected: "a u32 resolution",
    })?;
    Ok(AdcSpec {
        resolution,
        fs: v.f64_field("fs")?,
        full_scale: v.f64_field("full_scale")?,
        t_nonoverlap: v.f64_field("t_nonoverlap")?,
        process,
    })
}

/// Wire image of [`FlowOptions`] (durations as fractional milliseconds).
pub fn flow_options_to_json(opts: &FlowOptions) -> JsonValue {
    let ms = |d: Option<Duration>| JsonValue::opt_num(d.map(|d| d.as_secs_f64() * 1e3));
    JsonValue::Obj(vec![
        (
            "max_attempts".to_string(),
            JsonValue::Num(opts.retry.max_attempts as f64),
        ),
        ("block_budget_ms".to_string(), ms(opts.block_budget)),
        ("run_budget_ms".to_string(), ms(opts.run_budget)),
    ])
}

/// Rebuilds [`FlowOptions`] from the wire (absent budget keys mean
/// unlimited, matching `FlowOptions::default()`).
///
/// # Errors
/// Ill-typed fields.
pub fn flow_options_from_json(v: &JsonValue) -> Result<FlowOptions, WireError> {
    let budget = |field: &str| -> Result<Option<Duration>, WireError> {
        Ok(v.opt_f64_field(field)?
            .map(|ms| Duration::from_secs_f64(ms.max(0.0) / 1e3)))
    };
    let max_attempts = match v.get("max_attempts") {
        None => RetryPolicy::default().max_attempts,
        Some(_) => v.usize_field("max_attempts")?.max(1),
    };
    Ok(FlowOptions {
        retry: RetryPolicy { max_attempts },
        block_budget: budget("block_budget_ms")?,
        run_budget: budget("run_budget_ms")?,
    })
}

/// Wire image of a [`SynthConfig`] (seed and budgets; the quantization
/// digits ride along so server runs reproduce batch runs bit for bit).
pub fn synth_config_to_json(cfg: &SynthConfig) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "iterations".to_string(),
            JsonValue::Num(cfg.iterations as f64),
        ),
        (
            "nm_iterations".to_string(),
            JsonValue::Num(cfg.nm_iterations as f64),
        ),
        ("sigma0".to_string(), JsonValue::num(cfg.sigma0)),
        ("sigma_end".to_string(), JsonValue::num(cfg.sigma_end)),
        ("seed".to_string(), JsonValue::Num(cfg.seed as f64)),
        (
            "warm_tail_frac".to_string(),
            JsonValue::num(cfg.warm_tail_frac),
        ),
        (
            "cost_quant_digits".to_string(),
            JsonValue::opt_num(cfg.cost_quant_digits.map(f64::from)),
        ),
    ])
}

/// Rebuilds a [`SynthConfig`] from the wire; absent fields inherit
/// `SynthConfig::default()`.
///
/// # Errors
/// Ill-typed fields.
pub fn synth_config_from_json(v: &JsonValue) -> Result<SynthConfig, WireError> {
    let d = SynthConfig::default();
    let usize_or = |field: &str, default: usize| -> Result<usize, WireError> {
        match v.get(field) {
            None => Ok(default),
            Some(_) => v.usize_field(field),
        }
    };
    let f64_or = |field: &str, default: f64| -> Result<f64, WireError> {
        match v.get(field) {
            None => Ok(default),
            Some(_) => v.f64_field(field),
        }
    };
    let cost_quant_digits = match v.get("cost_quant_digits") {
        None => d.cost_quant_digits,
        Some(JsonValue::Null) => None,
        Some(_) => Some(
            u32::try_from(v.usize_field("cost_quant_digits")?).map_err(|_| WireError::BadType {
                field: "cost_quant_digits".to_string(),
                expected: "a u32 digit count",
            })?,
        ),
    };
    Ok(SynthConfig {
        iterations: usize_or("iterations", d.iterations)?,
        nm_iterations: usize_or("nm_iterations", d.nm_iterations)?,
        sigma0: f64_or("sigma0", d.sigma0)?,
        sigma_end: f64_or("sigma_end", d.sigma_end)?,
        seed: u64::try_from(usize_or("seed", d.seed as usize)?).unwrap_or(d.seed),
        warm_tail_frac: f64_or("warm_tail_frac", d.warm_tail_frac)?,
        cost_quant_digits,
    })
}

/// Wire image of a run's [`RunStats`].
pub fn run_stats_to_json(stats: &RunStats) -> JsonValue {
    let n = |v: usize| JsonValue::Num(v as f64);
    JsonValue::Obj(vec![
        ("blocks".to_string(), n(stats.blocks)),
        ("cache_hits".to_string(), n(stats.cache_hits)),
        ("cache_seeded".to_string(), n(stats.cache_seeded)),
        ("cold".to_string(), n(stats.cold)),
        ("retargeted".to_string(), n(stats.retargeted)),
        ("evaluations_spent".to_string(), n(stats.evaluations_spent)),
        ("failed".to_string(), n(stats.failed)),
        ("recovered".to_string(), n(stats.recovered)),
        ("demoted".to_string(), n(stats.demoted)),
        ("attempts".to_string(), n(stats.attempts)),
        (
            "deadline_slack_ms".to_string(),
            JsonValue::opt_num(stats.deadline_slack_ms.map(|ms| ms as f64)),
        ),
    ])
}

/// Rebuilds [`RunStats`] from the wire.
///
/// # Errors
/// Missing/ill-typed fields.
pub fn run_stats_from_json(v: &JsonValue) -> Result<RunStats, WireError> {
    Ok(RunStats {
        blocks: v.usize_field("blocks")?,
        cache_hits: v.usize_field("cache_hits")?,
        cache_seeded: v.usize_field("cache_seeded")?,
        cold: v.usize_field("cold")?,
        retargeted: v.usize_field("retargeted")?,
        evaluations_spent: v.usize_field("evaluations_spent")?,
        failed: v.usize_field("failed")?,
        recovered: v.usize_field("recovered")?,
        demoted: v.usize_field("demoted")?,
        attempts: v.usize_field("attempts")?,
        deadline_slack_ms: v.opt_f64_field("deadline_slack_ms")?.map(|ms| ms as i64),
    })
}

fn chain_report_to_json(r: &ChainReport) -> JsonValue {
    JsonValue::Obj(vec![
        ("power".to_string(), JsonValue::num(r.power)),
        ("gain".to_string(), JsonValue::num(r.gain)),
        ("tf_gain".to_string(), JsonValue::num(r.tf_gain)),
        ("unity_freq".to_string(), JsonValue::num(r.unity_freq)),
        ("bw_3db".to_string(), JsonValue::num(r.bw_3db)),
        ("settle_tau".to_string(), JsonValue::num(r.settle_tau)),
        ("saturated".to_string(), JsonValue::num(r.saturated)),
        ("mna_dim".to_string(), JsonValue::Num(r.mna_dim as f64)),
        ("dc_sparse".to_string(), JsonValue::Bool(r.dc_sparse)),
        ("tf_sparse".to_string(), JsonValue::Bool(r.tf_sparse)),
        ("fill_ratio".to_string(), JsonValue::num(r.fill_ratio)),
    ])
}

fn tran_stage_to_json(s: &TranStageReport) -> JsonValue {
    JsonValue::Obj(vec![
        ("amplitude".to_string(), JsonValue::num(s.amplitude)),
        ("settle_err".to_string(), JsonValue::num(s.settle_err)),
        ("half_lsb".to_string(), JsonValue::num(s.half_lsb)),
        ("settled".to_string(), JsonValue::Bool(s.settled)),
        ("residue_gain".to_string(), JsonValue::num(s.residue_gain)),
        ("ideal_gain".to_string(), JsonValue::num(s.ideal_gain)),
    ])
}

fn tran_report_to_json(r: &TranChainReport) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "stages".to_string(),
            JsonValue::Arr(r.stages.iter().map(tran_stage_to_json).collect()),
        ),
        ("all_settled".to_string(), JsonValue::Bool(r.all_settled)),
        ("accepted".to_string(), JsonValue::Num(r.accepted as f64)),
        ("rejected".to_string(), JsonValue::Num(r.rejected as f64)),
        (
            "newton_iters".to_string(),
            JsonValue::Num(r.newton_iters as f64),
        ),
        ("min_dt".to_string(), JsonValue::num(r.min_dt)),
        ("sparse".to_string(), JsonValue::Bool(r.sparse)),
    ])
}

/// Wire image of a circuit-level sign-off record (server → client only:
/// verification is always recomputed, never submitted).
pub fn verification_to_json(v: &ChainVerification) -> JsonValue {
    JsonValue::Obj(vec![
        ("config".to_string(), JsonValue::Str(v.config.clone())),
        (
            "resolution".to_string(),
            JsonValue::Num(f64::from(v.resolution)),
        ),
        ("report".to_string(), chain_report_to_json(&v.report)),
        (
            "tran".to_string(),
            match &v.tran {
                Some(t) => tran_report_to_json(t),
                None => JsonValue::Null,
            },
        ),
        ("gain_expected".to_string(), JsonValue::num(v.gain_expected)),
        ("power_summed".to_string(), JsonValue::num(v.power_summed)),
        (
            "power_analytic".to_string(),
            JsonValue::num(v.power_analytic),
        ),
    ])
}

/// Wire image of a multi-resolution run's health row (the JSON shape of
/// one [`run_health_table`](crate::report::run_health_table) line).
pub fn resolution_run_to_json(run: &ResolutionRun) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "resolution".to_string(),
            JsonValue::Num(f64::from(run.resolution)),
        ),
        ("stats".to_string(), run_stats_to_json(&run.stats)),
    ])
}

/// Format tag of a block-cache snapshot document.
pub const SNAPSHOT_FORMAT: &str = "adc-block-cache-snapshot";
/// Snapshot schema version. Entries from any other version are dropped
/// (and counted) on load, never served.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Renders a `u64` fingerprint as fixed-width hex. JSON numbers are
/// `f64`s (exact only to 2^53), so full-width fingerprints ride as
/// strings to round-trip bit-exactly.
fn fp_to_json(fp: u64) -> JsonValue {
    JsonValue::Str(format!("{fp:016x}"))
}

fn fp_field(v: &JsonValue, field: &str) -> Result<u64, WireError> {
    let text = v.str_field(field)?;
    u64::from_str_radix(text, 16).map_err(|_| WireError::BadType {
        field: field.to_string(),
        expected: "a hex-encoded u64 fingerprint",
    })
}

fn template_name(t: TemplateKind) -> &'static str {
    match t {
        TemplateKind::Telescopic => "telescopic",
        TemplateKind::TwoStage => "two_stage",
    }
}

fn template_from_name(name: &str) -> Result<TemplateKind, WireError> {
    match name {
        "telescopic" => Ok(TemplateKind::Telescopic),
        "two_stage" => Ok(TemplateKind::TwoStage),
        _ => Err(WireError::BadType {
            field: "template".to_string(),
            expected: "`telescopic` or `two_stage`",
        }),
    }
}

/// Wire image of one block's exact requirements (snapshot payload).
fn ota_requirements_to_json(req: &OtaRequirements) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "template".to_string(),
            JsonValue::Str(template_name(req.template).to_string()),
        ),
        ("a0_min".to_string(), JsonValue::num(req.a0_min)),
        ("unity_min".to_string(), JsonValue::num(req.unity_min)),
        ("pm_min".to_string(), JsonValue::num(req.pm_min)),
        ("c_load".to_string(), JsonValue::num(req.c_load)),
    ])
}

fn ota_requirements_from_json(v: &JsonValue) -> Result<OtaRequirements, WireError> {
    Ok(OtaRequirements {
        template: template_from_name(v.str_field("template")?)?,
        a0_min: v.f64_field("a0_min")?,
        unity_min: v.f64_field("unity_min")?,
        pm_min: v.f64_field("pm_min")?,
        c_load: v.f64_field("c_load")?,
    })
}

fn f64_array(v: &JsonValue, field: &str) -> Result<Vec<f64>, WireError> {
    match v.get(field) {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|item| match item {
                JsonValue::Num(x) => Ok(*x),
                JsonValue::Null => Ok(f64::NAN),
                _ => Err(WireError::BadType {
                    field: field.to_string(),
                    expected: "an array of numbers",
                }),
            })
            .collect(),
        Some(_) => Err(WireError::BadType {
            field: field.to_string(),
            expected: "an array",
        }),
        None => Err(WireError::MissingField(field.to_string())),
    }
}

/// Wire image of a cached synthesis result (snapshot payload). Finite
/// floats round-trip bit-exactly through the shortest-round-trip
/// formatter; a non-finite value rides as `null` and reads back NaN —
/// such an entry then fails its integrity re-check on load and is
/// dropped, which is the safe outcome for a result the cache could not
/// have served faithfully anyway.
fn synth_result_to_json(r: &SynthResult) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "best_x".to_string(),
            JsonValue::Arr(r.best_x.iter().map(|&x| JsonValue::num(x)).collect()),
        ),
        (
            "best_u".to_string(),
            JsonValue::Arr(r.best_u.iter().map(|&u| JsonValue::num(u)).collect()),
        ),
        (
            "perf".to_string(),
            JsonValue::Obj(
                r.best_perf
                    .iter()
                    .map(|(k, v)| (k.to_string(), JsonValue::num(v)))
                    .collect(),
            ),
        ),
        ("best_cost".to_string(), JsonValue::num(r.best_cost)),
        ("feasible".to_string(), JsonValue::Bool(r.feasible)),
        (
            "evaluations".to_string(),
            JsonValue::Num(r.evaluations as f64),
        ),
    ])
}

fn synth_result_from_json(v: &JsonValue) -> Result<SynthResult, WireError> {
    let mut best_perf = Performance::new();
    match v.get("perf") {
        Some(JsonValue::Obj(pairs)) => {
            for (k, val) in pairs {
                let x = match val {
                    JsonValue::Num(x) => *x,
                    JsonValue::Null => f64::NAN,
                    _ => {
                        return Err(WireError::BadType {
                            field: format!("perf.{k}"),
                            expected: "a number",
                        })
                    }
                };
                best_perf.set(k, x);
            }
        }
        Some(_) => {
            return Err(WireError::BadType {
                field: "perf".to_string(),
                expected: "an object",
            })
        }
        None => return Err(WireError::MissingField("perf".to_string())),
    }
    let feasible = match v.get("feasible") {
        Some(JsonValue::Bool(b)) => *b,
        _ => {
            return Err(WireError::BadType {
                field: "feasible".to_string(),
                expected: "a boolean",
            })
        }
    };
    Ok(SynthResult {
        best_x: f64_array(v, "best_x")?,
        best_u: f64_array(v, "best_u")?,
        best_perf,
        best_cost: v.f64_field("best_cost")?,
        feasible,
        evaluations: v.usize_field("evaluations")?,
    })
}

fn snapshot_entry_to_json(e: &SnapshotEntry) -> JsonValue {
    JsonValue::Obj(vec![
        ("spec_fp".to_string(), fp_to_json(e.spec_fp)),
        (
            "key".to_string(),
            JsonValue::Arr(vec![
                JsonValue::Num(f64::from(e.entry.key.0)),
                JsonValue::Num(f64::from(e.entry.key.1)),
            ]),
        ),
        ("req".to_string(), ota_requirements_to_json(&e.entry.req)),
        ("result".to_string(), synth_result_to_json(&e.entry.result)),
        ("provenance".to_string(), fp_to_json(e.entry.provenance)),
        ("config".to_string(), fp_to_json(e.entry.config)),
        ("integrity".to_string(), fp_to_json(e.integrity)),
    ])
}

fn snapshot_entry_from_json(v: &JsonValue) -> Result<SnapshotEntry, WireError> {
    let key = match v.get("key") {
        Some(JsonValue::Arr(items)) if items.len() == 2 => {
            let part = |i: usize| match &items[i] {
                JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u32),
                _ => Err(WireError::BadType {
                    field: "key".to_string(),
                    expected: "a pair of non-negative integers",
                }),
            };
            (part(0)?, part(1)?)
        }
        _ => {
            return Err(WireError::BadType {
                field: "key".to_string(),
                expected: "a two-element array",
            })
        }
    };
    let req = ota_requirements_from_json(
        v.get("req")
            .ok_or_else(|| WireError::MissingField("req".to_string()))?,
    )?;
    let result = synth_result_from_json(
        v.get("result")
            .ok_or_else(|| WireError::MissingField("result".to_string()))?,
    )?;
    Ok(SnapshotEntry {
        spec_fp: fp_field(v, "spec_fp")?,
        entry: CacheEntry {
            key,
            req,
            result,
            provenance: fp_field(v, "provenance")?,
            config: fp_field(v, "config")?,
        },
        integrity: fp_field(v, "integrity")?,
    })
}

/// What a snapshot restore did: how many entries each path took. The
/// dropped count mirrors the `corrupt_dropped` increments the restore
/// charged against the cache's merged statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoad {
    /// Entries restored and available for warm hits.
    pub loaded: usize,
    /// Entries dropped: unparseable, version-rejected, or failing their
    /// integrity re-check.
    pub dropped: usize,
}

/// Renders the full content of a [`SharedCache`] as a versioned snapshot
/// document. Entry order is shard-count-invariant (see
/// [`SharedCache::export_entries`]) and the renderer is
/// byte-deterministic, so equal cache contents produce byte-identical
/// snapshots.
pub fn cache_snapshot_to_json(cache: &SharedCache) -> JsonValue {
    let entries = cache
        .export_entries()
        .iter()
        .map(snapshot_entry_to_json)
        .collect();
    JsonValue::Obj(vec![
        (
            "format".to_string(),
            JsonValue::Str(SNAPSHOT_FORMAT.to_string()),
        ),
        (
            "version".to_string(),
            JsonValue::Num(SNAPSHOT_VERSION as f64),
        ),
        ("entries".to_string(), JsonValue::Arr(entries)),
    ])
}

/// Restores a parsed snapshot document into `cache`. Fail-safe by
/// construction: a wrong format tag or schema version drops (and counts)
/// every entry; an unparseable entry is dropped and counted; an entry
/// whose persisted integrity stamp no longer matches its re-computed
/// content fingerprint is dropped and counted by the cache itself. The
/// server boots cold in the worst case — it never crashes on, and never
/// serves, a corrupt entry.
pub fn cache_snapshot_restore(cache: &SharedCache, doc: &JsonValue) -> SnapshotLoad {
    let mut load = SnapshotLoad::default();
    let entries = match doc.get("entries") {
        Some(JsonValue::Arr(items)) => items.as_slice(),
        _ => &[],
    };
    let format_ok = matches!(doc.get("format"), Some(JsonValue::Str(f)) if f == SNAPSHOT_FORMAT);
    let version_ok =
        matches!(doc.get("version"), Some(JsonValue::Num(v)) if *v == SNAPSHOT_VERSION as f64);
    if !format_ok || !version_ok {
        load.dropped = entries.len().max(1);
        cache.note_corrupt_dropped(load.dropped);
        return load;
    }
    for item in entries {
        match snapshot_entry_from_json(item) {
            Ok(entry) => {
                if cache.restore_entry(entry) {
                    load.loaded += 1;
                } else {
                    // Integrity failures were already counted by the
                    // cache; duplicates are benign but not "loaded".
                    load.dropped += 1;
                }
            }
            Err(_) => {
                load.dropped += 1;
                cache.note_corrupt_dropped(1);
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = AdcSpec::date05(13);
        let wire = spec_to_json(&spec).render();
        let back = spec_from_json(&JsonValue::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, spec);
        // Byte-deterministic render.
        assert_eq!(spec_to_json(&back).render(), wire);
    }

    #[test]
    fn unknown_process_is_typed() {
        let doc =
            r#"{"resolution":10,"fs":4e7,"full_scale":2,"t_nonoverlap":1e-9,"process":"c999"}"#;
        let err = spec_from_json(&JsonValue::parse(doc).unwrap()).unwrap_err();
        assert_eq!(err, WireError::UnknownProcess("c999".to_string()));
    }

    #[test]
    fn flow_options_round_trip_preserves_budgets() {
        let opts = FlowOptions {
            retry: RetryPolicy { max_attempts: 2 },
            block_budget: Some(Duration::from_millis(250)),
            run_budget: None,
        };
        let wire = flow_options_to_json(&opts).render();
        let back = flow_options_from_json(&JsonValue::parse(&wire).unwrap()).unwrap();
        assert_eq!(back.retry.max_attempts, 2);
        assert_eq!(back.block_budget, Some(Duration::from_millis(250)));
        assert_eq!(back.run_budget, None);
    }

    #[test]
    fn flow_options_default_on_empty_object() {
        let back = flow_options_from_json(&JsonValue::parse("{}").unwrap()).unwrap();
        assert_eq!(back, FlowOptions::default());
    }

    #[test]
    fn synth_config_round_trips_exactly() {
        let cfg = SynthConfig {
            iterations: 60,
            nm_iterations: 20,
            seed: 9,
            ..Default::default()
        };
        let wire = synth_config_to_json(&cfg).render();
        let back = synth_config_from_json(&JsonValue::parse(&wire).unwrap()).unwrap();
        assert_eq!(back, cfg);
        let defaults = synth_config_from_json(&JsonValue::parse("{}").unwrap()).unwrap();
        assert_eq!(defaults, SynthConfig::default());
    }

    #[test]
    fn run_stats_round_trip_with_and_without_slack() {
        for slack in [None, Some(1234_i64), Some(-7)] {
            let stats = RunStats {
                blocks: 11,
                cache_hits: 4,
                cache_seeded: 2,
                cold: 3,
                retargeted: 2,
                evaluations_spent: 900,
                failed: 1,
                recovered: 1,
                demoted: 0,
                attempts: 13,
                deadline_slack_ms: slack,
            };
            let wire = run_stats_to_json(&stats).render();
            let back = run_stats_from_json(&JsonValue::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, stats);
        }
    }

    #[test]
    fn floats_survive_the_shortest_round_trip_format() {
        for v in [0.1, 1.0 / 3.0, 2.5e-13, 4e7, f64::MIN_POSITIVE, 1e300] {
            let wire = JsonValue::Num(v).render();
            match JsonValue::parse(&wire).unwrap() {
                JsonValue::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{wire}"),
                other => panic!("parsed {other:?}"),
            }
        }
        // Non-finite values ride as null and read back as NaN.
        assert_eq!(JsonValue::num(f64::NAN).render(), "null");
        let doc = JsonValue::parse(r#"{"power":null}"#).unwrap();
        assert!(doc.f64_field("power").unwrap().is_nan());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for doc in ["{", "[1,", "\"abc", "{\"a\":}", "123x", "{} []"] {
            assert!(JsonValue::parse(doc).is_err(), "{doc}");
        }
        let err = JsonValue::parse("[1, 2,]").unwrap_err();
        assert!(matches!(err, WireError::Parse { .. }));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nbreak \"quote\" back\\slash\ttab \u{1}ctl µ-unicode";
        let wire = JsonValue::Str(s.to_string()).render();
        assert_eq!(
            JsonValue::parse(&wire).unwrap(),
            JsonValue::Str(s.to_string())
        );
    }

    #[test]
    fn missing_fields_are_typed() {
        let doc = JsonValue::parse(r#"{"resolution":10}"#).unwrap();
        let err = spec_from_json(&doc).unwrap_err();
        assert_eq!(err, WireError::MissingField("process".to_string()));
    }

    /// Cache snapshots are byte-deterministic and shard-count-invariant:
    /// the same content exported from a 1-shard and an 8-shard cache
    /// renders identical bytes; restoring into a cache at yet another
    /// shard count reproduces every entry with zero drops and re-exports
    /// the identical bytes; a version-mismatched snapshot restores
    /// nothing and counts every entry as dropped.
    #[test]
    fn cache_snapshot_round_trips_at_any_shard_count() {
        use crate::cache::CachePolicy;
        use crate::flow::{run_flow_shared, FlowRequest};
        use adc_mdac::power::PowerModelParams;
        use adc_synth::SynthConfig;

        let spec = AdcSpec::date05(10);
        let candidates = crate::enumerate::enumerate_candidates(10, 7);
        let params = PowerModelParams::calibrated();
        let cfg = SynthConfig {
            iterations: 8,
            nm_iterations: 2,
            seed: 13,
            ..Default::default()
        };

        let mut renders = Vec::new();
        for shards in [1usize, 8] {
            let cache = SharedCache::new(CachePolicy::Reproducible, shards);
            let req = FlowRequest::new(&spec, &candidates, &params, &cfg);
            let _ = run_flow_shared(&req, &cache);
            assert!(!cache.is_empty());
            renders.push((cache.len(), cache_snapshot_to_json(&cache).render()));
        }
        assert_eq!(
            renders[0].1, renders[1].1,
            "snapshot bytes must be shard-count-invariant"
        );

        let restored = SharedCache::new(CachePolicy::Reproducible, 3);
        let doc = JsonValue::parse(&renders[0].1).unwrap();
        let load = cache_snapshot_restore(&restored, &doc);
        assert_eq!(load.loaded, renders[0].0);
        assert_eq!(load.dropped, 0);
        assert_eq!(restored.stats().corrupt_dropped, 0);
        assert_eq!(restored.len(), renders[0].0);
        assert_eq!(
            cache_snapshot_to_json(&restored).render(),
            renders[0].1,
            "restore → export must be byte-identical"
        );

        let stale = renders[0].1.replace("\"version\":1", "\"version\":2");
        let victim = SharedCache::new(CachePolicy::Reproducible, 2);
        let load = cache_snapshot_restore(&victim, &JsonValue::parse(&stale).unwrap());
        assert_eq!(load.loaded, 0);
        assert_eq!(load.dropped, renders[0].0);
        assert_eq!(victim.len(), 0, "nothing from a mismatched version");
        assert_eq!(victim.stats().corrupt_dropped, load.dropped);
    }
}
